"""Resilience: elasticity, the richer failure taxonomy, and seeded chaos.

Pins the PR's contract end to end:

* degraded-but-alive channels (partial loss, extra delay) and the sender-side
  retry schedule, including the outage-skips-retries stream discipline;
* the queryable hot-key ``pressure()`` signal and its consumers;
* ring zone labels as pure metadata and the minimal-movement property for
  every rebalance path (scale-up, scale-down, zone recovery);
* the three new failure scenarios with their headline comparisons —
  gray-failure serving *more* stale than fail-silent at equal outage budget,
  flapping's silent/ring bracket — and the autoscaler measured against the
  ideal-elasticity baseline (elastic strictly beats static under a flash
  crowd);
* deterministic chaos plans: seeded draws, overlap composition, refusals;
* byte-identity of every new scenario across all three engines, and the
  refusal (not approximation) where sharding cannot work.
"""

import json

import pytest

from repro.backend.channel import Channel
from repro.backend.messages import InvalidateMessage
from repro.cluster import (
    ClusterSimulation,
    VectorClusterSimulation,
    make_scenario,
    replay_cluster_parallel,
)
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.hotkey import HotKeyConfig, HotKeyDetector
from repro.concurrency.config import ConcurrencyConfig
from repro.errors import ClusterError, ConfigurationError
from repro.experiments import WorkloadSpec, run_experiment
from repro.experiments.spec import ChannelSpec, ExperimentSpec, ScenarioSpec
from repro.obs.recorder import ObsConfig
from repro.resilience import AutoscaleScenario, ChaosPlan, ChaosSpec, as_chaos_plan
from repro.resilience.chaos import _Fault
from repro.workload.compiled import compile_workload
from repro.workload.poisson import PoissonZipfWorkload

DURATION = 8.0
BOUND = 0.5

#: Shared in-flight fetch model for the scenarios that need service time.
CONCURRENCY = dict(service_time="exponential", mean=0.02, capacity=8, seed=5)


def fleet_workload(seed: int = 7, keys: int = 120, rate: float = 20.0) -> PoissonZipfWorkload:
    return PoissonZipfWorkload(num_keys=keys, rate_per_key=rate, seed=seed)


def run_cluster(
    scenario=None,
    num_nodes: int = 6,
    duration: float = DURATION,
    workload: PoissonZipfWorkload = None,
    **kwargs,
):
    workload = workload if workload is not None else fleet_workload()
    simulation = ClusterSimulation(
        workload=workload.iter_requests(duration),
        policy="invalidate",
        num_nodes=num_nodes,
        staleness_bound=BOUND,
        duration=duration,
        workload_name="resil",
        seed=11,
        scenario=scenario,
        **kwargs,
    )
    return simulation, simulation.run()


def message(sent_at: float) -> InvalidateMessage:
    return InvalidateMessage(key="k", sent_at=sent_at)


# --------------------------------------------------------------------- #
# Channel: degraded overlay and retry schedule
# --------------------------------------------------------------------- #

class TestChannelDegraded:
    def test_degraded_loss_composes_independently_with_base(self) -> None:
        channel = Channel(loss_probability=0.5, seed=1)
        channel.set_degraded(loss=0.5)
        assert channel._effective_loss() == pytest.approx(0.75)
        channel.clear_degraded()
        assert channel._effective_loss() == pytest.approx(0.5)

    def test_degraded_delay_adds_and_clears_exactly(self) -> None:
        channel = Channel(delay=0.1, seed=1)
        channel.set_degraded(delay=0.25)
        record = channel.send(message(1.0))
        assert record.delivered
        assert record.deliver_at == pytest.approx(1.35)
        channel.clear_degraded()
        record = channel.send(message(2.0))
        assert record.deliver_at == pytest.approx(2.1)

    def test_delay_only_overlay_leaves_the_random_stream_untouched(self) -> None:
        plain = Channel(loss_probability=0.3, seed=4)
        degraded = Channel(loss_probability=0.3, seed=4)
        plain_records = [plain.send(message(float(i))) for i in range(2)]
        degraded_records = [degraded.send(message(float(i))) for i in range(2)]
        degraded.set_degraded(delay=0.5)
        excursion = degraded.send(message(2.0))
        mirror = plain.send(message(2.0))
        degraded.clear_degraded()
        plain_records += [plain.send(message(float(i))) for i in range(3, 6)]
        degraded_records += [degraded.send(message(float(i))) for i in range(3, 6)]
        assert [r.delivered for r in plain_records] == [
            r.delivered for r in degraded_records
        ]
        assert [r.deliver_at for r in plain_records] == [
            r.deliver_at for r in degraded_records
        ]
        if excursion.delivered:
            assert excursion.deliver_at == pytest.approx(mirror.deliver_at + 0.5)

    def test_degraded_validation(self) -> None:
        channel = Channel()
        with pytest.raises(ConfigurationError):
            channel.set_degraded(loss=1.5)
        with pytest.raises(ConfigurationError):
            channel.set_degraded(delay=-0.1)


class TestChannelRetries:
    def test_retries_recover_lost_messages_and_charge_the_schedule(self) -> None:
        lossy = Channel(loss_probability=0.4, seed=3)
        retrying = Channel(
            loss_probability=0.4, seed=3, retries=3, retry_timeout=0.2, retry_backoff=0.1
        )
        for i in range(200):
            lossy.send(message(float(i)))
        records = [retrying.send(message(float(i))) for i in range(200)]
        assert retrying.dropped < lossy.dropped
        assert retrying.recovered > 0
        assert retrying.retried >= retrying.recovered
        # A recovered message pays at least one timeout + backoff step.
        recovered_delays = [
            record.deliver_at - record.message.sent_at
            for record in records
            if record.delivered and record.deliver_at > record.message.sent_at
        ]
        assert recovered_delays
        assert min(recovered_delays) >= 0.3 - 1e-9

    def test_outage_skips_retries_without_consuming_randomness(self) -> None:
        interrupted = Channel(
            loss_probability=0.3, seed=9, retries=2, retry_timeout=0.1
        )
        control = Channel(loss_probability=0.3, seed=9, retries=2, retry_timeout=0.1)
        interrupted.outage = True
        record = interrupted.send(message(0.0))
        interrupted.outage = False
        assert not record.delivered
        assert interrupted.retried == 0
        follow = [interrupted.send(message(float(i))) for i in range(50)]
        mirror = [control.send(message(float(i))) for i in range(50)]
        assert [r.delivered for r in follow] == [r.delivered for r in mirror]
        assert [r.deliver_at for r in follow] == [r.deliver_at for r in mirror]

    def test_retry_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            Channel(retries=-1)
        with pytest.raises(ConfigurationError):
            Channel(retry_timeout=-0.1)
        # ChannelSpec stays a dumb coordinate record; invalid values fail
        # eagerly when the cluster builds the per-node Channel from it.
        with pytest.raises(ConfigurationError):
            Channel(retries=ChannelSpec(retries=-1).retries)

    def test_fleet_retries_reduce_message_loss(self) -> None:
        _, lossy = run_cluster(
            channel=ChannelSpec(loss_probability=0.4), num_nodes=3, duration=4.0
        )
        simulation, retrying = run_cluster(
            channel=ChannelSpec(loss_probability=0.4, retries=3, retry_timeout=0.01),
            num_nodes=3,
            duration=4.0,
        )
        dropped = lambda result: sum(
            row["messages_dropped"] for row in result.node_rows()
        )
        assert dropped(retrying) < dropped(lossy)
        assert any(node.channel.recovered > 0 for node in simulation.nodes())


# --------------------------------------------------------------------- #
# Hot-key pressure: the queryable per-window signal
# --------------------------------------------------------------------- #

class TestHotKeyPressure:
    def test_pressure_is_zero_before_min_observations(self) -> None:
        detector = HotKeyDetector(
            HotKeyConfig(hot_policy=None, min_observations=10), seed=1
        )
        for _ in range(9):
            detector.observe("k")
        assert detector.pressure() == 0.0

    def test_pressure_is_zero_until_a_key_is_flagged(self) -> None:
        config = HotKeyConfig(hot_policy=None, hot_fraction=0.3, min_observations=10)
        detector = HotKeyDetector(config, seed=1)
        for _ in range(30):
            detector.observe("hot")
        for i in range(10):
            detector.observe(f"cold-{i}")
        assert detector.pressure() == 0.0
        assert detector.is_hot("hot")
        # "hot" holds 30 of 40 observations; the sketch may only overcount.
        assert 0.5 <= detector.pressure() <= 1.0

    def test_pressure_lands_in_the_fleet_result(self) -> None:
        workload = PoissonZipfWorkload(num_keys=5, rate_per_key=40.0, seed=3)
        _, result = run_cluster(
            num_nodes=2,
            duration=4.0,
            workload=workload,
            hotkey=HotKeyConfig(
                hot_policy=None, hot_fraction=0.2, min_observations=50
            ),
        )
        assert result.hot_pressure > 0.0
        assert result.as_dict()["hot_pressure"] == result.hot_pressure


# --------------------------------------------------------------------- #
# Ring zones and the minimal-movement invariant
# --------------------------------------------------------------------- #

KEYS = [f"key-{index}" for index in range(1500)]


def route_map(ring: ConsistentHashRing) -> dict:
    return {key: ring.primary(key) for key in KEYS}


def make_ring(count: int = 5, zones: int = 0) -> ConsistentHashRing:
    ring = ConsistentHashRing(vnodes=16)
    for index in range(count):
        zone = f"zone-{index % zones}" if zones else None
        ring.add_node(f"node-{index:03d}", zone=zone)
    return ring


class TestRingZones:
    def test_zone_labels_are_queryable(self) -> None:
        ring = make_ring(5, zones=2)
        assert ring.zone_of("node-000") == "zone-0"
        assert ring.zone_of("node-001") == "zone-1"
        assert ring.zones == ["zone-0", "zone-1"]
        assert ring.zone_members("zone-0") == ["node-000", "node-002", "node-004"]

    def test_zone_labels_survive_remove_and_rejoin(self) -> None:
        ring = make_ring(4, zones=2)
        ring.remove_node("node-001")
        assert "node-001" not in ring.zone_members("zone-1")
        # The label is retained so the rejoin restores the failure domain
        # without re-stating it.
        ring.add_node("node-001")
        assert ring.zone_of("node-001") == "zone-1"
        assert "node-001" in ring.zone_members("zone-1")

    def test_zone_labels_never_affect_placement(self) -> None:
        labeled = make_ring(5, zones=3)
        unlabeled = make_ring(5, zones=0)
        assert route_map(labeled) == route_map(unlabeled)


class TestMinimalMovement:
    def test_scale_down_moves_exactly_the_departing_nodes_keys(self) -> None:
        ring = make_ring(5)
        before = route_map(ring)
        ring.remove_node("node-002")
        after = route_map(ring)
        moved = {key for key in KEYS if before[key] != after[key]}
        # Lower bound from the ring math: only keys the departed node owned
        # may move — and all of them must (their owner is gone).
        assert moved == {key for key in KEYS if before[key] == "node-002"}
        assert all(after[key] != "node-002" for key in moved)

    def test_scale_up_moves_exactly_the_new_nodes_keys(self) -> None:
        ring = make_ring(5)
        before = route_map(ring)
        ring.add_node("node-005")
        after = route_map(ring)
        moved = {key for key in KEYS if before[key] != after[key]}
        assert moved == {key for key in KEYS if after[key] == "node-005"}

    def test_rejoin_restores_routes_exactly(self) -> None:
        ring = make_ring(5)
        before = route_map(ring)
        ring.remove_node("node-003")
        ring.add_node("node-003")
        assert route_map(ring) == before

    def test_zone_recovery_restores_routes_exactly(self) -> None:
        ring = make_ring(6, zones=3)
        before = route_map(ring)
        members = ring.zone_members("zone-1")
        assert members == ["node-001", "node-004"]
        for node_id in members:
            ring.remove_node(node_id)
        outage = route_map(ring)
        moved = {key for key in KEYS if before[key] != outage[key]}
        assert moved == {key for key in KEYS if before[key] in set(members)}
        for node_id in members:
            ring.add_node(node_id)
        assert route_map(ring) == before
        assert ring.zone_members("zone-1") == members


# --------------------------------------------------------------------- #
# Gray failure: slow-but-alive beats fail-silent at staying stale
# --------------------------------------------------------------------- #

class TestGrayFailure:
    def test_gray_serves_more_stale_than_node_failure_at_equal_budget(self) -> None:
        # Same outage window on the same node; the fail-silent node gets
        # detected and drained, the gray node keeps serving stale.
        gray = make_scenario(
            "gray-failure",
            {"degrade_at": 2.0, "recover_at": 6.5, "loss": 0.9, "slowdown": 8.0},
        )
        silent = make_scenario(
            "node-failure", {"fail_at": 2.0, "detect_at": 2.5, "recover_at": 6.5}
        )
        _, gray_result = run_cluster(
            scenario=gray, concurrency=ConcurrencyConfig(**CONCURRENCY)
        )
        _, silent_result = run_cluster(
            scenario=silent, concurrency=ConcurrencyConfig(**CONCURRENCY)
        )
        assert (
            gray_result.totals.staleness_violations
            > silent_result.totals.staleness_violations
        )
        # Gray failure by definition never trips detection: no keys move.
        assert gray_result.rebalances == 0
        assert silent_result.rebalances == 2

    def test_gray_failure_requires_the_fetch_model(self) -> None:
        with pytest.raises(ClusterError, match="in-flight"):
            run_cluster(scenario=make_scenario("gray-failure", {}))

    def test_gray_failure_validation(self) -> None:
        with pytest.raises(ClusterError):
            make_scenario("gray-failure", {"node_indices": []})
        with pytest.raises(ClusterError):
            make_scenario("gray-failure", {"slowdown": 0.5})
        with pytest.raises(ClusterError):
            make_scenario("gray-failure", {"loss": 1.5})
        with pytest.raises(ClusterError, match="after"):
            run_cluster(
                scenario=make_scenario(
                    "gray-failure", {"degrade_at": 5.0, "recover_at": 2.0}
                ),
                concurrency=ConcurrencyConfig(**CONCURRENCY),
            )


# --------------------------------------------------------------------- #
# Zone outage: correlated loss of one failure domain
# --------------------------------------------------------------------- #

class TestZoneOutage:
    def test_zone_fails_drains_and_recovers_together(self) -> None:
        simulation, result = run_cluster(
            scenario=make_scenario("zone-outage", {"zone": 1}),
            num_nodes=6,
            zones=3,
        )
        labels = [label for _, label in simulation.event_log]
        assert "zone-fail:zone-1" in labels
        assert "zone-detect:zone-1" in labels
        assert "zone-recover:zone-1" in labels
        # zone-1 of a 6-node / 3-zone fleet is nodes 1 and 4: one correlated
        # drain and one correlated rejoin, one ring change per member each.
        assert result.rebalances == 4
        assert len(simulation.ring) == 6

    def test_zone_outage_needs_labeled_zones(self) -> None:
        with pytest.raises(ClusterError, match="zones"):
            run_cluster(scenario=make_scenario("zone-outage", {}), num_nodes=4)

    def test_unknown_zone_is_refused(self) -> None:
        with pytest.raises(ClusterError, match="no members"):
            run_cluster(
                scenario=make_scenario("zone-outage", {"zone": 7}),
                num_nodes=4,
                zones=2,
            )

    def test_zone_outage_validation(self) -> None:
        with pytest.raises(ClusterError):
            make_scenario("zone-outage", {"rejoin": "lukewarm"})
        with pytest.raises(ClusterError, match="after"):
            run_cluster(
                scenario=make_scenario(
                    "zone-outage", {"fail_at": 4.0, "detect_at": 2.0}
                ),
                num_nodes=4,
                zones=2,
            )


# --------------------------------------------------------------------- #
# Flapping: churn faster than detection
# --------------------------------------------------------------------- #

class TestFlapping:
    def test_silent_mode_never_touches_the_ring_but_hurts_freshness(self) -> None:
        simulation, flapped = run_cluster(
            scenario=make_scenario("flapping", {"flaps": 3, "degraded_loss": 0.5}),
            num_nodes=4,
        )
        _, baseline = run_cluster(num_nodes=4)
        assert flapped.rebalances == 0
        assert (
            flapped.totals.staleness_violations
            > baseline.totals.staleness_violations
        )
        labels = [label for _, label in simulation.event_log]
        assert labels.count("flap-settle") == 1
        for flap in range(3):
            assert f"flap-down:{flap}" in labels
            assert f"flap-back:{flap}" in labels

    def test_ring_mode_pays_a_rebalance_per_transition(self) -> None:
        _, result = run_cluster(
            scenario=make_scenario("flapping", {"flaps": 3, "mode": "ring"}),
            num_nodes=4,
        )
        # Each flap is a real departure plus a cold rejoin.
        assert result.rebalances == 6

    def test_flapping_validation(self) -> None:
        with pytest.raises(ClusterError):
            make_scenario("flapping", {"flaps": 0})
        with pytest.raises(ClusterError):
            make_scenario("flapping", {"mode": "loud"})
        with pytest.raises(ClusterError, match="ring"):
            run_cluster(
                scenario=make_scenario("flapping", {"mode": "ring"}), num_nodes=1
            )


# --------------------------------------------------------------------- #
# Autoscale: elasticity against the ideal baseline
# --------------------------------------------------------------------- #

class TestAutoscale:
    def test_scales_up_under_load_and_back_down_when_it_fades(self) -> None:
        # Requests stop at t=3 of a 10-second horizon: the controller must
        # ride the load up to the full fleet and drain back to the floor.
        scenario = AutoscaleScenario(min_nodes=2, high_load=50.0, low_load=20.0)
        workload = fleet_workload(seed=13, keys=100, rate=10.0)
        simulation = ClusterSimulation(
            workload=workload.iter_requests(3.0),
            policy="invalidate",
            num_nodes=4,
            staleness_bound=BOUND,
            duration=10.0,
            workload_name="resil",
            seed=11,
            scenario=scenario,
        )
        result = simulation.run()
        assert result.scale_ups == 2
        assert result.scale_downs == 2
        assert result.elasticity_cost == pytest.approx(4.0)
        assert result.elasticity_lag > 0.0
        assert len(simulation.ring) == 2
        labels = [label for _, label in simulation.event_log]
        assert any(label.startswith("scale-up:") for label in labels)
        assert any(label.startswith("scale-down:") for label in labels)

    def test_elastic_beats_static_fleet_under_a_flash_crowd(self) -> None:
        # Same controller, same workload, same flash crowd; the static
        # comparator is a fleet already at its ceiling (min_nodes == size),
        # so every breached interval runs its full course.  The ideal
        # baseline's lag/cost/staleness are identically zero, so the fields
        # ARE the gap — elastic must strictly shrink it.
        def run(num_nodes: int):
            scenario = AutoscaleScenario(
                min_nodes=2,
                high_load=200.0,
                flash_at=2.0,
                flash_fraction=0.5,
                flash_keys=2,
            )
            workload = fleet_workload(seed=13, keys=100, rate=10.0)
            simulation = ClusterSimulation(
                workload=workload.iter_requests(6.0),
                policy="invalidate",
                num_nodes=num_nodes,
                staleness_bound=BOUND,
                duration=6.0,
                workload_name="resil",
                seed=11,
                scenario=scenario,
                channel=ChannelSpec(loss_probability=0.3),
            )
            return simulation.run()

        elastic = run(8)
        static = run(2)
        assert elastic.scale_ups >= 1
        assert static.scale_ups == 0
        assert static.elasticity_cost == 0.0
        assert elastic.elasticity_lag < static.elasticity_lag
        assert elastic.elasticity_staleness < static.elasticity_staleness
        assert elastic.elasticity_cost == pytest.approx(
            float(elastic.scale_ups + elastic.scale_downs)
        )

    def test_pressure_trigger_scales_on_hot_keys(self) -> None:
        workload = PoissonZipfWorkload(num_keys=5, rate_per_key=40.0, seed=3)
        scenario = AutoscaleScenario(min_nodes=1, pressure_high=0.2)
        _, result = run_cluster(
            scenario=scenario,
            num_nodes=2,
            duration=4.0,
            workload=workload,
            hotkey=HotKeyConfig(
                hot_policy=None, hot_fraction=0.2, min_observations=50
            ),
        )
        assert result.scale_ups >= 1

    def test_pressure_trigger_requires_a_detector(self) -> None:
        with pytest.raises(ClusterError, match="hot-key"):
            run_cluster(
                scenario=AutoscaleScenario(min_nodes=1, pressure_high=0.5),
                num_nodes=2,
            )

    def test_warm_scaling_requires_a_store(self) -> None:
        with pytest.raises(ClusterError, match="store"):
            run_cluster(
                scenario=AutoscaleScenario(min_nodes=1, high_load=5.0, warm=True),
                num_nodes=2,
            )

    def test_min_nodes_cannot_exceed_the_fleet(self) -> None:
        with pytest.raises(ClusterError, match="min_nodes"):
            run_cluster(
                scenario=AutoscaleScenario(min_nodes=5, high_load=5.0), num_nodes=4
            )

    def test_constructor_validation(self) -> None:
        with pytest.raises(ClusterError, match="trigger"):
            AutoscaleScenario(min_nodes=1)
        with pytest.raises(ClusterError):
            AutoscaleScenario(min_nodes=0, high_load=5.0)
        with pytest.raises(ClusterError, match="below"):
            AutoscaleScenario(min_nodes=1, high_load=5.0, low_load=9.0)
        with pytest.raises(ClusterError):
            AutoscaleScenario(min_nodes=1, pressure_high=1.5)
        with pytest.raises(ClusterError):
            AutoscaleScenario(min_nodes=1, high_load=5.0, cooldown=-1)
        with pytest.raises(ClusterError):
            AutoscaleScenario(min_nodes=1, high_load=5.0, action_cost=-1.0)

    def test_shard_parallel_replay_refuses_the_autoscaler(self) -> None:
        trace = compile_workload(fleet_workload(), 4.0)
        with pytest.raises(ClusterError, match="workers"):
            replay_cluster_parallel(
                trace,
                workers=2,
                policy="invalidate",
                num_nodes=4,
                staleness_bound=BOUND,
                duration=4.0,
                seed=11,
                scenario=AutoscaleScenario(min_nodes=2, high_load=50.0),
            )

    def test_elasticity_fields_fold_into_obs_totals(self) -> None:
        scenario = AutoscaleScenario(min_nodes=2, high_load=50.0, low_load=20.0)
        _, result = run_cluster(
            scenario=scenario, num_nodes=4, duration=4.0, obs=ObsConfig(window=1.0)
        )
        totals = result.obs["meta"]["totals"]
        assert totals["scale_ups"] == result.scale_ups
        assert totals["elasticity_lag"] == pytest.approx(result.elasticity_lag)
        assert totals["elasticity_cost"] == pytest.approx(result.elasticity_cost)


# --------------------------------------------------------------------- #
# Chaos: seeded fault plans
# --------------------------------------------------------------------- #

def fault_key(plan: ChaosPlan):
    return [(f.kind, f.node_index, f.at, f.until) for f in plan.faults]


class TestChaos:
    def test_plans_are_deterministic_and_seed_sensitive(self) -> None:
        spec = ChaosSpec(seed=3, faults=6)
        first, second = ChaosPlan(spec), ChaosPlan(spec)
        first.bind(10.0, 4)
        second.bind(10.0, 4)
        assert fault_key(first) == fault_key(second)
        first.bind(10.0, 4)  # re-binding re-draws the same schedule
        assert fault_key(first) == fault_key(second)
        other = ChaosPlan(ChaosSpec(seed=4, faults=6))
        other.bind(10.0, 4)
        assert fault_key(other) != fault_key(first)

    def test_events_require_bind(self) -> None:
        with pytest.raises(ClusterError, match="bind"):
            ChaosPlan(ChaosSpec(seed=1)).events()

    def test_spec_validation(self) -> None:
        with pytest.raises(ClusterError):
            ChaosSpec(faults=0)
        with pytest.raises(ClusterError):
            ChaosSpec(kinds=())
        with pytest.raises(ClusterError, match="unknown"):
            ChaosSpec(kinds=("meteor",))
        with pytest.raises(ClusterError):
            ChaosSpec(start=0.8, end=0.2)
        with pytest.raises(ClusterError):
            ChaosSpec(window=0.0)
        with pytest.raises(ClusterError):
            ChaosSpec(loss=1.5)
        with pytest.raises(ClusterError):
            ChaosSpec(slowdown=0.5)

    def test_slow_node_kinds_are_refused_without_concurrency(self) -> None:
        # The refusal is on the spec, not the draw: even a plan whose dice
        # might avoid slow-node is rejected up front.
        with pytest.raises(ClusterError, match="slow-node"):
            run_cluster(chaos=ChaosSpec(seed=1, kinds=("slow-node", "delay")))

    def test_other_chaos_types_are_rejected(self) -> None:
        with pytest.raises(ClusterError, match="ChaosSpec"):
            as_chaos_plan(object())

    def test_overlapping_windows_compose_instead_of_clobbering(self) -> None:
        calls = []

        class SpyChannel:
            def set_degraded(self, loss=0.0, delay=0.0, jitter=0.0):
                calls.append(("set", round(loss, 9), round(delay, 9)))

            def clear_degraded(self):
                calls.append(("clear",))

        class SpyNode:
            channel = SpyChannel()

        class SpyCluster:
            def node_at(self, index):
                return SpyNode()

        plan = ChaosPlan(
            ChaosSpec(seed=0, faults=2, kinds=("drop", "delay"), loss=0.5, delay=0.5)
        )
        plan.bind(10.0, 1)
        plan.faults = [
            _Fault(kind="drop", node_index=0, at=1.0, until=3.0),
            _Fault(kind="delay", node_index=0, at=2.0, until=4.0),
        ]
        cluster = SpyCluster()
        for event in plan.events():
            event.apply(cluster, event.time)
        assert calls == [
            ("set", 0.5, 0.0),  # drop opens
            ("set", 0.5, 0.5),  # delay joins; the drop survives
            ("set", 0.0, 0.5),  # drop closes; the delay survives
            ("clear",),  # both windows closed
        ]

    def test_chaos_composes_with_a_scenario_and_bites(self) -> None:
        spec = ChaosSpec(
            seed=5, faults=6, kinds=("delay", "drop", "crash"), window=0.3, loss=0.6
        )
        simulation, chaotic = run_cluster(
            scenario=make_scenario("node-failure", {}), num_nodes=4, chaos=spec
        )
        _, clean = run_cluster(scenario=make_scenario("node-failure", {}), num_nodes=4)
        labels = [label for _, label in simulation.event_log]
        assert any(label.startswith("chaos-") for label in labels)
        assert json.dumps(chaotic.as_dict(), sort_keys=True) != json.dumps(
            clean.as_dict(), sort_keys=True
        )


# --------------------------------------------------------------------- #
# Byte-identity across engines (and the differential-style reproducers)
# --------------------------------------------------------------------- #

ENGINE_CELLS = [
    # (scenario name, params, extra cluster kwargs, parallel workers)
    (
        "gray-failure",
        {"degrade_at": 1.0, "recover_at": 3.5, "loss": 0.8},
        {"concurrency": True},
        1,
    ),
    ("zone-outage", {"zone": 1}, {"zones": 2}, 2),
    ("flapping", {"flaps": 2, "mode": "ring"}, {}, 2),
    ("flapping", {"flaps": 2, "degraded_loss": 0.5}, {}, 2),
    ("autoscale", {"min_nodes": 2, "high_load": 30.0, "low_load": 5.0}, {}, 1),
]


def engine_kwargs(name, params, extra):
    kwargs = dict(
        policy="invalidate",
        num_nodes=4,
        staleness_bound=BOUND,
        duration=4.0,
        workload_name="rescheck",
        seed=9,
        scenario=make_scenario(name, dict(params)) if name else None,
    )
    for key, value in extra.items():
        if key == "concurrency":
            kwargs["concurrency"] = ConcurrencyConfig(**CONCURRENCY)
        else:
            kwargs[key] = value
    return kwargs


@pytest.mark.parametrize("name,params,extra,workers", ENGINE_CELLS)
def test_resilience_scenarios_are_byte_identical_across_engines(
    name, params, extra, workers
) -> None:
    workload = PoissonZipfWorkload(num_keys=60, rate_per_key=15.0, seed=21)
    scalar = ClusterSimulation(
        workload=workload.iter_requests(4.0), **engine_kwargs(name, params, extra)
    ).run()
    trace = compile_workload(workload, 4.0)
    vector_simulation = VectorClusterSimulation(
        trace, **engine_kwargs(name, params, extra)
    )
    vector = vector_simulation.run()
    # Every resilience scenario must force the scalar fallback.
    assert not vector_simulation.used_vector_path
    parallel = replay_cluster_parallel(
        trace, workers=workers, **engine_kwargs(name, params, extra)
    )
    rows = {
        "scalar": json.dumps(scalar.as_dict(), sort_keys=True),
        "vector": json.dumps(vector.as_dict(), sort_keys=True),
        f"parallel[workers={workers}]": json.dumps(parallel.as_dict(), sort_keys=True),
    }
    reference_name, reference = next(iter(rows.items()))
    for engine, row in rows.items():
        assert row == reference, (
            f"{engine} diverged from {reference_name}.\n"
            f"Reproducer: scenario={name!r} params={params} extra={extra} "
            f"workers={workers}"
        )


def test_chaos_plans_are_byte_identical_across_engines() -> None:
    spec = ChaosSpec(
        seed=5, faults=6, kinds=("delay", "drop", "crash"), window=0.3, loss=0.6
    )
    workload = PoissonZipfWorkload(num_keys=60, rate_per_key=15.0, seed=21)

    def kwargs():
        return dict(
            policy="invalidate",
            num_nodes=4,
            staleness_bound=BOUND,
            duration=4.0,
            workload_name="rescheck",
            seed=9,
            chaos=spec,
        )

    scalar = ClusterSimulation(workload=workload.iter_requests(4.0), **kwargs()).run()
    trace = compile_workload(workload, 4.0)
    vector_simulation = VectorClusterSimulation(trace, **kwargs())
    vector = vector_simulation.run()
    assert not vector_simulation.used_vector_path
    parallel = replay_cluster_parallel(trace, workers=2, **kwargs())
    a = json.dumps(scalar.as_dict(), sort_keys=True)
    b = json.dumps(vector.as_dict(), sort_keys=True)
    c = json.dumps(parallel.as_dict(), sort_keys=True)
    assert a == b == c, f"Reproducer: chaos={spec.describe()}"


def test_zones_without_a_zone_scenario_are_byte_identical_to_unlabeled() -> None:
    _, labeled = run_cluster(num_nodes=4, duration=4.0, zones=2)
    _, unlabeled = run_cluster(num_nodes=4, duration=4.0)
    assert json.dumps(labeled.as_dict(), sort_keys=True) == json.dumps(
        unlabeled.as_dict(), sort_keys=True
    )


def test_obs_recording_does_not_change_resilience_rows() -> None:
    scenario = {"flaps": 2, "degraded_loss": 0.5}
    _, plain = run_cluster(
        scenario=make_scenario("flapping", dict(scenario)), num_nodes=4, duration=4.0
    )
    _, observed = run_cluster(
        scenario=make_scenario("flapping", dict(scenario)),
        num_nodes=4,
        duration=4.0,
        obs=ObsConfig(window=1.0),
    )
    plain_row = plain.as_dict()
    observed_row = observed.as_dict()
    observed_row.pop("obs")
    assert json.dumps(plain_row, sort_keys=True) == json.dumps(
        observed_row, sort_keys=True
    )


# --------------------------------------------------------------------- #
# ExperimentSpec: zones and chaos as cell coordinates
# --------------------------------------------------------------------- #

def experiment_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="resil",
        policies=["invalidate"],
        workloads=[WorkloadSpec.of("poisson", {"num_keys": 30, "rate_per_key": 8.0})],
        staleness_bounds=[0.5],
        duration=2.0,
        base_seed=3,
        num_nodes=[3],
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestExperimentIntegration:
    def test_cells_carry_zones_and_chaos(self) -> None:
        spec = experiment_spec(zones=3, chaos=ChaosSpec(seed=2, kinds=("delay",)))
        cells = spec.expand()
        assert all(cell.zones == 3 for cell in cells)
        described = cells[0].describe()
        assert described["zones"] == 3
        assert described["chaos"]["seed"] == 2

    def test_zones_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            experiment_spec(zones=0)
        with pytest.raises(ConfigurationError, match="smallest fleet"):
            experiment_spec(zones=4, num_nodes=[3])
        with pytest.raises(ConfigurationError, match="cluster"):
            experiment_spec(zones=2, num_nodes=[None])
        with pytest.raises(ConfigurationError, match="failure domains"):
            experiment_spec(scenarios=[ScenarioSpec.of("zone-outage")])

    def test_chaos_validation(self) -> None:
        with pytest.raises(ConfigurationError, match="ChaosSpec"):
            experiment_spec(chaos={"seed": 1})
        with pytest.raises(ConfigurationError, match="slow-node"):
            experiment_spec(chaos=ChaosSpec(seed=1, kinds=("slow-node",)))

    def test_resilience_cells_run_deterministically(self) -> None:
        spec = experiment_spec(
            scenarios=[ScenarioSpec.of("flapping", {"flaps": 2})],
            zones=2,
            chaos=ChaosSpec(seed=2, faults=2, kinds=("delay", "drop")),
        )
        first = run_experiment(spec, processes=1)
        second = run_experiment(spec, processes=1)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert first[0]["scenario"] == "flapping"

    def test_autoscale_cells_report_elasticity_fields(self) -> None:
        spec = experiment_spec(
            scenarios=[
                ScenarioSpec.of(
                    "autoscale", {"min_nodes": 1, "high_load": 10.0}
                )
            ],
            num_nodes=[3],
        )
        rows = run_experiment(spec, processes=1)
        assert {"scale_ups", "elasticity_lag", "elasticity_cost"} <= set(rows[0])
