"""The repro.perf harness, the perf CLI, bench phase timings, and check_bench."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.experiments.bench import BENCH_PHASES, bench_policy
from repro.perf import MICROBENCHES, PhaseTimer, Timer, profile_call, run_perf, time_callable

ROOT = Path(__file__).resolve().parent.parent


def load_check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", ROOT / "scripts" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_bench"] = module
    spec.loader.exec_module(module)
    return module


# --------------------------------------------------------------------- #
# Timers and harness
# --------------------------------------------------------------------- #

def test_timer_and_time_callable_measure_wall_time() -> None:
    with Timer() as timer:
        sum(range(10_000))
    assert timer.seconds > 0
    timing = time_callable(lambda: sum(range(1_000)), repeats=2)
    assert 0 < timing["best_seconds"] <= timing["mean_seconds"] * 1.0000001


def test_phase_timer_accumulates_named_phases() -> None:
    phases = PhaseTimer()
    with phases.phase("a"):
        sum(range(1_000))
    after_first = phases.seconds["a"]
    with phases.phase("a"):
        sum(range(1_000))
    with phases.phase("b"):
        sum(range(1_000))
    assert set(phases.seconds) == {"a", "b"}
    # Re-entering a phase accumulates rather than overwrites.  (No ordering
    # assertion between 'a' and 'b': micro-durations are scheduler noise.)
    assert phases.seconds["a"] > after_first > 0
    assert phases.seconds["b"] > 0


def test_profile_call_returns_a_stats_table() -> None:
    table = profile_call(lambda: sum(range(50_000)), limit=5)
    assert "function calls" in table


def test_run_perf_runs_selected_benches_and_rejects_unknown() -> None:
    record = run_perf(names=["fingerprint", "request-alloc"], scale=0.01)
    assert record["kind"] == "repro-perf"
    names = [row["name"] for row in record["results"]]
    assert names == ["fingerprint", "request-alloc"]
    for row in record["results"]:
        assert row["ops_per_sec"] > 0
    with pytest.raises(KeyError):
        run_perf(names=["no-such-bench"])


def test_every_registered_microbench_runs_at_tiny_scale() -> None:
    record = run_perf(scale=0.002)
    assert [row["name"] for row in record["results"]] == list(MICROBENCHES)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def test_perf_cli_list_and_run_and_json(tmp_path, capsys) -> None:
    assert main(["perf", "--list"]) == 0
    out = capsys.readouterr().out
    for name in MICROBENCHES:
        assert name in out

    target = tmp_path / "PERF.json"
    assert main(["perf", "--only", "request-alloc", "--scale", "0.01",
                 "--json", str(target)]) == 0
    record = json.loads(target.read_text())
    assert record["results"][0]["name"] == "request-alloc"

    with pytest.raises(SystemExit):
        main(["perf", "--only", "nope"])


def test_perf_cli_profile_prints_table(capsys) -> None:
    assert main(["perf", "--profile", "request-alloc", "--scale", "0.01"]) == 0
    assert "function calls" in capsys.readouterr().out


def test_perf_cli_json_refused_with_profile_or_list() -> None:
    with pytest.raises(SystemExit):
        main(["perf", "--profile", "request-alloc", "--json", "x.json"])
    with pytest.raises(SystemExit):
        main(["perf", "--list", "--json", "x.json"])


# --------------------------------------------------------------------- #
# Bench phase attribution
# --------------------------------------------------------------------- #

def test_bench_policy_reports_per_phase_timings() -> None:
    row = bench_policy("invalidate", num_requests=5_000, num_keys=200)
    assert row["generation_seconds"] > 0
    assert row["replay_seconds"] >= 0
    assert row["wall_seconds"] >= row["replay_seconds"]
    assert row["requests_per_sec"] > 0


# --------------------------------------------------------------------- #
# check_bench
# --------------------------------------------------------------------- #

def make_bench_record(path: Path, policy_rps: dict, nodes=None, requests=50_000) -> Path:
    record = {
        "kind": "repro-bench",
        "config": {
            "num_nodes": nodes,
            "num_requests": requests,
            "num_keys": 500,
            "staleness_bound": 1.0,
            "seed": 0,
        },
        "results": [
            {
                "policy": policy,
                "requests_per_sec": rps,
                **{phase: 0.1 for phase in BENCH_PHASES},
            }
            for policy, rps in policy_rps.items()
        ],
    }
    path.write_text(json.dumps(record))
    return path


def test_check_bench_passes_within_bounds_and_fails_on_regression(tmp_path) -> None:
    check_bench = load_check_bench()
    baseline = tmp_path / "BENCH_BASELINE.json"
    fresh = make_bench_record(
        tmp_path / "BENCH_fresh.json", {"invalidate": 500_000.0, "update": 600_000.0}
    )
    # Create the baseline from the fresh record.
    assert check_bench.main([str(fresh), "--baseline", str(baseline), "--update"]) == 0
    data = json.loads(baseline.read_text())
    assert data["kind"] == "repro-bench-baseline"
    assert data["entries"]["single/invalidate"] == {
        "requests_per_sec": 500_000.0,
        "engine": "scalar",
        "workers": 1,
    }

    # Identical numbers pass (raw comparison: no calibration scaling).
    assert check_bench.main(
        [str(fresh), "--baseline", str(baseline), "--no-calibration"]
    ) == 0

    # A >25% drop fails.
    slow = make_bench_record(
        tmp_path / "BENCH_slow.json", {"invalidate": 300_000.0, "update": 600_000.0}
    )
    assert check_bench.main(
        [str(slow), "--baseline", str(baseline), "--no-calibration"]
    ) == 1

    # A custom threshold can tolerate it.
    assert check_bench.main(
        [str(slow), "--baseline", str(baseline), "--no-calibration",
         "--max-regression", "0.5"]
    ) == 0

    # A fresh record benched on a different workload config is refused:
    # its throughput is not comparable to the baseline's.
    other = make_bench_record(
        tmp_path / "BENCH_other.json", {"invalidate": 500_000.0}, requests=10_000
    )
    assert check_bench.main(
        [str(other), "--baseline", str(baseline), "--no-calibration"]
    ) == 2

    # Baseline entries nobody measured fail the gate (no vacuous passes)
    # unless the partial check is explicit.
    partial = make_bench_record(
        tmp_path / "BENCH_partial.json", {"invalidate": 500_000.0}
    )
    assert check_bench.main(
        [str(partial), "--baseline", str(baseline), "--no-calibration"]
    ) == 1
    assert check_bench.main(
        [str(partial), "--baseline", str(baseline), "--no-calibration",
         "--allow-partial"]
    ) == 0

    # The same mode's record passed twice is refused: silently keeping the
    # last one would make the gate depend on argument order.
    assert check_bench.main(
        [str(fresh), str(slow), "--baseline", str(baseline), "--no-calibration"]
    ) == 2


def test_check_bench_cluster_rows_are_keyed_by_fleet_size(tmp_path) -> None:
    check_bench = load_check_bench()
    fresh = make_bench_record(
        tmp_path / "BENCH_c.json", {"invalidate": 400_000.0}, nodes=3
    )
    entries, _config = check_bench.collect_fresh([fresh])
    assert entries == {
        "cluster3/invalidate": {
            "requests_per_sec": 400_000.0,
            "engine": "scalar",
            "workers": 1,
        }
    }


def test_check_bench_modes_encode_engine_and_workers(tmp_path) -> None:
    """vector / cluster<N>-vec / cluster<N>-par keys per pipeline."""
    check_bench = load_check_bench()
    cases = [
        (dict(engine="vector"), None, "vector/invalidate"),
        (dict(engine="vector", workers=1), 3, "cluster3-vec/invalidate"),
        (dict(engine="vector", workers=2), 3, "cluster3-par/invalidate"),
        (dict(engine="scalar"), 3, "cluster3/invalidate"),
    ]
    for extra_config, nodes, expected_key in cases:
        path = make_bench_record(
            tmp_path / "BENCH_mode.json", {"invalidate": 100_000.0}, nodes=nodes
        )
        record = json.loads(path.read_text())
        record["config"].update(extra_config)
        path.write_text(json.dumps(record))
        entries, _config = check_bench.collect_fresh([path])
        assert list(entries) == [expected_key], extra_config


def test_check_bench_refuses_engine_or_worker_mismatch(tmp_path) -> None:
    """Claiming a baseline entry with a different pipeline is exit 2."""
    check_bench = load_check_bench()
    baseline = tmp_path / "BENCH_BASELINE.json"
    fresh = make_bench_record(
        tmp_path / "BENCH_par.json", {"invalidate": 900_000.0}, nodes=3
    )
    record = json.loads(fresh.read_text())
    record["config"].update(engine="vector", workers=2)
    fresh.write_text(json.dumps(record))
    assert check_bench.main([str(fresh), "--baseline", str(baseline), "--update"]) == 0

    # Same cluster3-par key, but measured on 4 workers: refused, not compared.
    record["config"]["workers"] = 4
    forged = tmp_path / "BENCH_forged.json"
    forged.write_text(json.dumps(record))
    assert check_bench.main(
        [str(forged), "--baseline", str(baseline), "--no-calibration"]
    ) == 2

    # Legacy float baselines (no engine metadata) still compare cleanly.
    data = json.loads(baseline.read_text())
    data["entries"] = {"cluster3-par/invalidate": 900_000.0}
    baseline.write_text(json.dumps(data))
    assert check_bench.main(
        [str(forged), "--baseline", str(baseline), "--no-calibration"]
    ) == 0


def test_check_bench_missing_baseline_errors(tmp_path) -> None:
    check_bench = load_check_bench()
    fresh = make_bench_record(tmp_path / "BENCH_f.json", {"invalidate": 1.0})
    assert check_bench.main(
        [str(fresh), "--baseline", str(tmp_path / "missing.json")]
    ) == 2


def test_committed_baseline_is_well_formed() -> None:
    """The committed BENCH_BASELINE.json gates CI: keep it loadable and sane."""
    data = json.loads((ROOT / "BENCH_BASELINE.json").read_text())
    assert data["kind"] == "repro-bench-baseline"
    assert data["calibration_ops_per_sec"] > 0
    assert data["config"]["num_requests"] > 0
    assert data["entries"], "baseline has no entries"
    for key, entry in data["entries"].items():
        mode, _, policy = key.partition("/")
        assert (
            mode in ("single", "vector")
            or mode.startswith("cluster")
        ), key
        assert policy
        assert entry["requests_per_sec"] > 0
        assert entry["engine"] in ("scalar", "vector")
        assert entry["workers"] >= 1
        if mode.endswith("-par"):
            assert entry["engine"] == "vector" and entry["workers"] > 1
    # The whole point of the columnar engine: vector entries must beat the
    # scalar single-cache entries by a wide margin on the same machine.
    vector = [
        entry["requests_per_sec"]
        for key, entry in data["entries"].items()
        if key.startswith("vector/")
    ]
    scalar = [
        entry["requests_per_sec"]
        for key, entry in data["entries"].items()
        if key.startswith("single/")
    ]
    assert vector and scalar
    assert min(vector) > 3.0 * (sum(scalar) / len(scalar))
    # The pre-PR reference the speedup is measured against.
    assert data["pre_pr"]["entries"]
