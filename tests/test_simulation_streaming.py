"""The simulator consumes streams without copying and validates ordering."""

import pytest

from repro.core.adaptive import AdaptivePolicy
from repro.core.optimal import OptimalPolicy
from repro.core.ttl import TTLExpiryPolicy, TTLPollingPolicy
from repro.core.write_reactive import AlwaysInvalidatePolicy, AlwaysUpdatePolicy
from repro.errors import WorkloadError
from repro.sim.runner import compare_policies
from repro.sim.simulation import Simulation
from repro.workload.base import OpType, Request
from repro.workload.poisson import PoissonZipfWorkload

POLICY_FACTORIES = [
    TTLExpiryPolicy,
    TTLPollingPolicy,
    AlwaysInvalidatePolicy,
    AlwaysUpdatePolicy,
    AdaptivePolicy,
]

WORKLOAD = PoissonZipfWorkload(num_keys=30, rate_per_key=10.0, read_ratio=0.8, seed=5)
DURATION = 4.0


@pytest.mark.parametrize("factory", POLICY_FACTORIES, ids=lambda f: f.__name__)
def test_pure_generator_matches_materialized_replay(factory) -> None:
    materialized = WORKLOAD.generate(DURATION)

    def stream():
        # A pure generator: the simulator gets no len(), no indexing, and no
        # second pass — if it tried to copy or re-iterate, this would differ.
        yield from WORKLOAD.iter_requests(DURATION)

    streaming_sim = Simulation(workload=stream(), policy=factory(), staleness_bound=0.5)
    assert streaming_sim.requests is None, "non-clairvoyant run must not materialize"
    streaming = streaming_sim.run()
    reference = Simulation(
        workload=materialized, policy=factory(), staleness_bound=0.5
    ).run()
    assert streaming.as_dict() == reference.as_dict()


def test_streaming_duration_defaults_to_last_request_time() -> None:
    result = Simulation(
        workload=WORKLOAD.iter_requests(DURATION),
        policy=AlwaysInvalidatePolicy(),
        staleness_bound=0.5,
    ).run()
    last_time = WORKLOAD.generate(DURATION)[-1].time
    assert result.duration == pytest.approx(last_time)


def test_clairvoyant_policy_materializes_the_stream() -> None:
    simulation = Simulation(
        workload=WORKLOAD.iter_requests(DURATION),
        policy=OptimalPolicy(),
        staleness_bound=0.5,
    )
    assert simulation.requests is not None
    result = simulation.run()
    assert result.total_requests == len(simulation.requests)


def test_out_of_order_stream_raises_workload_error() -> None:
    stream = [
        Request(time=1.0, key="a", op=OpType.READ),
        Request(time=0.25, key="b", op=OpType.READ),
    ]
    simulation = Simulation(
        workload=iter(stream), policy=AlwaysUpdatePolicy(), staleness_bound=1.0
    )
    with pytest.raises(WorkloadError, match="not sorted"):
        simulation.run()


def test_compare_policies_accepts_a_one_shot_stream() -> None:
    runs = compare_policies(
        WORKLOAD.iter_requests(DURATION),
        {
            "invalidate": AlwaysInvalidatePolicy,
            "update": AlwaysUpdatePolicy,
        },
        staleness_bound=0.5,
    )
    assert len(runs) == 2
    # Both policies must have replayed the identical trace even though the
    # input iterator could only be consumed once.
    assert runs[0].result.total_requests == runs[1].result.total_requests > 0
