"""The L1/L2 tier: admission, promotion, modes, and the pinned equivalences."""

import pytest

from repro import PoissonZipfWorkload, StoreConfig, TierConfig
from repro.cluster import ClusterSimulation
from repro.errors import ConfigurationError
from repro.experiments.runner import run_cell, run_experiment
from repro.experiments.spec import ExperimentSpec, RunCell, stable_cell_seed
from repro.tier import make_admission
from repro.workload.base import OpType, Request


def _cluster(tier=None, policy="invalidate", num_nodes=2, duration=8.0, seed=11, **kwargs):
    workload = PoissonZipfWorkload(num_keys=300, rate_per_key=20.0, seed=seed)
    return ClusterSimulation(
        workload=workload.iter_requests(duration),
        policy=policy,
        num_nodes=num_nodes,
        staleness_bound=0.5,
        duration=duration,
        seed=seed,
        tier=tier,
        **kwargs,
    )


def _cell(**overrides):
    defaults = dict(
        experiment="tier-test",
        cell_id=0,
        policy="invalidate",
        workload="poisson",
        workload_params=(("num_keys", 100), ("rate_per_key", 20.0)),
        staleness_bound=0.5,
        cache_capacity=None,
        channel=None,
        duration=4.0,
        seed=stable_cell_seed(3, "poisson", {"num_keys": 100, "rate_per_key": 20.0}, 4.0),
        num_nodes=2,
    )
    defaults.update(overrides)
    return RunCell(**defaults)


# --------------------------------------------------------------------- #
# The pinned equivalence: l1_capacity=0 IS the single-tier fleet
# --------------------------------------------------------------------- #
def test_l1_capacity_zero_row_is_byte_identical_to_single_tier_row() -> None:
    baseline = run_cell(_cell())
    tiered_zero = run_cell(_cell(l1_capacity=0))
    assert baseline == tiered_zero


def test_l1_capacity_zero_cluster_matches_untiered_cluster() -> None:
    baseline = _cluster().run().as_dict()
    for mode in ("write-through", "write-back"):
        zero = _cluster(tier=TierConfig(l1_capacity=0, mode=mode)).run().as_dict()
        # The disabled tier is normalised away entirely, fill mode included.
        assert zero == baseline


def test_tier_config_validation() -> None:
    with pytest.raises(ConfigurationError):
        TierConfig(l1_capacity=-1)
    with pytest.raises(ConfigurationError):
        TierConfig(l1_capacity=4, mode="write-around")
    with pytest.raises(ConfigurationError):
        TierConfig(l1_capacity=4, admission="belady")
    with pytest.raises(ConfigurationError):
        TierConfig(l1_capacity=4, max_value_size=0)


# --------------------------------------------------------------------- #
# Read path: hits, costs, and freshness through both tiers
# --------------------------------------------------------------------- #
def test_l1_serves_hits_and_charges_tier_cost() -> None:
    baseline = _cluster().run()
    tiered = _cluster(tier=TierConfig(l1_capacity=16, admission="always")).run()
    assert 0 < tiered.l1_hits < tiered.totals.hits
    assert tiered.tier_cost > 0
    # Tiering re-routes hits between tiers but serves the same data: the
    # fleet-level hit count and freshness guarantees are unchanged.
    assert tiered.totals.hits == baseline.totals.hits
    assert tiered.totals.staleness_violations == baseline.totals.staleness_violations
    assert tiered.l1_capacity == 16
    assert tiered.tier_mode == "write-through"
    row = tiered.as_dict()
    assert row["l1_hits"] == tiered.l1_hits
    assert row["nodes"][0]["tier_cost"] >= 0


def test_invalidation_fans_out_through_both_tiers() -> None:
    """An L1 hit must never serve data its L2 would have refused."""
    requests = [
        Request(time=0.1, key="k", op=OpType.READ),   # cold miss, not yet admitted
        Request(time=0.2, key="k", op=OpType.READ),   # L2 hit, second access -> promoted
        Request(time=0.25, key="k", op=OpType.READ),  # served from the L1
        Request(time=0.3, key="k", op=OpType.WRITE),  # invalidate sent at t=0.5
        Request(time=0.9, key="k", op=OpType.READ),   # must re-fetch, not L1-serve
    ]
    cluster = ClusterSimulation(
        workload=requests,
        policy="invalidate",
        num_nodes=1,
        staleness_bound=0.5,
        duration=1.0,
        tier=TierConfig(l1_capacity=8, admission="second-hit"),
    )
    result = cluster.run()
    assert result.l1_hits >= 1                      # the t=0.2 read
    assert result.totals.stale_misses == 1          # the t=0.9 read re-fetched
    assert result.totals.staleness_violations == 0  # nothing served stale


def test_tiered_fleet_adds_no_staleness_violations_across_policies() -> None:
    for policy in ("invalidate", "update", "ttl-expiry", "ttl-polling", "adaptive"):
        baseline = _cluster(policy=policy).run()
        tiered = _cluster(
            policy=policy, tier=TierConfig(l1_capacity=16, admission="always")
        ).run()
        assert tiered.totals.staleness_violations == baseline.totals.staleness_violations
        # Polling charges once per node, never once per tier.
        assert tiered.totals.polls == baseline.totals.polls


# --------------------------------------------------------------------- #
# Admission
# --------------------------------------------------------------------- #
def test_second_hit_admission_requires_recent_reuse() -> None:
    policy = make_admission(TierConfig(l1_capacity=4, admission="second-hit"))
    policy.observe("k")
    assert not policy.admit("k", value_size=128, ttl_headroom=None)
    policy.observe("k")
    assert policy.admit("k", value_size=128, ttl_headroom=None)
    # Decay forgets old traffic: after enough halvings the key must re-earn
    # its slot.
    for _ in range(64):
        policy.end_interval()
    assert not policy.admit("k", value_size=128, ttl_headroom=None)


def test_size_ttl_admission_gates_size_and_headroom() -> None:
    config = TierConfig(
        l1_capacity=4, admission="size-ttl", max_value_size=256, min_ttl_headroom=0.2
    )
    policy = make_admission(config)
    policy.observe("k")
    policy.observe("k")
    assert policy.admit("k", value_size=128, ttl_headroom=None)
    assert not policy.admit("k", value_size=512, ttl_headroom=None)   # too big
    assert not policy.admit("k", value_size=128, ttl_headroom=0.1)    # about to expire
    assert policy.admit("k", value_size=128, ttl_headroom=5.0)


def test_second_hit_rejects_show_up_in_results() -> None:
    tiered = _cluster(tier=TierConfig(l1_capacity=16, admission="second-hit")).run()
    assert tiered.l1_admission_rejects > 0
    assert tiered.l1_insertions > 0


# --------------------------------------------------------------------- #
# Write-back mode
# --------------------------------------------------------------------- #
def test_write_back_flushes_dirty_entries_to_l2() -> None:
    tiered = _cluster(tier=TierConfig(l1_capacity=8, mode="write-back",
                                      admission="always")).run()
    assert tiered.l1_writebacks > 0
    assert tiered.tier_mode == "write-back"
    # A tiny L1 under a wide key set must demote dirty victims on eviction.
    assert tiered.l1_demotions > 0
    assert tiered.l1_evictions >= tiered.l1_demotions


def test_write_back_entries_reach_the_l2_at_flush() -> None:
    requests = [
        Request(time=0.1, key="k", op=OpType.READ),  # fills L1 only (always-admit)
        Request(time=0.9, key="k", op=OpType.READ),
    ]
    cluster = ClusterSimulation(
        workload=requests,
        policy="invalidate",
        num_nodes=1,
        staleness_bound=0.5,
        duration=1.0,
        tier=TierConfig(l1_capacity=8, mode="write-back", admission="always"),
    )
    node = cluster.node_at(0)
    result = cluster.run()
    assert result.l1_writebacks == 1       # the t=0.5 interval flush
    assert "k" in node.cache               # flushed down to the L2
    assert "k" in node.l1.cache
    assert not node.l1.dirty


def test_polling_is_not_double_charged_after_an_l2_eviction() -> None:
    """An L2 eviction settles polls; the surviving L1 copy must not re-charge them."""
    requests = [
        Request(time=1.0, key="k", op=OpType.READ),   # fills L1 + L2
        Request(time=4.5, key="x", op=OpType.READ),   # L2 (capacity 1) evicts k:
                                                      #   k's polls at 2,3,4 settle
        Request(time=8.0, key="k", op=OpType.READ),   # L1-only k polls 5,6,7,8
    ]
    cluster = ClusterSimulation(
        workload=requests,
        policy="ttl-polling",
        num_nodes=1,
        staleness_bound=1.0,
        cache_capacity=1,
        duration=8.0,
        tier=TierConfig(l1_capacity=8, admission="always"),
    )
    result = cluster.run()
    # k: 3 polls settled at the L2 eviction + 4 as an L1-only entry;
    # x: 3 polls (5.5, 6.5, 7.5) settled at finalize.  Double-charging the
    # already-settled window would report 13.
    assert result.totals.polls == 10
    assert result.l1_hits == 1


def test_l1_eviction_settles_polls_of_l1_only_victims() -> None:
    """Polls an L1-only entry performed must not vanish with its eviction."""
    requests = [
        Request(time=1.0, key="k", op=OpType.READ),
        Request(time=4.5, key="x", op=OpType.READ),   # L2 evicts k (polls 2,3,4)
        Request(time=6.2, key="y", op=OpType.READ),   # L2 evicts x (poll 5.5);
                                                      #   L1 (capacity 2) evicts
                                                      #   L1-only k: polls 5,6
    ]
    cluster = ClusterSimulation(
        workload=requests,
        policy="ttl-polling",
        num_nodes=1,
        staleness_bound=1.0,
        cache_capacity=1,
        duration=8.0,
        tier=TierConfig(l1_capacity=2, admission="always"),
    )
    result = cluster.run()
    # k: 3 + 2 (settled at its L1 eviction); x: 1 + 2 more as L1-only
    # (6.5, 7.5 at finalize); y: 1 (7.2 at finalize).  Dropping the L1
    # victim's polls would report 7.
    assert result.totals.polls == 9


def test_update_that_lands_only_in_the_l1_is_not_counted_wasted() -> None:
    """A capacity-bounded L2 evicted the key, but the L1 still holds it."""
    requests = [
        Request(time=0.1, key="k1", op=OpType.READ),   # L2 + L1 hold k1
        Request(time=0.2, key="k2", op=OpType.READ),   # L2 (capacity 1) evicts k1
        Request(time=0.3, key="k1", op=OpType.WRITE),  # update pushed at t=0.5
    ]
    cluster = ClusterSimulation(
        workload=requests,
        policy="update",
        num_nodes=1,
        staleness_bound=0.5,
        cache_capacity=1,
        duration=1.0,
        tier=TierConfig(l1_capacity=8, admission="always"),
    )
    node = cluster.node_at(0)
    result = cluster.run()
    assert result.totals.updates_sent == 1
    # The update missed the L2 but refreshed the L1 copy, which keeps
    # serving fresh hits: not a wasted message.
    assert result.totals.updates_wasted == 0
    assert node.l1.cache.peek("k1").is_valid


# --------------------------------------------------------------------- #
# Crash-resume with a tier (L1 state checkpointed like everything else)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", ["write-through", "write-back"])
def test_tier_resume_matches_uninterrupted_run(tmp_path, mode) -> None:
    tier = TierConfig(l1_capacity=16, mode=mode, admission="second-hit")

    def build(root):
        return _cluster(
            tier=tier, num_nodes=2, duration=6.0,
            store=StoreConfig(str(root), snapshot_interval=1.5),
        )

    reference = build(tmp_path / "full").run()
    crashed = build(tmp_path / "crash")
    partial = crashed.run(stop_at=3.0)
    assert partial.interrupted
    resumed = build(tmp_path / "crash")
    resumed.restore_from_store()
    final = resumed.run()
    ref_row = reference.as_dict()
    final_row = final.as_dict()
    # Persistence bookkeeping differs by the crash checkpoint itself.
    for row in (ref_row, final_row):
        for key in ("store", "persistence_cost", "wal_appends", "wal_flushes",
                    "snapshots_taken"):
            row.pop(key, None)
        for node_row in row["nodes"]:
            node_row.pop("store", None)
    assert final_row == ref_row


# --------------------------------------------------------------------- #
# Experiment grid integration
# --------------------------------------------------------------------- #
def test_spec_tier_axes_expand_into_cells() -> None:
    spec = ExperimentSpec(
        name="tier-grid",
        policies=["invalidate"],
        workloads=["poisson"],
        staleness_bounds=[0.5],
        num_nodes=[2],
        l1_capacities=[0, 8],
        tier_modes=["write-through", "write-back"],
        duration=2.0,
    )
    # l1_capacity=0 is the same single-tier baseline whatever the fill mode,
    # so it expands once — not once per mode.
    assert spec.num_cells == 3
    cells = spec.expand()
    assert sorted({(cell.l1_capacity, cell.tier_mode) for cell in cells}) == [
        (0, "write-through"), (8, "write-back"), (8, "write-through"),
    ]
    assert all(cell.tier_admission == "second-hit" for cell in cells)


def test_spec_rejects_tier_axes_on_single_cache_cells() -> None:
    with pytest.raises(ConfigurationError):
        ExperimentSpec(
            name="bad",
            policies=["invalidate"],
            workloads=["poisson"],
            staleness_bounds=[0.5],
            num_nodes=[None],
            l1_capacities=[8],
        )
    with pytest.raises(ConfigurationError):
        ExperimentSpec(
            name="bad",
            policies=["invalidate"],
            workloads=["poisson"],
            staleness_bounds=[0.5],
            num_nodes=[2],
            tier_modes=["write-back"],  # no positive l1_capacities axis
        )
    with pytest.raises(ConfigurationError):
        ExperimentSpec(
            name="bad",
            policies=["invalidate"],
            workloads=["poisson"],
            staleness_bounds=[0.5],
            num_nodes=[2],
            l1_capacities=[0],
            scenarios=["l2-outage"],
        )


def test_tier_rows_are_identical_across_worker_schedules() -> None:
    spec = ExperimentSpec(
        name="tier-procs",
        policies=["invalidate", "update"],
        workloads=["poisson"],
        staleness_bounds=[0.5],
        num_nodes=[2],
        l1_capacities=[8],
        tier_modes=["write-back"],
        duration=2.0,
    )
    serial = run_experiment(spec, processes=1)
    parallel = run_experiment(spec, processes=2)
    assert serial == parallel
    assert all(row["l1_capacity"] == 8 for row in serial)
    assert all(row["l1_hits"] > 0 for row in serial)
