"""The tier scenarios: ``l2-outage`` degraded serving and ``cold-l1`` warming."""

import pytest

from repro import PoissonZipfWorkload, StoreConfig, TierConfig
from repro.cluster import ClusterSimulation, make_scenario
from repro.errors import ClusterError


def _cluster(scenario=None, tier=None, num_nodes=3, duration=10.0, seed=5, **kwargs):
    workload = PoissonZipfWorkload(num_keys=400, rate_per_key=20.0, seed=seed)
    return ClusterSimulation(
        workload=workload.iter_requests(duration),
        policy="invalidate",
        num_nodes=num_nodes,
        staleness_bound=0.5,
        duration=duration,
        seed=seed,
        scenario=scenario,
        tier=tier,
        **kwargs,
    )


TIER = TierConfig(l1_capacity=64, admission="always")


# --------------------------------------------------------------------- #
# l2-outage
# --------------------------------------------------------------------- #
def test_l2_outage_serves_strictly_more_degraded_reads_than_baseline() -> None:
    baseline = _cluster(tier=TIER).run()
    cluster = _cluster(scenario=make_scenario("l2-outage"), tier=TIER)
    outage = cluster.run()
    # The acceptance pin: the outage window produces strictly more L1-served
    # (degraded) reads than the steady-state baseline, which has none.
    assert baseline.l1_served_degraded == 0
    assert outage.l1_served_degraded > baseline.l1_served_degraded
    labels = [label for _, label in cluster.event_log]
    assert labels == ["l2-outage-start", "l2-outage-end"]


def test_l2_outage_fails_reads_missing_from_the_l1() -> None:
    # A tiny L1 cannot hold the whole key set: some outage reads must fail.
    tiny = TierConfig(l1_capacity=4, admission="always")
    outage = _cluster(scenario=make_scenario("l2-outage"), tier=tiny).run()
    assert outage.l1_served_degraded > 0
    assert outage.failed_fetches > 0
    # Degraded serving trades freshness for availability: stale L1 entries
    # answer reads the steady-state fleet would have re-fetched.
    baseline = _cluster(tier=tiny).run()
    assert outage.totals.staleness_violations >= baseline.totals.staleness_violations


def test_l2_outage_recovers_after_the_window() -> None:
    cluster = _cluster(
        scenario=make_scenario("l2-outage", {"start_at": 3.0, "end_at": 6.0}),
        tier=TIER,
    )
    result = cluster.run()
    for node in cluster.nodes():
        assert node.l1 is not None and not node.l1.outage
        assert not node.channel.outage
    # Post-outage reads fetch again: the run ends with backend traffic.
    assert result.totals.stale_misses + result.totals.cold_misses > 0


def test_l2_outage_scope_can_target_a_subset() -> None:
    scenario = make_scenario("l2-outage", {"node_indices": [0]})
    cluster = _cluster(scenario=scenario, tier=TIER)
    result = cluster.run()
    degraded = [node.l1_served_degraded for node in result.nodes]
    assert degraded[0] > 0
    assert all(count == 0 for count in degraded[1:])


def test_l2_outage_requires_a_tier() -> None:
    with pytest.raises(ClusterError, match="tier"):
        _cluster(scenario=make_scenario("l2-outage")).run()


def test_l2_outage_rejects_bad_windows() -> None:
    with pytest.raises(ClusterError):
        _cluster(
            scenario=make_scenario("l2-outage", {"start_at": 6.0, "end_at": 3.0}),
            tier=TIER,
        ).run()
    with pytest.raises(ClusterError):
        # The end event must fire inside the run (poll accounting needs it).
        _cluster(
            scenario=make_scenario("l2-outage", {"start_at": 3.0, "end_at": 100.0}),
            tier=TIER,
        ).run()
    with pytest.raises(ClusterError):
        make_scenario("l2-outage", {"node_indices": []})


def test_l2_outage_stops_polling_without_charging_or_freshening() -> None:
    """A partitioned node neither pays for polls nor learns from them."""
    from repro.workload.base import OpType, Request

    requests = [
        Request(time=1.0, key="k", op=OpType.READ),   # fills both tiers
        Request(time=6.5, key="k", op=OpType.READ),   # first post-outage read
    ]
    cluster = ClusterSimulation(
        workload=requests,
        policy="ttl-polling",
        num_nodes=1,
        staleness_bound=1.0,
        duration=8.0,
        tier=TierConfig(l1_capacity=8, admission="always"),
        scenario=make_scenario("l2-outage", {"start_at": 2.0, "end_at": 5.0}),
    )
    result = cluster.run()
    # Polls happen at t=2 (settled at outage start), t=6 (the 6.5 read),
    # and t=7, 8 (finalize).  The partition window's would-be polls at
    # t=3, 4, 5 never happened: charging them too would report 7.
    assert result.totals.polls == 4


def test_l2_outage_blocks_write_backs_across_the_partition() -> None:
    """Dirty L1 entries cannot flush into a partitioned-away L2."""
    from repro.workload.base import OpType, Request

    requests = [
        Request(time=0.1, key="k", op=OpType.READ),   # write-back fill -> dirty
        Request(time=2.1, key="k", op=OpType.READ),   # keeps the run going
    ]
    cluster = ClusterSimulation(
        workload=requests,
        policy="invalidate",
        num_nodes=1,
        staleness_bound=0.5,
        duration=3.0,
        tier=TierConfig(l1_capacity=8, mode="write-back", admission="always"),
        scenario=make_scenario("l2-outage", {"start_at": 0.2, "end_at": 1.8}),
    )
    node = cluster.node_at(0)
    result = cluster.run()
    # Flushes at t=0.5/1.0/1.5 fall inside the outage and must not demote;
    # the first flush after the window (t=2.0) does.
    assert result.l1_writebacks == 1
    assert "k" in node.cache


# --------------------------------------------------------------------- #
# cold-l1
# --------------------------------------------------------------------- #
def test_cold_l1_restart_clears_every_l1_and_costs_hits() -> None:
    steady = _cluster(tier=TIER).run()
    cold = _cluster(scenario=make_scenario("cold-l1"), tier=TIER).run()
    assert cold.l1_cold_restarts == cold.num_nodes
    # The warming transient: the restarted fleet serves fewer L1 hits than
    # the steady-state fleet, but re-warms (it still serves plenty).
    assert 0 < cold.l1_hits < steady.l1_hits
    # The L2 stayed warm: fleet-level misses do not regress.
    assert cold.totals.cold_misses == steady.totals.cold_misses


def test_cold_l1_rewarms_through_admission() -> None:
    cluster = _cluster(scenario=make_scenario("cold-l1", {"restart_at": 5.0}), tier=TIER)
    result = cluster.run()
    assert result.l1_cold_restarts == result.num_nodes
    assert [label for _, label in cluster.event_log] == ["cold-l1-restart"]
    # After the restart the L1s filled back up.
    assert any(len(node.l1.cache) > 0 for node in cluster.nodes())


def test_cold_l1_requires_a_tier() -> None:
    with pytest.raises(ClusterError, match="tier"):
        _cluster(scenario=make_scenario("cold-l1")).run()


def test_cold_l1_rejects_out_of_range_restart() -> None:
    with pytest.raises(ClusterError):
        _cluster(scenario=make_scenario("cold-l1", {"restart_at": 99.0}), tier=TIER).run()


# --------------------------------------------------------------------- #
# Warm rejoin restores the L1 from the node's snapshot
# --------------------------------------------------------------------- #
def test_warm_rejoin_restores_l1_entries_too(tmp_path) -> None:
    def run(rejoin, root):
        return _cluster(
            scenario=make_scenario("node-failure", {"rejoin": rejoin}),
            tier=TIER,
            store=StoreConfig(str(root), snapshot_interval=1.0),
        ).run()

    cold = run("cold", tmp_path / "cold")
    warm = run("warm", tmp_path / "warm")
    assert warm.warm_restored > 0
    # The warm node comes back with both tiers populated: strictly fewer
    # cold misses than the cold rejoin.
    assert warm.totals.cold_misses < cold.totals.cold_misses
