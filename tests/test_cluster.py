"""Cluster simulation: single-node equivalence, replication, determinism."""

import json

import pytest

from repro.cluster import (
    ClusterSimulation,
    HotKeyConfig,
    ReplicationConfig,
)
from repro.errors import ClusterError
from repro.experiments.registry import make_policy
from repro.sim.simulation import Simulation
from repro.workload.poisson import PoissonZipfWorkload


def workload(seed: int = 3, num_keys: int = 60) -> PoissonZipfWorkload:
    return PoissonZipfWorkload(num_keys=num_keys, rate_per_key=20.0, seed=seed)


def run_cluster(policy: str = "adaptive", **overrides):
    kwargs = dict(
        workload=workload().iter_requests(6.0),
        policy=policy,
        num_nodes=4,
        staleness_bound=0.5,
        duration=6.0,
        workload_name="poisson",
        seed=11,
    )
    kwargs.update(overrides)
    return ClusterSimulation(**kwargs).run()


@pytest.mark.parametrize("policy", ["invalidate", "update", "adaptive", "ttl-expiry", "ttl-polling"])
def test_one_node_cluster_matches_single_cache_simulation(policy: str) -> None:
    """The per-node path mirrors the single-cache simulator exactly."""
    simulation = Simulation(
        workload=workload().iter_requests(6.0),
        policy=make_policy(policy),
        staleness_bound=0.5,
        duration=6.0,
        workload_name="poisson",
    )
    single = simulation.run().as_dict()
    clustered = run_cluster(policy=policy, num_nodes=1).totals.as_dict()
    assert clustered == single


def test_fleet_totals_count_every_request_once_despite_replication() -> None:
    requests = list(workload().iter_requests(6.0))
    reads = sum(1 for request in requests if request.is_read)
    writes = len(requests) - reads
    result = run_cluster(replication=ReplicationConfig(factor=3, read_policy="round-robin"))
    assert result.totals.reads == reads
    assert result.totals.writes == writes


def test_replication_fans_invalidates_out_to_every_replica() -> None:
    single = run_cluster(policy="invalidate", replication=1)
    replicated = run_cluster(policy="invalidate", replication=3)
    # Each dirty key produces one message per replica holding it, so the
    # fan-out grows with the factor (not necessarily 3x: replicas that never
    # cached a key still get invalidates, but suppression dedupes repeats).
    assert replicated.totals.invalidates_sent > single.totals.invalidates_sent


def test_replica_reads_spread_load_across_nodes() -> None:
    primary = run_cluster(replication=ReplicationConfig(factor=2, read_policy="primary"))
    spread = run_cluster(replication=ReplicationConfig(factor=2, read_policy="round-robin"))
    assert spread.load_imbalance <= primary.load_imbalance


def test_same_seed_is_byte_identical() -> None:
    first = run_cluster(replication=2, hotkey=HotKeyConfig(hot_policy="update"))
    second = run_cluster(replication=2, hotkey=HotKeyConfig(hot_policy="update"))
    assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
        second.as_dict(), sort_keys=True
    )


def test_per_node_results_sum_to_fleet_totals() -> None:
    result = run_cluster(replication=2)
    for field in ("reads", "writes", "hits", "stale_misses", "cold_misses"):
        assert getattr(result.totals, field) == sum(
            getattr(node, field) for node in result.nodes
        )
    assert len(result.nodes) == 4
    assert [node.node_id for node in result.nodes] == [f"node-{i:03d}" for i in range(4)]


def test_hot_key_detector_switches_policy_on_skewed_traffic() -> None:
    # Zipf 1.3 over few keys: the head keys dominate every shard's traffic.
    result = run_cluster(
        policy="invalidate",
        hotkey=HotKeyConfig(hot_policy="update", hot_fraction=0.05, min_observations=50),
    )
    assert result.hot_keys_flagged > 0
    assert result.hot_decisions > 0
    # Hot keys decided by the update policy actually produced updates even
    # though the base policy never updates.
    assert result.totals.updates_sent > 0


def test_clairvoyant_policies_are_rejected() -> None:
    with pytest.raises(ClusterError):
        ClusterSimulation(
            workload=[],
            policy="optimal",
            num_nodes=2,
            staleness_bound=1.0,
            duration=1.0,
        )
    # ... also as the hot-key policy: it would silently decide NOTHING.
    with pytest.raises(ClusterError):
        ClusterSimulation(
            workload=[],
            policy="invalidate",
            num_nodes=2,
            staleness_bound=1.0,
            duration=1.0,
            hotkey=HotKeyConfig(hot_policy="optimal"),
        )


def test_detection_only_hotkey_config_still_reports_flagged_keys() -> None:
    result = run_cluster(
        policy="invalidate",
        hotkey=HotKeyConfig(hot_policy=None, hot_fraction=0.05, min_observations=50),
    )
    assert result.hot_keys_flagged > 0
    assert result.hot_decisions == 0  # detection without switching


def test_replication_factor_cannot_exceed_fleet() -> None:
    with pytest.raises(ClusterError):
        ClusterSimulation(
            workload=[],
            policy="invalidate",
            num_nodes=2,
            staleness_bound=1.0,
            replication=3,
            duration=1.0,
        )


def test_cluster_runs_once_only() -> None:
    cluster = ClusterSimulation(
        workload=workload().iter_requests(1.0),
        policy="invalidate",
        num_nodes=2,
        staleness_bound=0.5,
        duration=1.0,
    )
    cluster.run()
    with pytest.raises(ClusterError):
        cluster.run()
