"""Shard-parallel cluster replay: byte-identity for any worker count.

``replay_cluster_parallel`` must return the exact ``ClusterResult`` a
single-process ``ClusterSimulation`` produces — same per-node rows, same
fleet totals, same serialised floats — for any ``--workers`` value,
including configurations the columnar engine cannot vectorize (scenarios,
lossy channels, tiers), where each shard falls back to the ownership-
filtered scalar loop.
"""

import json

import pytest

from repro.cluster import (
    ClusterSimulation,
    ReplicationConfig,
    VectorClusterSimulation,
    make_scenario,
    partition_nodes,
    replay_cluster_parallel,
)
from repro.errors import ClusterError, ConfigurationError
from repro.tier.config import TierConfig
from repro.workload.compiled import compile_workload
from repro.workload.poisson import PoissonZipfWorkload

DURATION = 5.0


def make_workload(seed: int = 17) -> PoissonZipfWorkload:
    return PoissonZipfWorkload(num_keys=90, rate_per_key=25.0, seed=seed)


def scalar_result(policy: str, **kwargs) -> dict:
    simulation = ClusterSimulation(
        workload=make_workload().iter_requests(DURATION),
        policy=policy,
        staleness_bound=1.0,
        duration=DURATION,
        workload_name="parcheck",
        seed=9,
        **kwargs,
    )
    return simulation.run().as_dict()


def parallel_result(policy: str, workers: int, **kwargs) -> dict:
    trace = compile_workload(make_workload(), DURATION)
    result = replay_cluster_parallel(
        trace,
        workers=workers,
        policy=policy,
        staleness_bound=1.0,
        duration=DURATION,
        workload_name="parcheck",
        seed=9,
        **kwargs,
    )
    return result.as_dict()


def assert_identical(scalar: dict, parallel: dict) -> None:
    assert scalar == parallel
    assert json.dumps(scalar, sort_keys=True) == json.dumps(parallel, sort_keys=True)


# --------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------- #

def test_partition_nodes_strides_and_covers_every_node() -> None:
    partitions = partition_nodes(7, 3)
    assert partitions == [(0, 3, 6), (1, 4), (2, 5)]
    covered = sorted(index for owned in partitions for index in owned)
    assert covered == list(range(7))
    # Shard 0 must own node 0: the merge uses its result as the template.
    assert partitions[0][0] == 0


def test_partition_nodes_clamps_workers_to_fleet_size() -> None:
    assert partition_nodes(2, 8) == [(0,), (1,)]


def test_partition_nodes_validates_inputs() -> None:
    with pytest.raises(ClusterError):
        partition_nodes(0, 2)
    with pytest.raises(ClusterError):
        partition_nodes(4, 0)


# --------------------------------------------------------------------- #
# Vector fleet engine (in-process)
# --------------------------------------------------------------------- #

def test_vector_cluster_replay_matches_scalar_fleet() -> None:
    kwargs = dict(
        num_nodes=4,
        replication=ReplicationConfig(factor=2, read_policy="round-robin"),
    )
    for policy in ("invalidate", "update", "adaptive", "ttl-polling"):
        scalar = scalar_result(policy, **kwargs)
        trace = compile_workload(make_workload(), DURATION)
        simulation = VectorClusterSimulation(
            trace,
            policy=policy,
            staleness_bound=1.0,
            duration=DURATION,
            workload_name="parcheck",
            seed=9,
            **kwargs,
        )
        vector = simulation.run().as_dict()
        assert simulation.used_vector_path, policy
        assert_identical(scalar, vector)


def test_vector_cluster_requires_a_compiled_trace() -> None:
    with pytest.raises(ConfigurationError):
        VectorClusterSimulation(
            make_workload().iter_requests(DURATION),
            policy="invalidate",
            num_nodes=2,
            staleness_bound=1.0,
        )


# --------------------------------------------------------------------- #
# Shard-parallel identity
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_replay_identical_for_any_worker_count(workers: int) -> None:
    kwargs = dict(num_nodes=4)
    scalar = scalar_result("invalidate", **kwargs)
    assert_identical(scalar, parallel_result("invalidate", workers, **kwargs))


@pytest.mark.parametrize("read_policy", ["primary", "round-robin", "hash"])
def test_parallel_replay_identical_under_replication(read_policy: str) -> None:
    kwargs = dict(
        num_nodes=5,
        replication=ReplicationConfig(factor=3, read_policy=read_policy),
    )
    scalar = scalar_result("adaptive", **kwargs)
    for workers in (2, 4):
        assert_identical(scalar, parallel_result("adaptive", workers, **kwargs))


def test_parallel_replay_identical_with_scenario_fallback() -> None:
    """Scenario runs are not vectorizable; shards replay the scalar loop."""
    kwargs = dict(num_nodes=4)
    scalar = scalar_result("update", scenario=make_scenario("node-failure"), **kwargs)
    for workers in (1, 3):
        got = parallel_result(
            "update", workers, scenario=make_scenario("node-failure"), **kwargs
        )
        assert_identical(scalar, got)


def test_parallel_replay_identical_with_lossy_channel() -> None:
    class LossyChannel:
        loss_probability = 0.15
        delay = 0.05
        jitter = 0.02

    kwargs = dict(num_nodes=3, channel=LossyChannel())
    scalar = scalar_result("invalidate", **kwargs)
    assert_identical(scalar, parallel_result("invalidate", 2, **kwargs))


def test_parallel_replay_identical_with_tiered_nodes() -> None:
    kwargs = dict(num_nodes=3, tier=TierConfig(l1_capacity=16))
    scalar = scalar_result("invalidate", **kwargs)
    assert_identical(scalar, parallel_result("invalidate", 3, **kwargs))


# --------------------------------------------------------------------- #
# Refusals and ownership validation
# --------------------------------------------------------------------- #

def test_parallel_replay_refuses_store_with_multiple_workers(tmp_path) -> None:
    from repro.store.snapshot import StoreConfig

    trace = compile_workload(make_workload(), DURATION)
    with pytest.raises(ClusterError, match="store"):
        replay_cluster_parallel(
            trace,
            workers=2,
            policy="invalidate",
            num_nodes=2,
            staleness_bound=1.0,
            duration=DURATION,
            store=StoreConfig(root=str(tmp_path)),
        )


def test_parallel_replay_refuses_policy_objects_and_owned_nodes() -> None:
    from repro.experiments.registry import make_policy

    trace = compile_workload(make_workload(), DURATION)
    with pytest.raises(ClusterError, match="registry name"):
        replay_cluster_parallel(
            trace,
            workers=2,
            policy=make_policy("invalidate"),
            num_nodes=2,
            staleness_bound=1.0,
            duration=DURATION,
        )
    with pytest.raises(ClusterError, match="owned_nodes"):
        replay_cluster_parallel(
            trace,
            workers=2,
            policy="invalidate",
            num_nodes=2,
            staleness_bound=1.0,
            duration=DURATION,
            owned_nodes=(0,),
        )
    with pytest.raises(ClusterError, match="num_nodes"):
        replay_cluster_parallel(
            trace, workers=2, policy="invalidate", staleness_bound=1.0
        )


def test_owned_nodes_validation_on_the_cluster_simulation(tmp_path) -> None:
    from repro.store.snapshot import StoreConfig

    def build(**kwargs):
        return ClusterSimulation(
            workload=make_workload().iter_requests(DURATION),
            policy="invalidate",
            num_nodes=3,
            staleness_bound=1.0,
            duration=DURATION,
            **kwargs,
        )

    with pytest.raises(ClusterError, match="at least one"):
        build(owned_nodes=())
    with pytest.raises(ClusterError, match="must be in"):
        build(owned_nodes=(0, 3))
    with pytest.raises(ClusterError, match="must be in"):
        build(owned_nodes=(-1,))
    with pytest.raises(ClusterError, match="whole fleet"):
        build(owned_nodes=(0,), store=StoreConfig(root=str(tmp_path)))


def test_ownership_filtered_rows_match_the_full_run() -> None:
    """An owned node's result row is byte-identical to the full fleet's."""
    full = ClusterSimulation(
        workload=make_workload().iter_requests(DURATION),
        policy="adaptive",
        num_nodes=3,
        staleness_bound=1.0,
        duration=DURATION,
        workload_name="parcheck",
        seed=9,
    )
    full_result = full.run()
    shard = ClusterSimulation(
        workload=make_workload().iter_requests(DURATION),
        policy="adaptive",
        num_nodes=3,
        staleness_bound=1.0,
        duration=DURATION,
        workload_name="parcheck",
        seed=9,
        owned_nodes=(1,),
    )
    shard_result = shard.run()
    assert json.dumps(full_result.nodes[1].as_dict(), sort_keys=True) == json.dumps(
        shard_result.nodes[1].as_dict(), sort_keys=True
    )


def test_parallel_timings_report_merge_seconds() -> None:
    trace = compile_workload(make_workload(), DURATION)
    timings: dict = {}
    replay_cluster_parallel(
        trace,
        workers=2,
        timings=timings,
        policy="invalidate",
        num_nodes=2,
        staleness_bound=1.0,
        duration=DURATION,
        workload_name="parcheck",
        seed=9,
    )
    assert timings["merge_seconds"] >= 0.0
    timings.clear()
    replay_cluster_parallel(
        trace,
        workers=1,
        timings=timings,
        policy="invalidate",
        num_nodes=2,
        staleness_bound=1.0,
        duration=DURATION,
        workload_name="parcheck",
        seed=9,
    )
    assert timings["merge_seconds"] == 0.0
