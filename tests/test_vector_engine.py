"""Byte-identity of the columnar replay engine against the scalar pipeline.

The vector engine's contract is not "approximately the same results faster"
but *byte-identical* results: every counter, every accumulated float, every
serialised row must match the scalar engine exactly.  These tests compare
``as_dict()`` payloads through ``json.dumps`` so float formatting differences
(which would leak into exported artifacts) fail too.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.bench import bench_policy
from repro.experiments.registry import make_policy
from repro.sim.simulation import Simulation
from repro.sim.vector import VectorSimulation
from repro.workload.compiled import CompiledTrace, compile_workload
from repro.workload.mixed import PoissonMixWorkload
from repro.workload.poisson import PoissonZipfWorkload
from repro.workload.twitter import TwitterWorkload

DURATION = 5.0

KERNEL_POLICIES = [
    "ttl-expiry",
    "ttl-polling",
    "invalidate",
    "update",
    "adaptive",
    "adaptive+cs",
]


def assert_identical(scalar, vector) -> None:
    """Equality plus serialised-form equality (catches float drift)."""
    assert scalar == vector
    assert json.dumps(scalar, sort_keys=True) == json.dumps(vector, sort_keys=True)


def make_workloads():
    return [
        PoissonZipfWorkload(num_keys=80, rate_per_key=30.0, seed=13),
        PoissonMixWorkload(num_keys=80, rate_per_key=20.0, seed=13),
        TwitterWorkload(num_keys=100, total_rate=1500.0, seed=13),
    ]


# --------------------------------------------------------------------- #
# Trace compilation
# --------------------------------------------------------------------- #

def test_compiled_trace_decompiles_to_the_exact_scalar_stream() -> None:
    """compile → iter_requests reproduces every draw of the generator."""
    for workload in make_workloads():
        trace = compile_workload(workload, DURATION)
        compiled = list(trace.iter_requests())
        streamed = list(workload.iter_requests(DURATION))
        assert len(compiled) == len(streamed) == len(trace)
        for got, want in zip(compiled, streamed):
            assert repr(got.time) == repr(want.time)
            assert got.key == want.key
            assert got.op is want.op
            assert got.key_size == want.key_size
            assert got.value_size == want.value_size


def test_generic_compiler_covers_unknown_workload_subclasses() -> None:
    """A subclass overriding iter_requests must not hit a native compiler."""

    class Reversed(PoissonZipfWorkload):
        def iter_requests(self, duration):
            # Deliberately different from the parent's stream: native
            # compilation of the parent class would diverge.
            requests = list(super().iter_requests(duration))
            for index, request in enumerate(requests):
                if index % 7 == 0 and request.op.name == "READ":
                    continue
                yield request

    workload = Reversed(num_keys=40, rate_per_key=25.0, seed=5)
    trace = compile_workload(workload, DURATION)
    compiled = [(r.time, r.key, r.op) for r in trace.iter_requests()]
    streamed = [(r.time, r.key, r.op) for r in workload.iter_requests(DURATION)]
    assert compiled == streamed


def test_compile_workload_rejects_bad_durations() -> None:
    workload = PoissonZipfWorkload(num_keys=10, rate_per_key=10.0, seed=0)
    from repro.errors import WorkloadError

    for bad in (0.0, -1.0, float("inf"), float("nan")):
        with pytest.raises(WorkloadError):
            compile_workload(workload, bad)


# --------------------------------------------------------------------- #
# Single-cache replay identity
# --------------------------------------------------------------------- #

def test_vector_replay_matches_scalar_for_every_kernel_policy() -> None:
    for workload in make_workloads():
        trace = compile_workload(workload, DURATION)
        for policy_name in KERNEL_POLICIES:
            scalar = Simulation(
                workload=workload.iter_requests(DURATION),
                policy=make_policy(policy_name),
                staleness_bound=1.0,
                duration=DURATION,
                workload_name=workload.name,
            ).run()
            simulation = VectorSimulation(
                trace,
                policy=make_policy(policy_name),
                staleness_bound=1.0,
                duration=DURATION,
                workload_name=workload.name,
            )
            vector = simulation.run()
            assert simulation.used_vector_path, (workload.name, policy_name)
            assert_identical(scalar.as_dict(), vector.as_dict())


def test_vector_replay_matches_scalar_across_staleness_bounds() -> None:
    workload = PoissonZipfWorkload(num_keys=60, rate_per_key=40.0, seed=3)
    trace = compile_workload(workload, DURATION)
    for bound in (0.25, 1.0, 4.0):
        scalar = Simulation(
            workload=workload.iter_requests(DURATION),
            policy=make_policy("adaptive"),
            staleness_bound=bound,
            duration=DURATION,
            workload_name=workload.name,
        ).run()
        vector = VectorSimulation(
            trace,
            policy=make_policy("adaptive"),
            staleness_bound=bound,
            duration=DURATION,
            workload_name=workload.name,
        ).run()
        assert_identical(scalar.as_dict(), vector.as_dict())


def test_ineligible_configs_fall_back_to_the_scalar_loop() -> None:
    """Outside the vector envelope the engine must degrade, not diverge."""
    workload = PoissonZipfWorkload(num_keys=60, rate_per_key=30.0, seed=7)
    trace = compile_workload(workload, DURATION)
    scalar = Simulation(
        workload=workload.iter_requests(DURATION),
        policy=make_policy("invalidate"),
        staleness_bound=1.0,
        cache_capacity=16,
        duration=DURATION,
        workload_name=workload.name,
    ).run()
    simulation = VectorSimulation(
        trace,
        policy=make_policy("invalidate"),
        staleness_bound=1.0,
        cache_capacity=16,
        duration=DURATION,
        workload_name=workload.name,
    )
    vector = simulation.run()
    assert not simulation.used_vector_path
    assert_identical(scalar.as_dict(), vector.as_dict())


def test_vector_simulation_requires_a_compiled_trace() -> None:
    workload = PoissonZipfWorkload(num_keys=10, rate_per_key=10.0, seed=0)
    with pytest.raises(ConfigurationError):
        VectorSimulation(
            workload.iter_requests(1.0),
            policy=make_policy("invalidate"),
            staleness_bound=1.0,
        )


def test_compiled_trace_reports_length_and_columns() -> None:
    trace = compile_workload(
        PoissonZipfWorkload(num_keys=10, rate_per_key=10.0, seed=0), 1.0
    )
    assert isinstance(trace, CompiledTrace)
    assert len(trace) == trace.times.size == trace.key_ids.size == trace.is_read.size


# --------------------------------------------------------------------- #
# Bench layer engine plumbing
# --------------------------------------------------------------------- #

def test_bench_policy_vector_rows_match_scalar_results() -> None:
    scalar = bench_policy("invalidate", num_requests=20_000, num_keys=300)
    vector = bench_policy(
        "invalidate", num_requests=20_000, num_keys=300, engine="vector"
    )
    for key in ("requests", "hit_ratio", "normalized_freshness_cost",
                "normalized_staleness_cost"):
        assert repr(scalar[key]) == repr(vector[key])
    assert scalar["engine"] == "scalar" and vector["engine"] == "vector"
    assert "merge_seconds" in vector and vector["merge_seconds"] == 0.0


def test_bench_policy_rejects_bad_engine_and_worker_combos() -> None:
    with pytest.raises(ConfigurationError, match="engine"):
        bench_policy("invalidate", num_requests=1000, engine="numpy")
    with pytest.raises(ConfigurationError, match="workers"):
        bench_policy("invalidate", num_requests=1000, workers=0)
    with pytest.raises(ConfigurationError, match="num_nodes"):
        bench_policy("invalidate", num_requests=1000, engine="vector", workers=2)
    with pytest.raises(ConfigurationError, match="vector"):
        bench_policy(
            "invalidate", num_requests=1000, num_nodes=3, engine="scalar", workers=2
        )
