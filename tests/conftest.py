"""Shared pytest wiring: the ``--run-slow`` opt-in for exhaustive sweeps.

Tests marked ``@pytest.mark.slow`` (the full differential-harness sweep,
large randomized property runs) are skipped by default so the tier-1 suite
stays fast; ``pytest --run-slow`` runs everything.
"""

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run tests marked slow (full differential sweeps)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: exhaustive sweep, skipped unless --run-slow is given"
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: "list[pytest.Item]"
) -> None:
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow sweep; opt in with --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
