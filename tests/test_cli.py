"""The ``python -m repro`` command-line interface."""

import json
import re

import pytest

import repro
from repro.__main__ import main


def test_help_lists_every_subcommand(capsys) -> None:
    """New subcommands cannot ship undocumented: --help must name them all."""
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    listing = re.search(r"\{([a-z,-]+)\}", out)
    assert listing is not None, f"no subcommand listing in --help output:\n{out}"
    subcommands = set(listing.group(1).split(","))
    assert subcommands == {
        "run",
        "sweep",
        "bench",
        "perf",
        "cluster",
        "store",
        "tier",
        "obs",
    }


def test_version_flag_prints_the_package_version(capsys) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_unknown_policy_name_exits_non_zero(capsys) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--policy", "no-such-policy"])
    assert excinfo.value.code != 0
    assert "no-such-policy" in capsys.readouterr().err


def test_negative_duration_exits_non_zero(capsys) -> None:
    for argv in (
        ["run", "--duration=-5"],
        ["run", "--duration=inf"],
        ["run", "--duration=nan"],
        ["sweep", "--duration=-5"],
        ["cluster", "--duration=0"],
        ["store", "snapshot", "--dir", "x", "--duration=-1"],
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code != 0
    assert "positive" in capsys.readouterr().err


def test_unknown_workload_and_missing_subcommand_exit_non_zero(capsys) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--workload", "nope"])
    assert excinfo.value.code != 0
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code != 0


def test_run_prints_result_json(capsys) -> None:
    exit_code = main(
        [
            "run",
            "--workload", "poisson",
            "--policy", "adaptive",
            "--bound", "1.0",
            "--duration", "2.0",
            "--param", "num_keys=15",
        ]
    )
    assert exit_code == 0
    row = json.loads(capsys.readouterr().out)
    assert row["policy"] == "adaptive"
    assert row["reads"] + row["writes"] > 0


def test_sweep_writes_csv_and_json(tmp_path, capsys) -> None:
    csv_path = tmp_path / "sweep.csv"
    json_path = tmp_path / "sweep.json"
    exit_code = main(
        [
            "sweep",
            "--policies", "invalidate,update",
            "--workloads", "poisson",
            "--bounds", "0.5,2.0",
            "--duration", "2.0",
            "--param", "num_keys=15",
            "--processes", "1",
            "--csv", str(csv_path),
            "--json", str(json_path),
        ]
    )
    assert exit_code == 0
    assert csv_path.exists()
    document = json.loads(json_path.read_text())
    assert len(document["results"]) == 4


def test_cluster_sweep_runs_scenarios_and_exports(tmp_path, capsys) -> None:
    json_path = tmp_path / "fleet.json"
    exit_code = main(
        [
            "cluster",
            "--nodes", "8",
            "--replication", "2",
            "--scenario", "node-failure",
            "--policies", "invalidate",
            "--bounds", "0.5",
            "--duration", "6.0",
            "--param", "num_keys=100",
            "--hot-policy", "update",
            "--processes", "1",
            "--json", str(json_path),
        ]
    )
    assert exit_code == 0
    document = json.loads(json_path.read_text())
    (row,) = document["results"]
    assert row["num_nodes"] == 8
    assert row["replication"] == 2
    assert row["scenario"] == "node-failure"
    assert row["rebalances"] == 2
    assert len(row["nodes"]) == 8
    assert row["reads"] + row["writes"] > 0


def test_tier_sweep_sweeps_l1_capacities_and_modes(tmp_path, capsys) -> None:
    json_path = tmp_path / "tier.json"
    exit_code = main(
        [
            "tier",
            "--nodes", "2",
            "--l1-capacity", "0,16",
            "--tier-mode", "write-through,write-back",
            "--policies", "invalidate",
            "--bounds", "0.5",
            "--duration", "3.0",
            "--param", "num_keys=100",
            "--processes", "1",
            "--json", str(json_path),
        ]
    )
    assert exit_code == 0
    rows = json.loads(json_path.read_text())["results"]
    # The single-tier baseline (l1_capacity=0) runs once, not once per mode.
    assert len(rows) == 3
    zero = [row for row in rows if row["l1_capacity"] == 0]
    tiered = [row for row in rows if row["l1_capacity"] == 16]
    assert len(zero) == 1 and len(tiered) == 2
    assert zero[0]["l1_hits"] == 0
    assert zero[0]["tier_mode"] == "write-through"
    assert sorted(row["tier_mode"] for row in tiered) == ["write-back", "write-through"]
    assert all(row["l1_hits"] > 0 for row in tiered)


def test_tier_scenario_from_the_command_line(tmp_path, capsys) -> None:
    json_path = tmp_path / "outage.json"
    exit_code = main(
        [
            "tier",
            "--nodes", "2",
            "--l1-capacity", "64",
            "--admission", "always",
            "--scenario", "l2-outage",
            "--policies", "invalidate",
            "--bounds", "0.5",
            "--duration", "4.0",
            "--param", "num_keys=100",
            "--processes", "1",
            "--json", str(json_path),
        ]
    )
    assert exit_code == 0
    (row,) = json.loads(json_path.read_text())["results"]
    assert row["scenario"] == "l2-outage"
    assert row["l1_served_degraded"] > 0


def test_bench_tier_mode_records_l1_share(tmp_path, capsys) -> None:
    exit_code = main(
        [
            "bench",
            "--policies", "invalidate",
            "--requests", "3000",
            "--keys", "100",
            "--nodes", "2",
            "--tier",
            "--l1-capacity", "32",
            "--output-dir", str(tmp_path),
            "--label", "tier",
        ]
    )
    assert exit_code == 0
    record = json.loads((tmp_path / "BENCH_tier.json").read_text())
    assert record["config"]["tier"]["l1_capacity"] == 32
    (result,) = record["results"]
    assert result["l1_hits"] > 0
    assert 0 < result["l1_hit_share"] <= 1


def test_bench_tier_requires_nodes(capsys) -> None:
    with pytest.raises(SystemExit):
        main(["bench", "--tier", "--requests", "100"])


def test_cluster_bench_mode_writes_record(tmp_path, capsys) -> None:
    exit_code = main(
        [
            "bench",
            "--policies", "invalidate,adaptive",
            "--requests", "3000",
            "--keys", "100",
            "--nodes", "4",
            "--replication", "2",
            "--output-dir", str(tmp_path),
            "--label", "cluster",
        ]
    )
    assert exit_code == 0
    record = json.loads((tmp_path / "BENCH_cluster.json").read_text())
    assert record["config"]["num_nodes"] == 4
    for result in record["results"]:
        assert result["num_nodes"] == 4
        assert result["requests_per_sec"] > 0


def test_store_snapshot_crash_recover_resume_verify(tmp_path, capsys) -> None:
    """The CI smoke path: run -> crash -> recover -> resume -> verify."""
    store_dir = tmp_path / "store"
    exit_code = main(
        [
            "store", "snapshot",
            "--dir", str(store_dir),
            "--duration", "8.0",
            "--snapshot-interval", "2.0",
            "--kill-at", "4.0",
            "--param", "num_keys=100",
        ]
    )
    assert exit_code == 0
    row = json.loads(capsys.readouterr().out)
    assert row["interrupted"] is True
    assert row["duration"] == pytest.approx(4.0)
    # Interrupted rows report the same flat persistence counters as
    # finished rows, consistent with their nested store dict.
    assert row["wal_appends"] == row["store"]["wal_appends"] > 0
    assert row["persistence_cost"] == row["store"]["persistence_cost"] > 0
    assert (store_dir / "RUN.json").exists()

    exit_code = main(["store", "recover", "--dir", str(store_dir), "--resume", "--verify"])
    assert exit_code == 0
    output = json.loads(capsys.readouterr().out)
    assert output["recovery"]["recovered_keys"] > 0
    assert output["result"]["duration"] == pytest.approx(8.0)
    assert "interrupted" not in output["result"]
    assert output["verify"]["matches"] is True
    assert output["verify"]["mismatches"] == {}

    exit_code = main(["store", "inspect", "--dir", str(store_dir)])
    assert exit_code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["wal"]["torn_bytes"] == 0
    assert [snap["seq"] for snap in summary["snapshots"]] == sorted(
        snap["seq"] for snap in summary["snapshots"]
    )
    assert summary["snapshots"][-1]["keys"] > 0


def test_store_snapshot_refuses_a_non_empty_directory(tmp_path, capsys) -> None:
    (tmp_path / "junk.txt").write_text("precious")
    with pytest.raises(SystemExit) as excinfo:
        main(["store", "snapshot", "--dir", str(tmp_path), "--duration", "2.0"])
    assert excinfo.value.code != 0


def test_store_recover_verify_requires_resume(tmp_path) -> None:
    with pytest.raises(SystemExit):
        main(["store", "recover", "--dir", str(tmp_path), "--verify"])


def test_bench_store_reports_wal_throughput(tmp_path, capsys) -> None:
    exit_code = main(
        [
            "bench",
            "--policies", "invalidate",
            "--requests", "3000",
            "--keys", "100",
            "--store",
            "--output-dir", str(tmp_path),
            "--label", "wal",
        ]
    )
    assert exit_code == 0
    record = json.loads((tmp_path / "BENCH_wal.json").read_text())
    assert record["store"]["records"] == 3000
    assert record["store"]["append_per_sec"] > 0
    assert record["store"]["replay_per_sec"] > 0
    assert record["store"]["replayed"] == 3000
    assert record["store"]["bytes_written"] > 0


def test_sweep_persist_adds_store_counters_to_rows(tmp_path, capsys) -> None:
    json_path = tmp_path / "sweep.json"
    exit_code = main(
        [
            "sweep",
            "--policies", "invalidate",
            "--workloads", "poisson",
            "--bounds", "1.0",
            "--duration", "2.0",
            "--param", "num_keys=15",
            "--persist",
            "--snapshot-interval", "1.0",
            "--processes", "1",
            "--json", str(json_path),
        ]
    )
    assert exit_code == 0
    (row,) = json.loads(json_path.read_text())["results"]
    assert row["persistence"] is True
    assert row["wal_appends"] > 0
    assert row["store"]["snapshots"] > 0


def test_bench_emits_bench_json_for_three_plus_policies(tmp_path, capsys) -> None:
    exit_code = main(
        [
            "bench",
            "--policies", "ttl-expiry,invalidate,update,adaptive",
            "--requests", "3000",
            "--keys", "100",
            "--output-dir", str(tmp_path),
            "--label", "test",
        ]
    )
    assert exit_code == 0
    records = list(tmp_path.glob("BENCH_*.json"))
    assert len(records) == 1
    record = json.loads(records[0].read_text())
    assert len(record["results"]) >= 3
    for result in record["results"]:
        assert result["requests_per_sec"] > 0
        assert result["requests"] > 0
    assert record["peak_rss_kib"] > 0


def test_bench_vector_engine_writes_engine_tagged_record(tmp_path, capsys) -> None:
    exit_code = main(
        [
            "bench",
            "--policies", "invalidate",
            "--requests", "3000",
            "--keys", "100",
            "--engine", "vector",
            "--output-dir", str(tmp_path),
            "--label", "vec",
        ]
    )
    assert exit_code == 0
    record = json.loads((tmp_path / "BENCH_vec.json").read_text())
    assert record["config"]["engine"] == "vector"
    row = record["results"][0]
    assert row["engine"] == "vector"
    assert row["merge_seconds"] == 0.0
    assert row["requests_per_sec"] > 0


def test_bench_parallel_cluster_records_workers(tmp_path, capsys) -> None:
    exit_code = main(
        [
            "bench",
            "--policies", "invalidate",
            "--requests", "3000",
            "--keys", "100",
            "--nodes", "3",
            "--engine", "vector",
            "--workers", "2",
            "--output-dir", str(tmp_path),
            "--label", "par",
        ]
    )
    assert exit_code == 0
    record = json.loads((tmp_path / "BENCH_par.json").read_text())
    assert record["config"]["workers"] == 2
    assert record["results"][0]["workers"] == 2


def test_bench_engine_and_worker_flag_error_paths(capsys) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--engine", "numpy"])
    assert excinfo.value.code != 0
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--workers", "2", "--requests", "100"])
    assert excinfo.value.code != 0
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--workers", "2", "--nodes", "3", "--requests", "100"])
    assert excinfo.value.code != 0
    assert "--engine vector" in str(excinfo.value.code)
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--workers", "0", "--requests", "100"])
    assert excinfo.value.code != 0


def test_sweep_vector_engine_rows_match_scalar_rows(tmp_path, capsys) -> None:
    argv = [
        "sweep",
        "--policies", "invalidate,adaptive",
        "--workloads", "poisson",
        "--bounds", "1.0",
        "--duration", "2.0",
        "--param", "num_keys=15",
        "--processes", "1",
    ]
    scalar_json = tmp_path / "scalar.json"
    vector_json = tmp_path / "vector.json"
    assert main(argv + ["--json", str(scalar_json)]) == 0
    assert main(argv + ["--engine", "vector", "--json", str(vector_json)]) == 0
    scalar_rows = json.loads(scalar_json.read_text())["results"]
    vector_rows = json.loads(vector_json.read_text())["results"]
    for scalar_row, vector_row in zip(scalar_rows, vector_rows):
        assert scalar_row.pop("engine") == "scalar"
        assert vector_row.pop("engine") == "vector"
        assert scalar_row == vector_row


def test_sweep_rejects_unknown_engine(capsys) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--engine", "bogus"])
    assert excinfo.value.code != 0
