"""The ``python -m repro`` command-line interface."""

import json

from repro.__main__ import main


def test_run_prints_result_json(capsys) -> None:
    exit_code = main(
        [
            "run",
            "--workload", "poisson",
            "--policy", "adaptive",
            "--bound", "1.0",
            "--duration", "2.0",
            "--param", "num_keys=15",
        ]
    )
    assert exit_code == 0
    row = json.loads(capsys.readouterr().out)
    assert row["policy"] == "adaptive"
    assert row["reads"] + row["writes"] > 0


def test_sweep_writes_csv_and_json(tmp_path, capsys) -> None:
    csv_path = tmp_path / "sweep.csv"
    json_path = tmp_path / "sweep.json"
    exit_code = main(
        [
            "sweep",
            "--policies", "invalidate,update",
            "--workloads", "poisson",
            "--bounds", "0.5,2.0",
            "--duration", "2.0",
            "--param", "num_keys=15",
            "--processes", "1",
            "--csv", str(csv_path),
            "--json", str(json_path),
        ]
    )
    assert exit_code == 0
    assert csv_path.exists()
    document = json.loads(json_path.read_text())
    assert len(document["results"]) == 4


def test_cluster_sweep_runs_scenarios_and_exports(tmp_path, capsys) -> None:
    json_path = tmp_path / "fleet.json"
    exit_code = main(
        [
            "cluster",
            "--nodes", "8",
            "--replication", "2",
            "--scenario", "node-failure",
            "--policies", "invalidate",
            "--bounds", "0.5",
            "--duration", "6.0",
            "--param", "num_keys=100",
            "--hot-policy", "update",
            "--processes", "1",
            "--json", str(json_path),
        ]
    )
    assert exit_code == 0
    document = json.loads(json_path.read_text())
    (row,) = document["results"]
    assert row["num_nodes"] == 8
    assert row["replication"] == 2
    assert row["scenario"] == "node-failure"
    assert row["rebalances"] == 2
    assert len(row["nodes"]) == 8
    assert row["reads"] + row["writes"] > 0


def test_cluster_bench_mode_writes_record(tmp_path, capsys) -> None:
    exit_code = main(
        [
            "bench",
            "--policies", "invalidate,adaptive",
            "--requests", "3000",
            "--keys", "100",
            "--nodes", "4",
            "--replication", "2",
            "--output-dir", str(tmp_path),
            "--label", "cluster",
        ]
    )
    assert exit_code == 0
    record = json.loads((tmp_path / "BENCH_cluster.json").read_text())
    assert record["config"]["num_nodes"] == 4
    for result in record["results"]:
        assert result["num_nodes"] == 4
        assert result["requests_per_sec"] > 0


def test_bench_emits_bench_json_for_three_plus_policies(tmp_path, capsys) -> None:
    exit_code = main(
        [
            "bench",
            "--policies", "ttl-expiry,invalidate,update,adaptive",
            "--requests", "3000",
            "--keys", "100",
            "--output-dir", str(tmp_path),
            "--label", "test",
        ]
    )
    assert exit_code == 0
    records = list(tmp_path.glob("BENCH_*.json"))
    assert len(records) == 1
    record = json.loads(records[0].read_text())
    assert len(record["results"]) >= 3
    for result in record["results"]:
        assert result["requests_per_sec"] > 0
        assert result["requests"] > 0
    assert record["peak_rss_kib"] > 0
