"""Scenario engine: node failure, partition, flash crowd, and the grid axes."""

import json

import pytest

from repro.cluster import ClusterSimulation, ReplicationConfig, make_scenario
from repro.errors import ClusterError
from repro.experiments import ExperimentSpec, ScenarioSpec, run_experiment
from repro.store import StoreConfig
from repro.workload.poisson import PoissonZipfWorkload

DURATION = 12.0
BOUND = 0.5


def run_scenario(scenario_name, policy: str = "invalidate", store_root=None, **scenario_params):
    workload = PoissonZipfWorkload(num_keys=300, rate_per_key=20.0, seed=7)
    scenario = (
        make_scenario(scenario_name, scenario_params) if scenario_name else None
    )
    cluster = ClusterSimulation(
        workload=workload.iter_requests(DURATION),
        policy=policy,
        num_nodes=8,
        staleness_bound=BOUND,
        replication=ReplicationConfig(factor=2, read_policy="round-robin"),
        scenario=scenario,
        duration=DURATION,
        workload_name="poisson",
        seed=7,
        store=(
            StoreConfig(str(store_root), snapshot_interval=1.0)
            if store_root is not None
            else None
        ),
    )
    return cluster.run()


def test_node_failure_produces_stale_serve_spike_vs_ideal_baseline() -> None:
    """The acceptance check: failed-but-undetected nodes serve stale data."""
    baseline = run_scenario(None)
    failure = run_scenario("node-failure")
    # Ideal channels + write-reactive invalidation keep the baseline clean.
    assert baseline.totals.staleness_violations == 0
    assert failure.totals.staleness_violations > 0
    # The spike is attributable to the failure machinery: dropped freshness
    # messages, fetches that could not reach the backend, and a rebalance
    # when the detector fired plus one when the node rejoined.
    assert failure.totals.messages_dropped > 0
    assert failure.failed_fetches > 0
    assert failure.rebalances == 2


def test_node_failure_concentrates_staleness_on_the_failed_node() -> None:
    failure = run_scenario("node-failure", node_index=2)
    failed_node = failure.nodes[2]
    others = [node for index, node in enumerate(failure.nodes) if index != 2]
    assert failed_node.staleness_violations > max(
        node.staleness_violations for node in others
    )
    assert failed_node.departures == 1
    assert failed_node.joins == 1


def test_partition_loses_invalidates_but_keeps_serving() -> None:
    baseline = run_scenario(None)
    partition = run_scenario("partition", node_indices=(0, 1))
    assert partition.totals.messages_dropped > 0
    assert partition.totals.staleness_violations > baseline.totals.staleness_violations
    # Unlike node-failure, fetches keep working: no failed fetches, no churn.
    assert partition.failed_fetches == 0
    assert partition.rebalances == 0


def test_flash_crowd_moves_traffic_onto_event_keys() -> None:
    baseline = run_scenario(None)
    crowd = run_scenario("flash-crowd", fraction=0.4, hot_keys=2)
    # The event keys are new to every shard: the crowd lands cold.
    assert crowd.totals.cold_misses > baseline.totals.cold_misses
    # Redirected requests are conserved, just re-keyed.
    assert crowd.totals.reads == baseline.totals.reads
    assert crowd.totals.writes == baseline.totals.writes


def test_warm_rejoin_cuts_the_miss_spike_versus_cold_rejoin(tmp_path) -> None:
    """The acceptance check: a snapshot-restored rejoin beats a cold one."""
    cold = run_scenario("node-failure", store_root=tmp_path / "cold")
    warm = run_scenario("node-failure", store_root=tmp_path / "warm", rejoin="warm")
    # The rejoining node actually restored durable state...
    assert warm.warm_restored > 0
    rejoined = warm.nodes[0]
    assert rejoined.warm_restored > 0
    assert rejoined.warm_invalidated < rejoined.warm_restored
    # ...and the restore measurably shrinks the rejoin spike: keys untouched
    # during the outage serve as hits instead of cold misses, while entries
    # written during the outage came back invalidated, so the stale-serve
    # count does not grow.
    assert warm.totals.misses < cold.totals.misses
    assert warm.totals.hits > cold.totals.hits
    assert warm.totals.cold_misses < cold.totals.cold_misses
    assert warm.totals.staleness_violations <= cold.totals.staleness_violations
    # Cold rejoin restores nothing, by definition.
    assert cold.warm_restored == 0


def test_kill_at_t_warm_restart_beats_cold_restart(tmp_path) -> None:
    cold = run_scenario("kill-at-t", store_root=tmp_path / "cold", mode="cold")
    warm = run_scenario("kill-at-t", store_root=tmp_path / "warm", mode="warm")
    # Every node crashed once, in both modes.
    assert cold.crashes == warm.crashes == 8
    assert all(node.crashes == 1 for node in warm.nodes)
    # Warm restart refills every cache from its snapshot...
    assert warm.warm_restored > 0
    assert cold.warm_restored == 0
    # ...and turns a fleet-wide cold-miss storm into mostly hits.
    assert warm.totals.misses < cold.totals.misses
    assert warm.totals.staleness_violations <= cold.totals.staleness_violations


def test_warm_scenarios_require_a_store() -> None:
    with pytest.raises(ClusterError):
        run_scenario("node-failure", rejoin="warm")
    with pytest.raises(ClusterError):
        run_scenario("kill-at-t", mode="warm")
    # Cold kill-at-t also journals nothing, so it needs no store... but the
    # crash itself is storeless: it must run fine without one.
    result = run_scenario("kill-at-t", mode="cold")
    assert result.crashes == 8


def test_scenario_instances_can_be_rebound_to_a_different_run() -> None:
    scenario = make_scenario("node-failure")
    scenario.bind(duration=20.0, staleness_bound=0.5, num_nodes=4)
    first = scenario.describe()
    scenario.bind(duration=5.0, staleness_bound=0.5, num_nodes=4)
    second = scenario.describe()
    # Relative defaults are recomputed from the new horizon, not baked in.
    assert first["fail_at"] == pytest.approx(8.0)
    assert second["fail_at"] == pytest.approx(2.0)
    assert second["detect_at"] < 5.0


def test_fleet_cache_stats_ratios_are_recomputed_not_summed() -> None:
    result = run_scenario(None)
    stats = result.totals.cache_stats
    assert 0.0 <= stats["hit_ratio"] <= 1.0
    assert 0.0 <= stats["miss_ratio"] <= 1.0
    assert stats["hit_ratio"] == pytest.approx(stats["hits"] / stats["lookups"])


def test_scenarios_validate_their_timelines() -> None:
    with pytest.raises(ClusterError):
        make_scenario("no-such-scenario")
    with pytest.raises(ClusterError):
        # Wrong parameter for this scenario: a clean error, not a TypeError.
        make_scenario("node-failure", {"loss": 0.5})
    with pytest.raises(ClusterError):
        run_scenario("node-failure", fail_at=5.0, detect_at=4.0)
    with pytest.raises(ClusterError):
        run_scenario("partition", start_at=8.0, end_at=2.0)
    with pytest.raises(ClusterError):
        run_scenario("node-failure", node_index=99)
    with pytest.raises(ClusterError):
        make_scenario("node-failure", {"rejoin": "lukewarm"})
    with pytest.raises(ClusterError):
        make_scenario("kill-at-t", {"mode": "tepid"})
    with pytest.raises(ClusterError):
        run_scenario("kill-at-t", mode="cold", kill_at=99.0)


def test_cluster_grid_axes_expand_and_run_identically_across_processes() -> None:
    spec = ExperimentSpec(
        name="fleet",
        policies=["invalidate"],
        workloads=["poisson"],
        staleness_bounds=[BOUND],
        num_nodes=[4, 8],
        replications=[2],
        scenarios=[None, ScenarioSpec.of("node-failure")],
        duration=6.0,
        base_seed=7,
    )
    assert spec.num_cells == 4
    serial = run_experiment(spec, processes=1)
    parallel = run_experiment(spec, processes=2)
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
    by_coords = {(row["num_nodes"], row["scenario"]): row for row in serial}
    assert set(by_coords) == {(4, "none"), (4, "node-failure"), (8, "none"), (8, "node-failure")}
    for nodes in (4, 8):
        assert (
            by_coords[(nodes, "node-failure")]["staleness_violations"]
            > by_coords[(nodes, "none")]["staleness_violations"]
        )


def test_spec_rejects_replication_exceeding_the_smallest_fleet() -> None:
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ExperimentSpec(
            name="bad",
            policies=["invalidate"],
            workloads=["poisson"],
            staleness_bounds=[1.0],
            num_nodes=[4, 8],
            replications=[2, 8],
        )


def test_spec_rejects_cluster_features_on_single_cache_cells() -> None:
    from repro.errors import ConfigurationError

    base = dict(
        name="bad",
        policies=["invalidate"],
        workloads=["poisson"],
        staleness_bounds=[1.0],
    )
    # A scenario without a cluster axis would produce rows labeled with a
    # scenario that never ran.
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, scenarios=["node-failure"])
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, num_nodes=[None, 4], scenarios=["node-failure"])
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, hot_policy="update")
    # Clairvoyant policies are rejected before the sweep, not mid-run.
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**{**base, "policies": ["optimal"]}, num_nodes=[4])
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, num_nodes=[4], hot_policy="optimal")


def test_single_cache_cells_are_unchanged_by_the_new_axes() -> None:
    spec = ExperimentSpec(
        name="single",
        policies=["invalidate"],
        workloads=["poisson"],
        staleness_bounds=[1.0],
        duration=2.0,
        base_seed=1,
    )
    (row,) = run_experiment(spec, processes=1)
    assert row["num_nodes"] is None
    assert row["scenario"] == "none"
    assert "nodes" not in row  # no per-node breakdown on single-cache rows
