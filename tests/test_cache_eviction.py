"""Eviction and capacity behaviour of the cache layer."""

import pytest

from repro.cache.cache import Cache
from repro.cache.eviction import FIFOEviction, LFUEviction, LRUEviction
from repro.core.ttl import TTLExpiryPolicy
from repro.errors import ConfigurationError
from repro.sim.simulation import Simulation
from repro.workload.poisson import PoissonZipfWorkload


def fill(cache: Cache, key: str, time: float) -> None:
    cache.fill(key, version=1, time=time)


def test_capacity_is_enforced_with_lru_victim() -> None:
    cache = Cache(capacity=2, eviction=LRUEviction())
    fill(cache, "a", 0.0)
    fill(cache, "b", 1.0)
    cache.lookup("a", 2.0)  # refresh recency of "a"
    fill(cache, "c", 3.0)
    assert len(cache) == 2
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.stats.evictions == 1


def test_fifo_ignores_recency() -> None:
    cache = Cache(capacity=2, eviction=FIFOEviction())
    fill(cache, "a", 0.0)
    fill(cache, "b", 1.0)
    cache.lookup("a", 2.0)  # does not save "a" under FIFO
    fill(cache, "c", 3.0)
    assert "a" not in cache and "b" in cache and "c" in cache


def test_lfu_evicts_least_frequent() -> None:
    cache = Cache(capacity=2, eviction=LFUEviction())
    fill(cache, "a", 0.0)
    fill(cache, "b", 1.0)
    cache.lookup("a", 2.0)
    cache.lookup("a", 2.5)
    fill(cache, "c", 3.0)
    assert "a" in cache and "b" not in cache


def test_eviction_callback_fires_with_evicted_entry() -> None:
    evicted = []
    cache = Cache(capacity=1, on_evict=lambda entry, time: evicted.append((entry.key, time)))
    fill(cache, "a", 0.0)
    fill(cache, "b", 5.0)
    assert evicted == [("a", 5.0)]


def test_invalid_capacity_rejected() -> None:
    with pytest.raises(ConfigurationError):
        Cache(capacity=0)


def test_capacity_bounded_simulation_evicts_and_completes() -> None:
    workload = PoissonZipfWorkload(num_keys=100, rate_per_key=5.0, seed=9)
    result = Simulation(
        workload=workload.iter_requests(5.0),
        policy=TTLExpiryPolicy(),
        staleness_bound=1.0,
        cache_capacity=10,
    ).run()
    assert result.cache_stats["evictions"] > 0
    # Evicted keys re-enter as cold misses, never as stale misses.
    assert result.cold_misses > 10
    assert result.total_requests > 0
