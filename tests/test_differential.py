"""Differential/property harness: three engines, one answer, many configs.

A seeded generator draws randomized-but-valid configurations across the
workload x policy x fleet-size x tier x channel x scenario x concurrency
space, and every configuration is replayed on all three pipelines:

* the streamed scalar :class:`ClusterSimulation`,
* the columnar :class:`VectorClusterSimulation` (which falls back to the
  scalar loop for ineligible configs — the fallback is part of the contract),
* shard-parallel :func:`replay_cluster_parallel` (``workers=1`` when the
  config enables the in-flight fetch model, which refuses multi-worker
  sharding by design).

The assertion is **byte-identity**: the full result row — fleet totals and
every per-node row — serialized with ``json.dumps`` must match exactly.  On
failure the assert message carries the complete reproducer config, so one
paste rebuilds the failing cell.

The default run covers the first :data:`FAST_CONFIGS` draws to keep tier-1
fast; ``pytest --run-slow`` sweeps all :data:`TOTAL_CONFIGS`.
"""

import json
import random
from typing import Any, Dict, Optional

import pytest

from repro.cluster import (
    ClusterSimulation,
    VectorClusterSimulation,
    make_scenario,
    replay_cluster_parallel,
)
from repro.concurrency.config import (
    SERVICE_TIME_DISTRIBUTIONS,
    STAMPEDE_POLICIES,
    ConcurrencyConfig,
)
from repro.experiments.spec import ChannelSpec
from repro.resilience import ChaosSpec
from repro.tier.config import TierConfig
from repro.workload.compiled import compile_workload
from repro.workload.poisson import PoissonZipfWorkload

BASE_SEED = 0xD1FF
TOTAL_CONFIGS = 50
FAST_CONFIGS = 12

POLICIES = ("ttl-expiry", "invalidate", "update", "adaptive")
BOUNDS = (0.25, 0.5, 1.0, 2.0)
DURATION = 3.0


def draw_config(index: int) -> Dict[str, Any]:
    """Deterministically draw the ``index``-th randomized configuration."""
    rng = random.Random(BASE_SEED + index)
    num_nodes = rng.randint(1, 6)
    config: Dict[str, Any] = {
        "index": index,
        "workload_keys": rng.randint(40, 80),
        "workload_rate": rng.choice((10.0, 15.0, 20.0)),
        "workload_seed": rng.randint(0, 2**16),
        "policy": rng.choice(POLICIES),
        "bound": rng.choice(BOUNDS),
        "num_nodes": num_nodes,
        "replication": rng.randint(1, min(2, num_nodes)),
        "seed": rng.randint(0, 2**16),
        "l1_capacity": rng.choice((0, 0, 32, 64)),
        "tier_mode": rng.choice(("write-through", "write-back")),
        "channel": None,
        "scenario": None,
        "zones": 1,
        "chaos": None,
        "concurrency": None,
    }
    if rng.random() < 0.3:
        config["channel"] = {
            "loss_probability": rng.choice((0.0, 0.05)),
            "delay": rng.choice((0.0, 0.05)),
            "jitter": rng.choice((0.0, 0.02)),
        }
    if rng.random() < 0.3:
        # node-failure/zone-outage/flapping churn ring membership, so they
        # need survivors.
        choices = (
            ("node-failure", "stampede", "flapping", "zone-outage")
            if num_nodes >= 2
            else ("stampede",)
        )
        config["scenario"] = rng.choice(choices)
        if config["scenario"] == "zone-outage":
            config["zones"] = 2
    if rng.random() < 0.25:
        # Fault plans draw from their own seeded stream; slow-node is left
        # out so chaos cells stay valid without the fetch model.
        config["chaos"] = {
            "seed": rng.randint(0, 2**16),
            "faults": rng.randint(2, 5),
            "kinds": ("delay", "drop", "crash"),
            "window": rng.choice((0.1, 0.3)),
            "loss": rng.choice((0.3, 0.6)),
        }
    if rng.random() < 0.4:
        config["concurrency"] = {
            "service_time": rng.choice(SERVICE_TIME_DISTRIBUTIONS),
            "mean": rng.choice((0.02, 0.05, 0.1)),
            "capacity": rng.randint(1, 6),
            "policy": rng.choice(STAMPEDE_POLICIES),
            "seed": rng.randint(0, 2**16),
        }
    return config


def build_kwargs(config: Dict[str, Any]) -> Dict[str, Any]:
    """Shared engine kwargs for one drawn configuration."""
    return dict(
        policy=config["policy"],
        num_nodes=config["num_nodes"],
        replication=config["replication"],
        staleness_bound=config["bound"],
        duration=DURATION,
        workload_name="diffcheck",
        seed=config["seed"],
        tier=TierConfig(l1_capacity=config["l1_capacity"], mode=config["tier_mode"]),
        channel=ChannelSpec(**config["channel"]) if config["channel"] else None,
        scenario=make_scenario(config["scenario"], {}) if config["scenario"] else None,
        zones=config["zones"],
        chaos=ChaosSpec(**config["chaos"]) if config["chaos"] else None,
        concurrency=(
            ConcurrencyConfig(**config["concurrency"])
            if config["concurrency"]
            else None
        ),
    )


def make_workload(config: Dict[str, Any]) -> PoissonZipfWorkload:
    return PoissonZipfWorkload(
        num_keys=config["workload_keys"],
        rate_per_key=config["workload_rate"],
        seed=config["workload_seed"],
    )


def run_engines(config: Dict[str, Any]) -> Dict[str, str]:
    """Replay one config on every pipeline; rows as canonical JSON."""
    scalar = ClusterSimulation(
        workload=make_workload(config).iter_requests(DURATION), **build_kwargs(config)
    ).run()
    trace = compile_workload(make_workload(config), DURATION)
    vector = VectorClusterSimulation(trace, **build_kwargs(config)).run()
    # The shared fetch queue couples shards, so concurrent configs replay
    # shard-parallel with a single worker (the multi-worker refusal is
    # pinned in test_concurrency).
    workers = 1 if config["concurrency"] else min(3, config["num_nodes"])
    parallel = replay_cluster_parallel(trace, workers=workers, **build_kwargs(config))
    return {
        "scalar": json.dumps(scalar.as_dict(), sort_keys=True),
        "vector": json.dumps(vector.as_dict(), sort_keys=True),
        f"parallel[workers={workers}]": json.dumps(parallel.as_dict(), sort_keys=True),
    }


def assert_engines_identical(index: int) -> None:
    config = draw_config(index)
    rows = run_engines(config)
    reference_name, reference = next(iter(rows.items()))
    for name, row in rows.items():
        assert row == reference, (
            f"{name} diverged from {reference_name}.\n"
            f"Reproducer (draw_config({index})):\n"
            f"{json.dumps(config, indent=2, sort_keys=True)}"
        )


def test_generator_is_deterministic_and_covers_the_space() -> None:
    configs = [draw_config(index) for index in range(TOTAL_CONFIGS)]
    assert configs == [draw_config(index) for index in range(TOTAL_CONFIGS)]
    assert len(configs) == TOTAL_CONFIGS
    # The draw must actually exercise every axis across the sweep.
    assert {config["policy"] for config in configs} == set(POLICIES)
    assert any(config["concurrency"] for config in configs)
    assert any(config["concurrency"] is None for config in configs)
    assert any(config["scenario"] for config in configs)
    # The resilience scenarios and chaos plans are differential axes too.
    drawn_scenarios = {config["scenario"] for config in configs}
    assert {"node-failure", "stampede", "flapping", "zone-outage"} <= drawn_scenarios
    assert any(config["chaos"] for config in configs)
    assert any(config["chaos"] is None for config in configs)
    assert any(config["channel"] for config in configs)
    assert any(config["l1_capacity"] for config in configs)
    assert any(config["num_nodes"] == 1 for config in configs)


@pytest.mark.parametrize("index", range(FAST_CONFIGS))
def test_differential_fast(index: int) -> None:
    assert_engines_identical(index)


@pytest.mark.slow
@pytest.mark.parametrize("index", range(FAST_CONFIGS, TOTAL_CONFIGS))
def test_differential_full_sweep(index: int) -> None:
    assert_engines_identical(index)
