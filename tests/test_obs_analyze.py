"""Tests for the post-hoc analysis layer: diff, anomalies, SLOs, reports.

The pinned acceptance scenario: a node-failure cluster run diffed against
its no-scenario twin must flag the stale-serve regression inside the outage
windows, annotated with the scenario's fail/detect/recover lifecycle — and
a run diffed against itself must report nothing at all.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cluster.cluster import ClusterSimulation
from repro.cluster.scenarios import SCENARIO_FACTORIES
from repro.errors import ConfigurationError
from repro.experiments.runner import run_cell, run_experiment
from repro.experiments.spec import ExperimentSpec, RunCell, stable_cell_seed
from repro.obs.analyze import (
    ANOMALY_FIELDS,
    dense_rows,
    detect_anomalies,
    diff_payloads,
    lifecycle_events,
    nearest_event,
    phase_at,
)
from repro.obs.recorder import ObsConfig
from repro.obs.report import render_report
from repro.obs.slo import (
    canonical_rules,
    evaluate_slo,
    load_rules,
    validate_rules,
)
from repro.workload.poisson import PoissonZipfWorkload


def _cluster_payload(scenario: bool = True, duration: float = 60.0) -> dict:
    """The node-failure fixture from test_obs.py: 3 nodes, fail at t=24."""
    workload = PoissonZipfWorkload(num_keys=200, rate_per_key=5.0, seed=3)
    simulation = ClusterSimulation(
        workload=workload.iter_requests(duration),
        policy="invalidate",
        num_nodes=3,
        staleness_bound=1.0,
        scenario=SCENARIO_FACTORIES["node-failure"]() if scenario else None,
        duration=duration,
        workload_name=workload.name,
        seed=3,
        obs=ObsConfig(window=2.0),
    )
    return simulation.run().as_dict()["obs"]


@pytest.fixture(scope="module")
def failure_payload() -> dict:
    return _cluster_payload(scenario=True)


@pytest.fixture(scope="module")
def steady_payload() -> dict:
    return _cluster_payload(scenario=False)


def _single_cell(slo_rules=None, obs_window=2.0) -> RunCell:
    return RunCell(
        experiment="analyze-test",
        cell_id=0,
        policy="invalidate",
        workload="poisson",
        workload_params=(),
        staleness_bound=1.0,
        cache_capacity=None,
        channel=None,
        duration=20.0,
        seed=stable_cell_seed(0, "poisson", {}, 20.0),
        obs_window=obs_window,
        slo_rules=slo_rules,
    )


# --------------------------------------------------------------------- #
# Run diff
# --------------------------------------------------------------------- #

class TestDiff:
    def test_self_diff_reports_nothing(self, failure_payload) -> None:
        report = diff_payloads(failure_payload, failure_payload)
        assert report["kind"] == "repro-obs-diff"
        assert report["regression_count"] == 0
        assert report["improvement_count"] == 0
        assert report["regressions"] == []
        assert report["totals"] == {}

    def test_failure_run_vs_steady_flags_outage_stale_serves(
        self, failure_payload, steady_payload
    ) -> None:
        report = diff_payloads(steady_payload, failure_payload)
        assert report["regression_count"] > 0
        stale = [
            entry
            for entry in report["regressions"]
            if entry["field"] == "staleness_violations"
        ]
        # NodeFailureScenario: fail at t=24, detect at t=28 — the stale
        # serves land in the outage windows and nowhere else.
        assert stale, "stale-serve regression must be flagged"
        for entry in stale:
            assert 24.0 <= entry["start"] < 28.0
            assert entry["severity"] > 0
            assert entry["phase"] == "fail"
            assert entry["event"]["kind"] == "scenario"
            assert entry["event"]["label"] in ("fail", "detect", "recover")
            # Node attribution: the failed primary serves the stale reads.
            assert entry["node"] == "node-000"
            assert entry["node_delta"] > 0

    def test_regressions_are_ranked_by_score(self, failure_payload, steady_payload) -> None:
        report = diff_payloads(steady_payload, failure_payload)
        scores = [entry["score"] for entry in report["regressions"]]
        assert scores == sorted(scores, reverse=True)

    def test_totals_delta_is_oriented(self, failure_payload, steady_payload) -> None:
        report = diff_payloads(steady_payload, failure_payload)
        assert report["totals"]["staleness_violations"]["delta"] > 0

    def test_min_relative_filters_noise(self, failure_payload, steady_payload) -> None:
        full = diff_payloads(steady_payload, failure_payload)
        filtered = diff_payloads(
            steady_payload, failure_payload, min_relative=10.0
        )
        assert filtered["regression_count"] < full["regression_count"]

    def test_rejects_foreign_payloads(self, failure_payload) -> None:
        with pytest.raises(ValueError, match="not a repro-obs payload"):
            diff_payloads({"kind": "nope"}, failure_payload)
        with pytest.raises(ValueError, match="not a repro-obs payload"):
            diff_payloads(failure_payload, {"kind": "nope"})

    def test_rejects_mismatched_window_widths(self, failure_payload) -> None:
        other = _cluster_payload(scenario=False, duration=10.0)
        other = json.loads(json.dumps(other))
        other["windows"]["window"] = 5.0
        with pytest.raises(ValueError, match="different window widths"):
            diff_payloads(failure_payload, other)


class TestDenseRows:
    def test_fills_missing_windows_with_zeros(self, failure_payload) -> None:
        payload = json.loads(json.dumps(failure_payload))
        rows = payload["windows"]["rows"]
        removed = rows.pop(3)
        dense = dense_rows(payload)
        indices = [row["index"] for row in dense]
        assert indices == list(range(min(indices), max(indices) + 1))
        filler = dense[indices.index(removed["index"])]
        assert filler["reads"] == 0 and filler["hit_rate"] == 0.0
        assert filler["start"] == removed["start"]

    def test_empty_payload_yields_no_rows(self) -> None:
        assert dense_rows({"windows": {"window": 1.0, "rows": []}}) == []


class TestLifecycleAnnotation:
    def test_phase_tracks_scenario_labels(self, failure_payload) -> None:
        events = lifecycle_events(failure_payload)
        assert phase_at(events, 0.0) == "steady"
        assert phase_at(events, 25.0) == "fail"
        assert phase_at(events, 59.0) == "recover"

    def test_nearest_event_prefers_closest(self, failure_payload) -> None:
        events = lifecycle_events(failure_payload)
        near_fail = nearest_event(events, 24.1)
        assert near_fail["kind"] == "scenario" and near_fail["label"] == "fail"
        assert nearest_event([], 10.0) is None


# --------------------------------------------------------------------- #
# Anomaly detection
# --------------------------------------------------------------------- #

class TestAnomalies:
    def test_flags_stale_serve_spike_in_outage(self, failure_payload) -> None:
        anomalies = detect_anomalies(failure_payload)
        spikes = [
            record
            for record in anomalies
            if record["type"] == "spike" and record["field"] == "staleness_violations"
        ]
        assert spikes, "the outage stale-serve spike must be flagged"
        for record in spikes:
            assert 24.0 <= record["start"] < 28.0
            assert record["phase"] == "fail"
            assert record["event"]["kind"] in ("scenario", "rebalance")

    def test_annotated_with_nearest_scenario_event(self, failure_payload) -> None:
        anomalies = detect_anomalies(failure_payload)
        assert anomalies
        top = anomalies[0]
        assert top["event"] is not None
        assert {"kind", "label", "time", "node"} <= set(top["event"])

    def test_steady_run_has_no_outage_spikes(self, steady_payload) -> None:
        anomalies = detect_anomalies(steady_payload)
        assert not any(
            record["field"] in ("staleness_violations", "messages_dropped", "failed_fetches")
            for record in anomalies
        )

    def test_change_point_catches_warmup_regime(self, steady_payload) -> None:
        changes = [
            record
            for record in detect_anomalies(steady_payload)
            if record["type"] == "change-point" and record["field"] == "cold_misses"
        ]
        # Cold misses collapse once the cache warms: a change point early on.
        assert changes and changes[0]["index"] <= 2

    def test_deterministic(self, failure_payload) -> None:
        first = detect_anomalies(failure_payload)
        second = detect_anomalies(json.loads(json.dumps(failure_payload)))
        assert first == second

    def test_field_filter_and_threshold(self, failure_payload) -> None:
        only = detect_anomalies(failure_payload, fields=("staleness_violations",))
        assert only and all(r["field"] == "staleness_violations" for r in only)
        strict = detect_anomalies(failure_payload, threshold=1000.0)
        assert strict == []

    def test_rejects_bad_parameters(self, failure_payload) -> None:
        with pytest.raises(ValueError, match="trailing"):
            detect_anomalies(failure_payload, trailing=0)
        with pytest.raises(ValueError, match="threshold"):
            detect_anomalies(failure_payload, threshold=0.0)

    def test_anomaly_fields_catalog_is_directional(self) -> None:
        assert "staleness_violations" in ANOMALY_FIELDS
        assert "hit_rate" in ANOMALY_FIELDS
        assert "reads" not in ANOMALY_FIELDS  # neutral traffic volume


# --------------------------------------------------------------------- #
# SLO rules engine
# --------------------------------------------------------------------- #

def _passing_rules() -> list:
    return [
        {"type": "hit_ratio_floor", "min": 0.1, "scope": "total"},
        {"type": "staleness_rate_ceiling", "max": 1.0},
        {"type": "counter_ceiling", "field": "messages_dropped", "max": 1e9},
        {
            "type": "histogram_quantile_ceiling",
            "metric": "wal_sync_seconds",
            "quantile": 0.99,
            "max": 1.0,
            "allow_missing": True,
        },
        {"type": "max_anomalies", "max": 10000},
    ]


class TestSloEngine:
    def test_all_rule_types_pass_on_generous_thresholds(self, failure_payload) -> None:
        verdict = evaluate_slo(failure_payload, _passing_rules())
        assert verdict["kind"] == "repro-obs-slo"
        assert verdict["passed"] is True
        assert verdict["violations"] == []
        assert len(verdict["verdicts"]) == 5
        assert all(row["ok"] for row in verdict["verdicts"])

    def test_violations_fail_with_observed_values(self, failure_payload) -> None:
        verdict = evaluate_slo(
            failure_payload,
            [
                {"name": "impossible-hits", "type": "hit_ratio_floor", "min": 1.0},
                {"name": "zero-stale", "type": "staleness_rate_ceiling", "max": 0.0},
                {"name": "no-anomalies", "type": "max_anomalies", "max": 0},
            ],
        )
        assert verdict["passed"] is False
        assert verdict["violations"] == ["impossible-hits", "zero-stale", "no-anomalies"]
        stale = verdict["verdicts"][1]
        assert stale["observed"] > 0 and "ceiling" in stale["detail"]

    def test_missing_histogram_is_a_violation_unless_allowed(self, failure_payload) -> None:
        rule = {
            "type": "histogram_quantile_ceiling",
            "metric": "wal_sync_seconds",
            "quantile": 0.99,
            "max": 1.0,
        }
        assert evaluate_slo(failure_payload, [rule])["passed"] is False
        assert (
            evaluate_slo(failure_payload, [dict(rule, allow_missing=True)])["passed"]
            is True
        )

    def test_window_scope_hit_ratio_reports_worst_window(self, failure_payload) -> None:
        verdict = evaluate_slo(
            failure_payload,
            [{"type": "hit_ratio_floor", "min": 0.99, "scope": "window", "warmup": 2}],
        )
        (row,) = verdict["verdicts"]
        assert row["ok"] is False
        assert "worst window" in row["detail"]

    def test_precomputed_anomalies_are_reused(self, failure_payload) -> None:
        anomalies = detect_anomalies(failure_payload)
        verdict = evaluate_slo(
            failure_payload,
            [{"type": "max_anomalies", "max": 0}],
            anomalies=anomalies,
        )
        (row,) = verdict["verdicts"]
        assert row["observed"] == len(anomalies)

    def test_validation_rejects_bad_rules(self) -> None:
        with pytest.raises(ValueError, match="unknown type"):
            validate_rules([{"type": "nope"}])
        with pytest.raises(ValueError, match="must be a number"):
            validate_rules([{"type": "hit_ratio_floor", "min": "high"}])
        with pytest.raises(ValueError, match=r"in \[0, 1\]"):
            validate_rules([{"type": "hit_ratio_floor", "min": 2.0}])
        with pytest.raises(ValueError, match="duplicate"):
            validate_rules(
                [
                    {"name": "x", "type": "staleness_rate_ceiling", "max": 1.0},
                    {"name": "x", "type": "staleness_rate_ceiling", "max": 2.0},
                ]
            )
        with pytest.raises(ValueError, match="scope"):
            validate_rules([{"type": "hit_ratio_floor", "min": 0.5, "scope": "fleet"}])

    def test_default_names_are_descriptive(self) -> None:
        rules = validate_rules(
            [{"type": "counter_ceiling", "field": "messages_dropped", "max": 0}]
        )
        assert rules[0]["name"] == "counter_ceiling:messages_dropped"

    def test_load_rules_accepts_list_and_wrapper(self, tmp_path) -> None:
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps([{"type": "staleness_rate_ceiling", "max": 1.0}]))
        assert len(load_rules(str(bare))) == 1
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(
            json.dumps(
                {
                    "kind": "repro-obs-slo-rules",
                    "rules": [{"type": "staleness_rate_ceiling", "max": 1.0}],
                }
            )
        )
        assert len(load_rules(str(wrapped))) == 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "other", "rules": []}))
        with pytest.raises(ValueError, match="expected kind"):
            load_rules(str(bad))

    def test_canonical_rules_is_stable(self) -> None:
        rules = [{"max": 1.0, "type": "staleness_rate_ceiling"}]
        reordered = [{"type": "staleness_rate_ceiling", "max": 1.0}]
        assert canonical_rules(rules) == canonical_rules(reordered)

    def test_committed_rules_file_is_valid(self) -> None:
        path = Path(__file__).resolve().parent.parent / "OBS_RULES.json"
        rules = load_rules(str(path))
        assert len(rules) >= 5
        assert {rule["type"] for rule in rules} >= {
            "hit_ratio_floor",
            "staleness_rate_ceiling",
            "counter_ceiling",
            "histogram_quantile_ceiling",
            "max_anomalies",
        }


# --------------------------------------------------------------------- #
# Experiment integration: slo_rules on the spec, byte-identity
# --------------------------------------------------------------------- #

class TestExperimentSlo:
    def test_run_cell_attaches_verdict(self) -> None:
        rules = canonical_rules([{"type": "hit_ratio_floor", "min": 0.1}])
        row = run_cell(_single_cell(slo_rules=rules))
        assert row["slo"]["kind"] == "repro-obs-slo"
        assert row["slo"]["passed"] is True

    def test_slo_leaves_results_and_obs_payload_byte_identical(self) -> None:
        rules = canonical_rules(_passing_rules())
        with_slo = run_cell(_single_cell(slo_rules=rules))
        without = run_cell(_single_cell(slo_rules=None))
        verdict = with_slo.pop("slo")
        assert verdict["passed"] is True
        assert json.dumps(with_slo, sort_keys=True) == json.dumps(
            without, sort_keys=True
        )

    def test_spec_requires_obs_window(self) -> None:
        with pytest.raises(ConfigurationError, match="obs_window"):
            ExperimentSpec(
                name="slo-misuse",
                policies=["invalidate"],
                workloads=["poisson"],
                staleness_bounds=[1.0],
                slo_rules=[{"type": "hit_ratio_floor", "min": 0.5}],
            )

    def test_spec_validates_rules_eagerly(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown type"):
            ExperimentSpec(
                name="slo-bad",
                policies=["invalidate"],
                workloads=["poisson"],
                staleness_bounds=[1.0],
                obs_window=1.0,
                slo_rules=[{"type": "nope"}],
            )

    def test_sweep_verdicts_identical_serial_vs_parallel(self) -> None:
        spec = ExperimentSpec(
            name="slo-sweep",
            policies=["invalidate", "update"],
            workloads=["poisson"],
            staleness_bounds=[0.5, 1.0],
            duration=5.0,
            obs_window=1.0,
            slo_rules=[
                {"type": "hit_ratio_floor", "min": 0.1},
                {"type": "max_anomalies", "max": 1000},
            ],
        )
        serial = run_experiment(spec, processes=1)
        parallel = run_experiment(spec, processes=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )
        assert all("slo" in row and row["slo"]["verdicts"] for row in serial)


# --------------------------------------------------------------------- #
# HTML report
# --------------------------------------------------------------------- #

class TestReport:
    def test_report_is_self_contained_html(self, failure_payload, steady_payload) -> None:
        anomalies = detect_anomalies(failure_payload)
        slo = evaluate_slo(failure_payload, _passing_rules(), anomalies=anomalies)
        diff = diff_payloads(steady_payload, failure_payload)
        html_text = render_report(
            failure_payload, anomalies=anomalies, slo=slo, diff=diff, title="t<&>t"
        )
        assert html_text.startswith("<!DOCTYPE html>")
        assert "t&lt;&amp;&gt;t" in html_text  # titles are escaped
        assert "<svg" in html_text and "polyline" in html_text
        assert "node-000" in html_text  # per-node sparkline rows
        assert "staleness_violations" in html_text
        assert "SLO verdicts" in html_text and "PASS" in html_text
        assert "Diff vs baseline" in html_text
        assert "http" not in html_text.split("</style>")[0]  # no external assets

    def test_report_renders_without_optional_sections(self, steady_payload) -> None:
        html_text = render_report(steady_payload)
        assert "<svg" in html_text
        assert "SLO verdicts" not in html_text
        assert "Diff vs baseline" not in html_text

    def test_report_is_deterministic(self, failure_payload) -> None:
        assert render_report(failure_payload) == render_report(failure_payload)


# --------------------------------------------------------------------- #
# CLI: obs diff / check / report
# --------------------------------------------------------------------- #

def _record_run(tmp_path, name: str) -> str:
    from repro.__main__ import main

    obs_dir = tmp_path / name
    assert main([
        "-q", "run", "--policy", "invalidate", "--duration", "20",
        "--obs-window", "2", "--obs-dir", str(obs_dir),
        "--output", str(tmp_path / f"{name}.json"),
    ]) == 0
    return str(obs_dir)


class TestCliAnalyze:
    def test_diff_self_is_clean_and_gateable(self, tmp_path, capsys) -> None:
        from repro.__main__ import main

        obs_dir = _record_run(tmp_path, "run-a")
        out = tmp_path / "diff.json"
        assert main([
            "obs", "diff", "--dir", obs_dir, "--against", obs_dir,
            "--json", str(out), "--fail-on-regression",
        ]) == 0
        assert "0 regressions" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["kind"] == "repro-obs-diff"
        assert report["regression_count"] == 0

    def test_diff_requires_a_reference(self, tmp_path) -> None:
        from repro.__main__ import main

        obs_dir = _record_run(tmp_path, "run-b")
        with pytest.raises(SystemExit, match="reference"):
            main(["obs", "diff", "--dir", obs_dir])

    def test_diff_against_committed_baseline_record(self, tmp_path, capsys) -> None:
        from repro.__main__ import main

        obs_dir = _record_run(tmp_path, "run-c")
        baseline = Path(__file__).resolve().parent.parent / "OBS_BASELINE.json"
        assert main([
            "obs", "diff", "--dir", obs_dir, "--baseline", str(baseline),
            "--fail-on-regression",
        ]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_check_pass_and_violation_exit_codes(self, tmp_path, capsys) -> None:
        from repro.__main__ import main

        obs_dir = _record_run(tmp_path, "run-d")
        passing = tmp_path / "pass.json"
        passing.write_text(json.dumps([{"type": "hit_ratio_floor", "min": 0.1}]))
        assert main(["obs", "check", "--dir", obs_dir, "--rules", str(passing)]) == 0
        assert "slo: PASS" in capsys.readouterr().out

        failing = tmp_path / "fail.json"
        failing.write_text(json.dumps([
            {"name": "impossible", "type": "hit_ratio_floor", "min": 1.0},
        ]))
        out = tmp_path / "verdict.json"
        assert main([
            "obs", "check", "--dir", obs_dir, "--rules", str(failing),
            "--json", str(out),
        ]) == 2
        assert "slo: FAIL" in capsys.readouterr().out
        verdict = json.loads(out.read_text())
        assert verdict["violations"] == ["impossible"]

    def test_check_with_committed_rules_passes(self, tmp_path, capsys) -> None:
        # The committed OBS_RULES.json is calibrated against the CI smoke
        # run's configuration (window 5), so record exactly that here.
        from repro.__main__ import main

        obs_dir = tmp_path / "run-e"
        assert main([
            "-q", "run", "--policy", "invalidate", "--duration", "20",
            "--obs-window", "5", "--obs-dir", str(obs_dir),
            "--output", str(tmp_path / "run-e.json"),
        ]) == 0
        rules = Path(__file__).resolve().parent.parent / "OBS_RULES.json"
        assert main(["obs", "check", "--dir", str(obs_dir), "--rules", str(rules)]) == 0
        assert "slo: PASS" in capsys.readouterr().out

    def test_report_writes_html(self, tmp_path, capsys) -> None:
        from repro.__main__ import main

        obs_dir = _record_run(tmp_path, "run-f")
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([{"type": "hit_ratio_floor", "min": 0.1}]))
        out = tmp_path / "report.html"
        assert main([
            "obs", "report", "--dir", obs_dir, "--against", obs_dir,
            "--rules", str(rules), "--output", str(out), "--title", "ci smoke",
        ]) == 0
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text and "ci smoke" in text

    def test_sweep_slo_rules_flag(self, tmp_path, capsys) -> None:
        from repro.__main__ import main

        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([{"type": "hit_ratio_floor", "min": 0.1}]))
        out = tmp_path / "rows.json"
        assert main([
            "-q", "sweep", "--policies", "invalidate", "--workloads", "poisson",
            "--bounds", "1.0", "--duration", "5", "--processes", "1",
            "--obs-window", "1", "--slo-rules", str(rules), "--json", str(out),
        ]) == 0
        rows = json.loads(out.read_text())["results"]
        assert all(row["slo"]["passed"] for row in rows)

    def test_sweep_slo_rules_requires_obs_window(self, tmp_path) -> None:
        from repro.__main__ import main

        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([{"type": "hit_ratio_floor", "min": 0.1}]))
        with pytest.raises(SystemExit, match="obs-window"):
            main([
                "-q", "sweep", "--policies", "invalidate", "--workloads", "poisson",
                "--bounds", "1.0", "--duration", "5",
                "--slo-rules", str(rules),
            ])


# --------------------------------------------------------------------- #
# scripts/check_obs.py baseline gate
# --------------------------------------------------------------------- #

def _load_check_obs():
    path = Path(__file__).resolve().parent.parent / "scripts" / "check_obs.py"
    spec = importlib.util.spec_from_file_location("check_obs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckObsScript:
    def test_update_then_check_round_trips(self, tmp_path) -> None:
        check_obs = _load_check_obs()
        baseline = tmp_path / "OBS_BASELINE.json"
        assert check_obs.main(["--baseline", str(baseline), "--update"]) == 0
        assert check_obs.main(["--baseline", str(baseline)]) == 0

    def test_missing_baseline_is_a_config_error(self, tmp_path) -> None:
        check_obs = _load_check_obs()
        assert check_obs.main(["--baseline", str(tmp_path / "nope.json")]) == 2

    def test_drifted_baseline_fails_with_diff(self, tmp_path, capsys) -> None:
        check_obs = _load_check_obs()
        baseline = tmp_path / "OBS_BASELINE.json"
        assert check_obs.main(["--baseline", str(baseline), "--update"]) == 0
        record = json.loads(baseline.read_text())
        record["payload"]["meta"]["totals"]["hits"] -= 5
        baseline.write_text(json.dumps(record))
        assert check_obs.main(["--baseline", str(baseline)]) == 1
        captured = capsys.readouterr()
        assert "drifted" in captured.err

    def test_committed_baseline_matches_fresh_run(self) -> None:
        check_obs = _load_check_obs()
        baseline = Path(__file__).resolve().parent.parent / "OBS_BASELINE.json"
        assert check_obs.main(["--baseline", str(baseline)]) == 0
