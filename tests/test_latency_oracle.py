"""Closed-form oracles for the latency pipeline.

The latency numbers flow sample → HDR bucket → percentile, and each stage
has an exact contract:

* **Deterministic service** — hand-built traces make every read's latency a
  closed-form value (the service mean, or ``i * mean`` under a capacity-1
  queue), so the engine's percentiles must equal a reference histogram fed
  the same closed-form samples — *exactly*, not approximately.
* **Exponential service** — the sampler is pseudo-random, so the pins are
  distributional: the sample mean must sit within a tolerance of the
  configured mean, and the quantiles must bracket their analytic values
  (median ``mean·ln2``, p99 ``mean·ln100``).
* **Histogram merges** — bucket addition must be associative, commutative,
  and identical to observing every sample in one histogram, which is what
  makes shard-merged percentiles byte-identical to single-process ones.
"""

import math
import random

import pytest

from repro.concurrency.config import ConcurrencyConfig
from repro.experiments.registry import make_policy
from repro.obs.metrics import Histogram, bucket_index, bucket_upper_bound
from repro.sim.simulation import Simulation
from repro.workload.base import OpType, Request


def cold_reads(count: int, spacing: float) -> "list[Request]":
    """A trace of distinct-key reads: every one is a cold miss."""
    return [
        Request(time=index * spacing, key=f"cold-{index}", op=OpType.READ)
        for index in range(count)
    ]


def run_trace(requests: "list[Request]", config: ConcurrencyConfig) -> Simulation:
    duration = requests[-1].time + 1.0
    simulation = Simulation(
        workload=iter(requests),
        policy=make_policy("invalidate"),
        staleness_bound=1.0,
        duration=duration,
        workload_name="oracle",
        concurrency=config,
    )
    simulation.run()
    return simulation


def reference_percentiles(samples: "list[float]") -> "dict[str, float]":
    histogram = Histogram("reference")
    for sample in samples:
        histogram.observe(sample)
    return {
        "p50": histogram.percentile(0.50),
        "p99": histogram.percentile(0.99),
        "p999": histogram.percentile(0.999),
    }


# --------------------------------------------------------------------- #
# Deterministic service: exact closed forms
# --------------------------------------------------------------------- #

def test_uncontended_deterministic_latency_is_exactly_the_mean() -> None:
    mean = 0.05
    count = 10
    config = ConcurrencyConfig(service_time="deterministic", mean=mean, capacity=4)
    simulation = run_trace(cold_reads(count, spacing=1.0), config)
    result = simulation.result
    # Every read is a cold miss served without queueing: latency == mean.
    assert result.latency_count == count
    assert result.latency_sum == pytest.approx(mean * count)
    expected = bucket_upper_bound(bucket_index(mean))
    for quantile in (0.5, 0.99, 0.999):
        assert result.read_latency_percentile(quantile) == expected


def test_capacity_one_queue_latencies_are_multiples_of_the_mean() -> None:
    mean = 0.1
    herd = 8
    # The whole herd misses at t=0 on distinct keys with one fetch slot:
    # the i-th fetch (1-based) completes at i * mean, FIFO.
    requests = [
        Request(time=0.0, key=f"herd-{index}", op=OpType.READ) for index in range(herd)
    ]
    config = ConcurrencyConfig(service_time="deterministic", mean=mean, capacity=1)
    simulation = run_trace(requests, config)
    result = simulation.result
    closed_form = [index * mean for index in range(1, herd + 1)]
    assert result.latency_count == herd
    assert result.latency_sum == pytest.approx(sum(closed_form))
    expected = reference_percentiles(closed_form)
    assert result.read_latency_percentile(0.50) == expected["p50"]
    assert result.read_latency_percentile(0.99) == expected["p99"]
    assert result.read_latency_percentile(0.999) == expected["p999"]


def test_hits_observe_zero_and_pull_the_median_down() -> None:
    mean = 0.05
    config = ConcurrencyConfig(service_time="deterministic", mean=mean, capacity=4)
    # One cold miss, then nine hits on the same key within the bound.
    requests = [Request(time=0.0, key="hot", op=OpType.READ)] + [
        Request(time=0.2 + index * 0.01, key="hot", op=OpType.READ)
        for index in range(9)
    ]
    simulation = run_trace(requests, config)
    result = simulation.result
    assert result.latency_count == 10
    assert result.latency_sum == pytest.approx(mean)  # one miss, nine zeros
    assert result.read_latency_percentile(0.50) == 0.0
    assert result.read_latency_percentile(0.999) == bucket_upper_bound(
        bucket_index(mean)
    )


# --------------------------------------------------------------------- #
# Exponential service: distributional tolerances
# --------------------------------------------------------------------- #

def test_exponential_latencies_match_the_distribution_within_tolerance() -> None:
    mean = 0.05
    count = 4000
    config = ConcurrencyConfig(
        service_time="exponential", mean=mean, capacity=8, seed=12345
    )
    simulation = run_trace(cold_reads(count, spacing=1.0), config)
    result = simulation.result
    assert result.latency_count == count
    # Law of large numbers on the exact per-sample sum: 10% tolerance is
    # ~7 standard errors at n=4000, loose enough to never flake for a
    # fixed seed, tight enough to catch a mis-parameterised sampler.
    assert result.latency_sum / count == pytest.approx(mean, rel=0.10)
    # Quantiles: the bucket estimate is conservative within ~12.5%, so the
    # analytic values (median = mean ln2, p99 = mean ln100) get a band
    # covering quantization + sampling error.
    median = result.read_latency_percentile(0.50)
    assert mean * math.log(2) * 0.7 <= median <= mean * math.log(2) * 1.5
    p99 = result.read_latency_percentile(0.99)
    assert mean * math.log(100) * 0.7 <= p99 <= mean * math.log(100) * 1.5


def test_exponential_is_seed_reproducible() -> None:
    config = ConcurrencyConfig(service_time="exponential", mean=0.05, seed=777)
    first = run_trace(cold_reads(200, spacing=1.0), config).result
    second = run_trace(cold_reads(200, spacing=1.0), config).result
    assert first.latency_buckets == second.latency_buckets
    assert first.latency_sum == second.latency_sum


# --------------------------------------------------------------------- #
# Histogram merge algebra
# --------------------------------------------------------------------- #

def random_shard_histograms(seed: int, shards: int = 5) -> "list[Histogram]":
    rng = random.Random(seed)
    histograms = []
    for shard in range(shards):
        histogram = Histogram(f"shard-{shard}")
        for _ in range(rng.randint(50, 300)):
            histogram.observe(rng.expovariate(1.0 / rng.choice((0.01, 0.05, 0.5))))
        histograms.append(histogram)
    return histograms


def merged(histograms: "list[Histogram]") -> Histogram:
    total = Histogram("merged")
    for histogram in histograms:
        total.merge(histogram)
    return total


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_histogram_merge_is_commutative_and_associative(seed: int) -> None:
    shards = random_shard_histograms(seed)
    forward = merged(shards)
    backward = merged(list(reversed(shards)))
    # Associativity: fold the shards pairwise in a different grouping.
    left = merged(shards[:2])
    right = merged(shards[2:])
    grouped = merged([left, right])
    assert forward.as_dict() == backward.as_dict() == grouped.as_dict()
    for quantile in (0.0, 0.5, 0.9, 0.99, 0.999, 1.0):
        assert forward.percentile(quantile) == backward.percentile(quantile)
        assert forward.percentile(quantile) == grouped.percentile(quantile)


def test_histogram_merge_equals_single_process_observation() -> None:
    rng = random.Random(99)
    samples = [rng.expovariate(20.0) for _ in range(1000)]
    single = Histogram("single")
    for sample in samples:
        single.observe(sample)
    shards = [Histogram(f"s{index}") for index in range(4)]
    for position, sample in enumerate(samples):
        shards[position % 4].observe(sample)
    combined = merged(shards)
    assert combined.counts == single.counts
    assert combined.count == single.count
    assert combined.sum == pytest.approx(single.sum)
    for quantile in (0.5, 0.99, 0.999):
        assert combined.percentile(quantile) == single.percentile(quantile)


def test_percentile_is_monotone_in_the_quantile() -> None:
    histogram = merged(random_shard_histograms(7))
    quantiles = [index / 100 for index in range(101)]
    values = [histogram.percentile(quantile) for quantile in quantiles]
    assert values == sorted(values)
