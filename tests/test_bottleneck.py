"""Bottleneck detection: thresholding, fallback, and procfs parsing."""

import pytest

from repro.bottleneck import (
    Bottleneck,
    BottleneckDetector,
    ResourceProbe,
    SyntheticProcFS,
    UtilizationSnapshot,
)
from repro.bottleneck.procfs import ProcFS
from repro.errors import BottleneckError, ConfigurationError


# --------------------------------------------------------------------- #
# Detector
# --------------------------------------------------------------------- #
def snapshot(cpu: float = 0.0, network: float = 0.0, disk: float = 0.0) -> UtilizationSnapshot:
    return UtilizationSnapshot(cpu=cpu, network=network, disk=disk)


def test_detector_picks_the_most_loaded_resource_above_threshold() -> None:
    detector = BottleneckDetector(threshold=0.7)
    assert detector.detect(snapshot(cpu=0.9, network=0.3)) is Bottleneck.CPU
    assert detector.detect(snapshot(network=0.95, disk=0.8)) is Bottleneck.NETWORK
    assert detector.detect(snapshot(disk=0.75)) is Bottleneck.DISK


def test_detector_tie_break_prefers_cpu_then_network_then_disk() -> None:
    detector = BottleneckDetector(threshold=0.5)
    # Exact ties resolve in candidate order (CPU, NETWORK, DISK), which
    # matches the paper's prototype checking CPU first.
    assert detector.detect(snapshot(cpu=0.8, network=0.8, disk=0.8)) is Bottleneck.CPU
    assert detector.detect(snapshot(network=0.8, disk=0.8)) is Bottleneck.NETWORK


def test_unconstrained_system_reports_none_without_label() -> None:
    detector = BottleneckDetector(threshold=0.7)
    assert detector.detect(snapshot(cpu=0.5, network=0.5, disk=0.5)) is Bottleneck.NONE


def test_unconstrained_system_falls_back_to_offline_label() -> None:
    detector = BottleneckDetector(threshold=0.7, manual_label=Bottleneck.NETWORK)
    assert detector.detect(snapshot(cpu=0.2)) is Bottleneck.NETWORK
    # The live measurement still wins when something is actually loaded.
    assert detector.detect(snapshot(disk=0.9)) is Bottleneck.DISK


def test_detector_threshold_validation() -> None:
    with pytest.raises(ConfigurationError):
        BottleneckDetector(threshold=1.5)


# --------------------------------------------------------------------- #
# Probe parsing against canned real-format snapshots
# --------------------------------------------------------------------- #
class CannedProcFS(ProcFS):
    """Literal file contents copied from real /proc formats."""

    def __init__(self, files: dict) -> None:
        self.files = files

    def read(self, path: str) -> str:
        try:
            return self.files[path]
        except KeyError as exc:
            raise BottleneckError(f"no canned file {path}") from exc


CANNED_STAT = (
    "cpu  300 20 180 900 50 10 40 0 0 0\n"
    "cpu0 150 10 90 450 25 5 20 0 0 0\n"
    "intr 123456 0 0\n"
    "ctxt 987654\n"
)

CANNED_NET_DEV = (
    "Inter-|   Receive                                                |  Transmit\n"
    " face |bytes    packets errs drop fifo frame compressed multicast|bytes"
    "    packets errs drop fifo colls carrier compressed\n"
    "    lo: 5000000  1000    0    0    0     0          0         0  5000000"
    "  1000    0    0    0     0       0          0\n"
    "  eth0: 1000000  8000    0    0    0     0          0         0   250000"
    "  4000    0    0    0     0       0          0\n"
    "  eth1:  500000  2000    0    0    0     0          0         0   250000"
    "  1000    0    0    0     0       0          0\n"
)

CANNED_DISKSTATS = (
    "   8       0 sda 5000 100 80000 3000 2000 50 40000 1500 0 2500 4500\n"
    "   8       1 sda1 4000 90 60000 2500 1800 40 35000 1300 0 2000 3800\n"
    " 259       0 nvme0n1 9000 10 120000 1000 4000 5 64000 900 0 1500 1900\n"
)


def canned_probe(**kwargs) -> ResourceProbe:
    return ResourceProbe(
        procfs=CannedProcFS(
            {
                "/proc/stat": CANNED_STAT,
                "/proc/net/dev": CANNED_NET_DEV,
                "/proc/diskstats": CANNED_DISKSTATS,
            }
        ),
        **kwargs,
    )


def test_cpu_sample_sums_busy_fields_from_the_aggregate_line() -> None:
    sample = canned_probe().sample_cpu()
    # busy = user + nice + system + irq + softirq from the "cpu " line only.
    assert sample.busy == 300 + 20 + 180 + 10 + 40
    assert sample.idle == 900
    assert sample.iowait == 50


def test_network_sample_sums_interfaces_and_skips_loopback() -> None:
    sample = canned_probe().sample_network()
    assert sample.rx_bytes == 1000000 + 500000
    assert sample.tx_bytes == 250000 + 250000


def test_disk_sample_skips_partitions_but_keeps_nvme_whole_devices() -> None:
    sample = canned_probe().sample_disk()
    # sda counts, sda1 is a partition (skipped), nvme0n1 is a whole device.
    assert sample.sectors_read == 80000 + 120000
    assert sample.sectors_written == 40000 + 64000


def test_malformed_cpu_line_raises() -> None:
    probe = ResourceProbe(procfs=CannedProcFS({"/proc/stat": "cpu  1 2\n"}))
    with pytest.raises(BottleneckError):
        probe.sample_cpu()


def test_missing_aggregate_cpu_line_raises() -> None:
    probe = ResourceProbe(procfs=CannedProcFS({"/proc/stat": "cpu0 1 2 3 4 5\n"}))
    with pytest.raises(BottleneckError):
        probe.sample_cpu()


# --------------------------------------------------------------------- #
# Utilisation between samples (synthetic procfs end-to-end)
# --------------------------------------------------------------------- #
def test_utilization_between_synthetic_samples() -> None:
    procfs = SyntheticProcFS()
    probe = ResourceProbe(
        procfs=procfs,
        network_capacity_bytes_per_sec=1e6,
        disk_capacity_bytes_per_sec=1e6,
    )
    cpu0, net0, disk0 = probe.sample_cpu(), probe.sample_network(), probe.sample_disk()
    procfs.set_cpu(busy_jiffies=80, idle_jiffies=20)
    procfs.set_network("eth0", rx_bytes=300_000, tx_bytes=200_000)
    procfs.set_disk("sda", sectors_read=400, sectors_written=600)
    cpu1, net1, disk1 = probe.sample_cpu(), probe.sample_network(), probe.sample_disk()

    snap = probe.utilization_between(cpu0, cpu1, net0, net1, disk0, disk1, elapsed_seconds=1.0)
    assert snap.cpu == pytest.approx(0.8)
    assert snap.network == pytest.approx(0.5)
    assert snap.disk == pytest.approx(512 * 1000 / 1e6)
    assert BottleneckDetector(threshold=0.7).detect(snap) is Bottleneck.CPU


def test_utilization_requires_positive_elapsed_time() -> None:
    probe = canned_probe()
    sample = probe.sample_cpu()
    net = probe.sample_network()
    disk = probe.sample_disk()
    with pytest.raises(BottleneckError):
        probe.utilization_between(sample, sample, net, net, disk, disk, elapsed_seconds=0.0)
