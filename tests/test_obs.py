"""The observability layer: metrics, windows, traces, exporters, and hooks.

The load-bearing invariant everywhere: telemetry *observes* a replay and
never perturbs it — result rows are byte-identical with obs on or off, for
every engine and worker count — and disabled mode binds the plain hot path,
so a run without ``obs=`` pays nothing.
"""

import importlib.util
import json
import math
import re
import time
from pathlib import Path

import pytest

from repro.cluster.cluster import ClusterSimulation
from repro.cluster.parallel import replay_cluster_parallel
from repro.cluster.scenarios import SCENARIO_FACTORIES
from repro.errors import ClusterError, ConfigurationError
from repro.experiments.bench import BENCH_PHASES, bench_policy, phase_timings
from repro.experiments.registry import make_policy
from repro.experiments.runner import run_cell
from repro.experiments.spec import ExperimentSpec, RunCell
from repro.obs.export import (
    export_prometheus,
    export_windows_csv,
    export_windows_jsonl,
    load_run,
    summarize,
    write_run,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper_bound,
    merge_metric_dicts,
)
from repro.obs.recorder import (
    WINDOW_FIELDS,
    ObsConfig,
    ObsRecorder,
    as_recorder,
    merge_payloads,
)
from repro.obs.trace import TraceBuffer, merge_trace_records
from repro.obs.windows import WindowSampler, merge_window_dicts, window_rows
from repro.sim.simulation import Simulation
from repro.sim.vector import VectorSimulation
from repro.workload.compiled import compile_workload
from repro.workload.poisson import PoissonZipfWorkload


def _workload(seed: int = 1, keys: int = 200) -> PoissonZipfWorkload:
    return PoissonZipfWorkload(num_keys=keys, rate_per_key=5.0, seed=seed)


def _single(obs=None, duration: float = 20.0, seed: int = 1) -> Simulation:
    workload = _workload(seed)
    return Simulation(
        workload=workload.iter_requests(duration),
        policy=make_policy("invalidate"),
        staleness_bound=1.0,
        duration=duration,
        workload_name=workload.name,
        obs=obs,
    )


def _cluster(obs=None, duration: float = 60.0, scenario: bool = True, **kwargs):
    workload = _workload(seed=3)
    return ClusterSimulation(
        workload=workload.iter_requests(duration),
        policy="invalidate",
        num_nodes=3,
        staleness_bound=1.0,
        scenario=SCENARIO_FACTORIES["node-failure"]() if scenario else None,
        duration=duration,
        workload_name=workload.name,
        seed=3,
        obs=obs,
        **kwargs,
    )


# --------------------------------------------------------------------- #
# Metrics: histograms, registry, merge exactness
# --------------------------------------------------------------------- #

class TestHistogram:
    def test_bucket_bounds_cover_observed_values(self) -> None:
        for value in (1e-6, 0.001, 0.7, 1.0, 3.5, 1000.0, 1e7):
            upper = bucket_upper_bound(bucket_index(value))
            assert value <= upper <= value * 1.3

    def test_zero_has_its_own_bucket(self) -> None:
        assert bucket_index(0.0) == 0
        assert bucket_upper_bound(0) == 0.0

    def test_percentile_walk(self) -> None:
        histogram = Histogram("t")
        for value in [1.0] * 90 + [100.0] * 10:
            histogram.observe(value)
        assert histogram.percentile(0.5) == bucket_upper_bound(bucket_index(1.0))
        assert histogram.percentile(0.99) == bucket_upper_bound(bucket_index(100.0))
        assert histogram.mean == pytest.approx((90 + 1000) / 100)

    def test_empty_percentile_is_zero(self) -> None:
        assert Histogram("t").percentile(0.99) == 0.0

    def test_empty_histogram_returns_zero_for_every_quantile(self) -> None:
        empty = Histogram("t")
        for quantile in (0.0, 0.5, 1.0):
            assert empty.percentile(quantile) == 0.0

    def test_quantile_zero_is_the_smallest_sample_bound(self) -> None:
        # The rank floors at 1, so q=0.0 bounds the *minimum* sample, not 0.
        histogram = Histogram("t")
        for value in (2.0, 8.0, 64.0):
            histogram.observe(value)
        assert histogram.percentile(0.0) == bucket_upper_bound(bucket_index(2.0))

    def test_quantile_one_is_the_largest_sample_bound(self) -> None:
        histogram = Histogram("t")
        for value in (2.0, 8.0, 64.0):
            histogram.observe(value)
        assert histogram.percentile(1.0) == bucket_upper_bound(bucket_index(64.0))

    def test_single_sample_dominates_every_quantile(self) -> None:
        histogram = Histogram("t")
        histogram.observe(3.0)
        bound = bucket_upper_bound(bucket_index(3.0))
        for quantile in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.percentile(quantile) == bound

    def test_out_of_range_quantiles_are_rejected(self) -> None:
        histogram = Histogram("t")
        histogram.observe(1.0)
        for quantile in (-0.1, 1.1):
            with pytest.raises(ValueError, match="quantile"):
                histogram.percentile(quantile)

    def test_merge_is_exact(self) -> None:
        left, right, reference = Histogram("t"), Histogram("t"), Histogram("t")
        for index, value in enumerate([0.1, 0.5, 2.0, 8.0, 0.0, 1e-9, 5e4]):
            (left if index % 2 else right).observe(value)
            reference.observe(value)
        left.merge(right)
        merged, expected = left.as_dict(), reference.as_dict()
        # Bucket counts and totals are integer-exact; the running float sum
        # may differ in the last ulp with addition order.
        assert merged["counts"] == expected["counts"]
        assert merged["count"] == expected["count"]
        assert merged["sum"] == pytest.approx(expected["sum"])

    def test_dict_round_trip(self) -> None:
        histogram = Histogram("t")
        for value in (0.0, 0.25, 3.0):
            histogram.observe(value)
        clone = Histogram.from_dict("t", histogram.as_dict())
        assert clone.as_dict() == histogram.as_dict()
        assert clone.percentile(0.5) == histogram.percentile(0.5)


class TestRegistry:
    def test_counters_gauges_histograms(self) -> None:
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.counter("c").inc()
        registry.gauge("g").set(4.5)
        registry.histogram("h").observe(1.0)
        data = registry.as_dict()
        assert data["counters"]["c"] == 3
        assert data["gauges"]["g"] == 4.5
        assert data["histograms"]["h"]["count"] == 1
        clone = MetricsRegistry.from_dict(data)
        assert clone.as_dict() == data

    def test_counter_rejects_negative(self) -> None:
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_merge_adds_counters_and_buckets(self) -> None:
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(5)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(1.0)
        merged = merge_metric_dicts(a.as_dict(), b.as_dict())
        assert merged["counters"]["c"] == 6
        assert merged["histograms"]["h"]["count"] == 2


# --------------------------------------------------------------------- #
# Windows and traces
# --------------------------------------------------------------------- #

class TestWindows:
    def test_rows_sum_nodes_in_sorted_order_with_derived_fields(self) -> None:
        sampler = WindowSampler(2.0)
        sampler.add(0, "node-001", {"reads": 10, "hits": 9})
        sampler.add(0, "node-000", {"reads": 10, "hits": 5, "writes": 2})
        rows = window_rows(sampler.as_dict(), WINDOW_FIELDS)
        assert len(rows) == 1
        row = rows[0]
        assert (row["start"], row["end"]) == (0.0, 2.0)
        assert row["reads"] == 20 and row["hits"] == 14
        assert row["hit_rate"] == pytest.approx(14 / 20)
        assert list(row["node_load"]) == ["node-000", "node-001"]
        assert row["node_load"]["node-000"] == 12

    def test_merge_requires_same_width(self) -> None:
        with pytest.raises(ValueError):
            merge_window_dicts(WindowSampler(1.0).as_dict(), WindowSampler(2.0).as_dict())

    def test_merge_unions_disjoint_nodes(self) -> None:
        a, b = WindowSampler(1.0), WindowSampler(1.0)
        a.add(0, "node-000", {"reads": 1})
        b.add(0, "node-001", {"reads": 2})
        b.add(3, "node-001", {"reads": 4})
        merged = merge_window_dicts(a.as_dict(), b.as_dict())
        rows = window_rows(merged, WINDOW_FIELDS)
        assert [row["index"] for row in rows] == [0, 3]
        assert rows[0]["reads"] == 3


class TestTrace:
    def test_buffer_bounds_and_counts_drops(self) -> None:
        buffer = TraceBuffer(2)
        for index in range(5):
            buffer.append({"time": float(index)})
        assert len(buffer.records) == 2
        assert buffer.dropped == 3

    def test_merge_sorts_deterministically(self) -> None:
        a = [{"type": "event", "time": 2.0, "kind": "b"}]
        b = [
            {"type": "event", "time": 2.0, "kind": "a"},
            {"type": "event", "time": 1.0, "kind": "z"},
        ]
        merged = merge_trace_records(a, b)
        assert [record["time"] for record in merged] == [1.0, 2.0, 2.0]
        assert merged[1]["kind"] == "a"


# --------------------------------------------------------------------- #
# Config and recorder plumbing
# --------------------------------------------------------------------- #

class TestObsConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0.0},
            {"window": -1.0},
            {"window": math.nan},
            {"span_every": -1},
            {"max_trace_records": -1},
        ],
    )
    def test_rejects_bad_settings(self, kwargs) -> None:
        with pytest.raises(ValueError):
            ObsConfig(**kwargs)

    def test_as_recorder_normalisation(self) -> None:
        assert as_recorder(None) is None
        assert as_recorder(ObsConfig(enabled=False)) is None
        recorder = ObsRecorder()
        assert as_recorder(recorder) is recorder
        assert isinstance(as_recorder(ObsConfig()), ObsRecorder)
        with pytest.raises(TypeError):
            as_recorder("yes")

    def test_span_sampling_is_deterministic_every_nth(self) -> None:
        recorder = ObsRecorder(ObsConfig(span_every=3))
        decisions = [recorder.span_due() for _ in range(7)]
        assert decisions == [True, False, False, True, False, False, True]
        disabled = ObsRecorder(ObsConfig(span_every=0))
        assert not any(disabled.span_due() for _ in range(5))


# --------------------------------------------------------------------- #
# Engine integration: byte-identity and window series
# --------------------------------------------------------------------- #

class TestSingleCache:
    def test_results_byte_identical_with_obs_on(self) -> None:
        plain = _single().run().as_dict()
        observed = _single(ObsConfig(window=5.0)).run().as_dict()
        assert json.dumps(observed, sort_keys=True) == json.dumps(plain, sort_keys=True)

    def test_windows_sum_to_totals(self) -> None:
        simulation = _single(ObsConfig(window=5.0))
        result = simulation.run()
        payload = simulation.obs.payload()
        rows = window_rows(payload["windows"], WINDOW_FIELDS)
        assert sum(row["reads"] for row in rows) == result.reads
        assert sum(row["hits"] for row in rows) == result.hits
        assert payload["meta"]["totals"]["reads"] == result.reads
        assert payload["meta"]["end_time"] == 20.0

    def test_read_cost_histogram_covers_every_read(self) -> None:
        simulation = _single(ObsConfig(window=5.0))
        result = simulation.run()
        histogram = simulation.obs.payload()["metrics"]["histograms"]["read_cost"]
        assert histogram["count"] == result.reads

    def test_spans_record_outcome_and_phases(self) -> None:
        simulation = _single(ObsConfig(window=5.0, span_every=50))
        simulation.run()
        spans = [r for r in simulation.obs.payload()["trace"] if r["type"] == "span"]
        assert spans, "expected sampled spans"
        outcomes = {span["outcome"] for span in spans}
        assert outcomes <= {"hit", "stale_miss", "cold_miss", "l1_hit", "unreachable", "other", "applied"}
        read = next(span for span in spans if span["op"] == "read")
        assert read["phases"][0] == "route"

    def test_vector_engine_matches_scalar_and_folds_windows(self) -> None:
        workload = _workload()
        trace = compile_workload(workload, 20.0)
        shared = dict(
            policy=make_policy("invalidate"),
            staleness_bound=1.0,
            duration=20.0,
            workload_name=workload.name,
        )
        vector = VectorSimulation(trace, obs=ObsConfig(window=5.0), **shared)
        result = vector.run()
        assert vector.used_vector_path
        plain = _single().run().as_dict()
        assert json.dumps(result.as_dict(), sort_keys=True) == json.dumps(plain, sort_keys=True)
        payload = vector.obs.payload()
        rows = window_rows(payload["windows"], WINDOW_FIELDS)
        assert sum(row["reads"] for row in rows) == result.reads
        assert payload["meta"]["engine"] == "vector"


class TestZeroCostDisabled:
    def test_disabled_never_touches_the_wrappers(self, monkeypatch) -> None:
        calls = {"read": 0}
        original = Simulation._obs_process_read

        def counting(self, request):
            calls["read"] += 1
            return original(self, request)

        monkeypatch.setattr(Simulation, "_obs_process_read", counting)
        assert _single(obs=None).run().reads > 0
        assert calls["read"] == 0, "obs=None must bind the raw hot path"
        _single(ObsConfig(window=5.0)).run()
        assert calls["read"] > 0

    def test_disabled_overhead_within_two_percent(self) -> None:
        """Pinned: obs-disabled replay within 2% of a no-hooks control.

        The control predates the instrumentation in spirit: the identical
        replay driven with the ``obs`` argument omitted entirely.  Interleaved
        best-of-N with retries keeps scheduler noise out of the verdict.
        """
        def disabled() -> None:
            _single(obs=None, duration=10.0).run()

        def control() -> None:
            workload = _workload()
            Simulation(
                workload=workload.iter_requests(10.0),
                policy=make_policy("invalidate"),
                staleness_bound=1.0,
                duration=10.0,
                workload_name=workload.name,
            ).run()

        control()  # warm caches/allocator outside the measured window
        disabled()
        for attempt in range(6):
            best = {"disabled": math.inf, "control": math.inf}
            for _ in range(4):
                for name, fn in (("control", control), ("disabled", disabled)):
                    started = time.perf_counter()
                    fn()
                    best[name] = min(best[name], time.perf_counter() - started)
            ratio = best["disabled"] / best["control"]
            if ratio <= 1.02:
                break
        assert ratio <= 1.02, f"disabled-mode overhead {ratio:.3f}x exceeds the 2% pin"


# --------------------------------------------------------------------- #
# Cluster: the node-failure acceptance scenario
# --------------------------------------------------------------------- #

class TestClusterScenario:
    @pytest.fixture(scope="class")
    def observed(self):
        simulation = _cluster(ObsConfig(window=2.0))
        result = simulation.run()
        return result, result.obs

    def test_results_byte_identical_with_obs_on(self, observed) -> None:
        result, _ = observed
        row = result.as_dict()
        row.pop("obs")
        plain = _cluster().run().as_dict()
        assert json.dumps(row, sort_keys=True) == json.dumps(plain, sort_keys=True)

    def test_stale_serve_spike_visible_in_window_series(self, observed) -> None:
        _, payload = observed
        rows = window_rows(payload["windows"], WINDOW_FIELDS)
        by_start = {row["start"]: row for row in rows}
        # The scenario fails node-000 at t=24 and detects at t=28: reads
        # routed to the dead node serve stale until the ring heals.
        outage = [row for row in rows if 24.0 <= row["start"] < 28.0]
        # Warm windows only: the cold-start windows have a low hit rate for
        # an unrelated reason (first-touch misses).
        healthy = [row for row in rows if 10.0 <= row["start"] and row["end"] <= 24.0]
        assert sum(row["staleness_violations"] for row in outage) > 0
        assert all(row["staleness_violations"] == 0 for row in healthy)
        assert max(row["stale_misses"] for row in outage) > max(
            row["stale_misses"] for row in healthy
        )
        assert min(row["hit_rate"] for row in outage) < min(
            row["hit_rate"] for row in healthy
        )
        assert by_start[0.0]["node_load"], "per-node load present in every window"

    def test_event_stream_carries_the_failure_lifecycle(self, observed) -> None:
        _, payload = observed
        events = [r for r in payload["trace"] if r["type"] == "event"]
        sequence = [
            (event["kind"], event.get("label") or event.get("action"))
            for event in events
        ]
        assert sequence == [
            ("run-start", None),
            ("scenario", "fail"),
            ("rebalance", "remove"),
            ("scenario", "detect"),
            ("rebalance", "add"),
            ("scenario", "recover"),
            ("run-end", None),
        ]
        remove = next(e for e in events if e.get("action") == "remove")
        add = next(e for e in events if e.get("action") == "add")
        assert remove["node"] == add["node"] == "node-000"
        assert remove["time"] < add["time"]


class TestParallelMerge:
    def test_merged_payload_byte_identical_to_single_worker(self) -> None:
        workload = _workload(seed=7)
        trace = compile_workload(workload, 30.0)
        shared = dict(
            policy="invalidate",
            num_nodes=3,
            staleness_bound=1.0,
            duration=30.0,
            workload_name=workload.name,
            seed=7,
            obs=ObsConfig(window=5.0),
        )
        serial = replay_cluster_parallel(trace, workers=1, **shared)
        parallel = replay_cluster_parallel(trace, workers=3, **shared)
        assert json.dumps(parallel.obs, sort_keys=True) == json.dumps(
            serial.obs, sort_keys=True
        )
        serial_row, parallel_row = serial.as_dict(), parallel.as_dict()
        serial_row.pop("obs"), parallel_row.pop("obs")
        assert json.dumps(parallel_row, sort_keys=True) == json.dumps(
            serial_row, sort_keys=True
        )

    def test_workers_require_picklable_config(self) -> None:
        workload = _workload()
        trace = compile_workload(workload, 5.0)
        with pytest.raises(ClusterError, match="ObsConfig"):
            replay_cluster_parallel(
                trace,
                workers=2,
                policy="invalidate",
                num_nodes=3,
                staleness_bound=1.0,
                duration=5.0,
                workload_name=workload.name,
                seed=1,
                obs=ObsRecorder(),
            )

    def test_merge_payloads_validates_config(self) -> None:
        a = ObsRecorder(ObsConfig(window=1.0)).payload()
        b = ObsRecorder(ObsConfig(window=2.0)).payload()
        with pytest.raises(ValueError):
            merge_payloads(a, b)


# --------------------------------------------------------------------- #
# Exporters and run directories
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def payload():
    simulation = _single(ObsConfig(window=5.0, span_every=100))
    simulation.run()
    return simulation.obs.payload()


class TestExporters:
    def test_windows_jsonl_round_trips(self, payload) -> None:
        lines = export_windows_jsonl(payload).strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert len(rows) == 4
        assert all("hit_rate" in row and "node_load" in row for row in rows)

    def test_windows_csv_has_pinned_header(self, payload) -> None:
        header = export_windows_csv(payload).splitlines()[0].split(",")
        assert header[:3] == ["index", "start", "end"]
        assert header[3 : 3 + len(WINDOW_FIELDS)] == list(WINDOW_FIELDS)
        assert header[-4:] == ["hit_rate", "miss_cost", "l1_share", "node_load"]

    def test_prometheus_exposition_shape(self, payload) -> None:
        text = export_prometheus(payload)
        assert "# TYPE repro_total_reads counter" in text
        assert "# TYPE repro_end_time gauge" in text
        assert "# TYPE repro_read_cost histogram" in text
        assert 'repro_read_cost_bucket{le="+Inf"}' in text
        count = next(
            line for line in text.splitlines() if line.startswith("repro_read_cost_count")
        )
        assert int(count.split()[-1]) == payload["metrics"]["histograms"]["read_cost"]["count"]
        # Cumulative buckets must be monotone non-decreasing.
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_read_cost_bucket")
        ]
        assert buckets == sorted(buckets)

    def test_prometheus_text_format_grammar_conformance(self, payload) -> None:
        """A mini-parser for the exposition-format grammar.

        Every family must carry ``# HELP`` then ``# TYPE`` before its first
        sample; sample names must match the metric-name grammar; histogram
        families must expose monotone ``_bucket`` series whose ``+Inf``
        bucket equals ``_count``, plus a ``_sum`` sample.
        """
        name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        sample_re = re.compile(
            r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
            r'(?:\{(?P<labels>[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"'
            r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*)\})?'
            r" (?P<value>[^ ]+)$"
        )
        helped: set = set()
        typed: dict = {}
        sampled: set = set()
        for line in export_prometheus(payload).splitlines():
            if line.startswith("# HELP "):
                _, _, name, help_text = line.split(" ", 3)
                assert name_re.match(name), name
                assert help_text.strip(), f"empty HELP for {name}"
                assert name not in helped, f"duplicate HELP for {name}"
                assert name not in sampled, f"HELP for {name} after its samples"
                helped.add(name)
            elif line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "gauge", "histogram"), kind
                assert name in helped, f"TYPE for {name} before HELP"
                assert name not in typed, f"duplicate TYPE for {name}"
                typed[name] = kind
            else:
                match = sample_re.match(line)
                assert match, f"unparseable sample line: {line!r}"
                base = match.group("name")
                family = re.sub(r"_(bucket|sum|count)$", "", base)
                assert family in typed, f"sample {base} has no TYPE metadata"
                sampled.add(family)
                float(match.group("value").replace("+Inf", "inf"))
        # Histogram series: _bucket/_sum/_count all present, +Inf == _count.
        for name, kind in typed.items():
            if kind != "histogram":
                continue
            lines = export_prometheus(payload).splitlines()
            buckets = [line for line in lines if line.startswith(f"{name}_bucket")]
            assert buckets, f"histogram {name} has no _bucket series"
            assert buckets[-1].startswith(f'{name}_bucket{{le="+Inf"}}')
            count_line = next(line for line in lines if line.startswith(f"{name}_count"))
            assert buckets[-1].split()[-1] == count_line.split()[-1]
            assert any(line.startswith(f"{name}_sum") for line in lines)

    def test_prometheus_help_precedes_type_for_every_family(self, payload) -> None:
        lines = export_prometheus(payload).splitlines()
        type_lines = [line for line in lines if line.startswith("# TYPE ")]
        assert type_lines
        for type_line in type_lines:
            name = type_line.split(" ", 3)[2]
            help_index = lines.index(
                next(line for line in lines if line.startswith(f"# HELP {name} "))
            )
            assert help_index == lines.index(type_line) - 1

    def test_run_directory_round_trip(self, payload, tmp_path) -> None:
        written = write_run(payload, str(tmp_path / "obs"))
        assert sorted(written) == [
            "OBS_RUN.json",
            "metrics.prom",
            "trace.jsonl",
            "windows.jsonl",
        ]
        loaded = load_run(str(tmp_path / "obs"))
        assert json.dumps(loaded, sort_keys=True) == json.dumps(payload, sort_keys=True)

    def test_load_run_rejects_non_obs_dirs(self, tmp_path) -> None:
        with pytest.raises(FileNotFoundError):
            load_run(str(tmp_path))
        (tmp_path / "OBS_RUN.json").write_text('{"kind": "other"}\n')
        with pytest.raises(ValueError):
            load_run(str(tmp_path))

    def test_summarize_mentions_the_essentials(self, payload) -> None:
        text = summarize(payload)
        assert "policy=invalidate" in text
        assert "windows: 4 x 5.0s" in text
        assert "read_cost:" in text and "p99=" in text
        assert "spans" in text and "dropped" in text


# --------------------------------------------------------------------- #
# Experiments layer and CLI
# --------------------------------------------------------------------- #

class TestExperimentsIntegration:
    def test_spec_validates_obs_window(self) -> None:
        with pytest.raises(ConfigurationError, match="obs_window"):
            ExperimentSpec(
                name="t",
                workloads=("poisson",),
                policies=("invalidate",),
                staleness_bounds=(1.0,),
                obs_window=-1.0,
            )

    def test_run_cell_attaches_payload_only_when_enabled(self) -> None:
        def cell(obs_window):
            return RunCell(
                experiment="t",
                cell_id=0,
                policy="invalidate",
                workload="poisson",
                workload_params=(),
                staleness_bound=1.0,
                cache_capacity=None,
                channel=None,
                duration=10.0,
                seed=1,
                obs_window=obs_window,
            )

        plain = run_cell(cell(None))
        assert "obs" not in plain
        observed = run_cell(cell(2.0))
        assert observed["obs"]["kind"] == "repro-obs"
        observed.pop("obs")
        plain.pop("obs_window"), observed.pop("obs_window")
        assert json.dumps(observed, sort_keys=True) == json.dumps(plain, sort_keys=True)


class TestCli:
    def test_run_obs_dir_then_summary_tail_export(self, tmp_path, capsys) -> None:
        from repro.__main__ import main

        obs_dir = tmp_path / "obs-run"
        out = tmp_path / "row.json"
        assert main([
            "run", "--policy", "invalidate", "--duration", "20",
            "--obs-window", "5", "--obs-dir", str(obs_dir),
            "--output", str(out),
        ]) == 0
        row = json.loads(out.read_text())
        assert row["obs_dir"] == str(obs_dir)
        assert "obs" not in row
        assert (obs_dir / "OBS_RUN.json").exists()
        capsys.readouterr()

        assert main(["obs", "summary", "--dir", str(obs_dir)]) == 0
        summary = capsys.readouterr().out
        assert "totals:" in summary and "windows: 4" in summary

        assert main(["obs", "tail", "--dir", str(obs_dir), "--events-only", "--limit", "1"]) == 0
        (line,) = capsys.readouterr().out.strip().splitlines()
        assert json.loads(line)["kind"] == "run-end"

        assert main(["obs", "export", "--dir", str(obs_dir), "--format", "prom"]) == 0
        assert "# TYPE repro_total_reads counter" in capsys.readouterr().out

        csv_path = tmp_path / "windows.csv"
        assert main([
            "obs", "export", "--dir", str(obs_dir), "--format", "csv",
            "--output", str(csv_path),
        ]) == 0
        assert csv_path.read_text().startswith("index,start,end,")

    def test_obs_tail_since_filter(self, tmp_path, capsys) -> None:
        from repro.__main__ import main

        obs_dir = tmp_path / "obs-run"
        assert main([
            "-q", "run", "--policy", "invalidate", "--duration", "20",
            "--obs-window", "5", "--obs-dir", str(obs_dir),
            "--output", str(tmp_path / "row.json"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "obs", "tail", "--dir", str(obs_dir), "--since", "15", "--limit", "0",
        ]) == 0
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert records
        assert all(record["time"] >= 15.0 for record in records)
        # --since past the end of the run filters everything out.
        assert main([
            "obs", "tail", "--dir", str(obs_dir), "--since", "1000", "--limit", "0",
        ]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_obs_tail_node_filter(self, tmp_path, capsys) -> None:
        from repro.__main__ import main

        obs_dir = tmp_path / "obs-run"
        assert main([
            "-q", "run", "--policy", "invalidate", "--duration", "20",
            "--obs-window", "5", "--obs-dir", str(obs_dir),
            "--output", str(tmp_path / "row.json"),
        ]) == 0
        capsys.readouterr()
        # The single-cache host node is "cache" (see Simulation._obs_begin).
        assert main([
            "obs", "tail", "--dir", str(obs_dir), "--node", "cache", "--limit", "0",
        ]) == 0
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert records
        assert all(record["node"] == "cache" for record in records)
        assert main([
            "obs", "tail", "--dir", str(obs_dir), "--node", "node-999",
        ]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_obs_tail_filters_compose(self, tmp_path, capsys) -> None:
        from repro.__main__ import main

        obs_dir = tmp_path / "obs-run"
        assert main([
            "-q", "run", "--policy", "invalidate", "--duration", "20",
            "--obs-window", "5", "--obs-dir", str(obs_dir),
            "--output", str(tmp_path / "row.json"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "obs", "tail", "--dir", str(obs_dir), "--node", "cache",
            "--since", "10", "--limit", "2",
        ]) == 0
        records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(records) == 2
        assert all(
            record["node"] == "cache" and record["time"] >= 10.0 for record in records
        )

    def test_obs_summary_on_missing_dir_is_clean_error(self, tmp_path) -> None:
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["obs", "summary", "--dir", str(tmp_path / "nope")])


# --------------------------------------------------------------------- #
# Bench phase schema (shared with scripts/check_bench.py)
# --------------------------------------------------------------------- #

def _load_check_bench():
    path = Path(__file__).resolve().parent.parent / "scripts" / "check_bench.py"
    spec = importlib.util.spec_from_file_location("check_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchPhases:
    def test_schema_is_pinned(self) -> None:
        assert BENCH_PHASES == (
            "wall_seconds",
            "generation_seconds",
            "merge_seconds",
            "replay_seconds",
        )

    def test_phase_timings_route_through_the_registry(self) -> None:
        timings = phase_timings(1.0, 0.3, 0.1)
        assert set(timings) == set(BENCH_PHASES)
        assert timings["replay_seconds"] == pytest.approx(0.6)
        assert phase_timings(1.0, 0.9, 0.5)["replay_seconds"] == 0.0

    def test_bench_rows_carry_every_phase(self) -> None:
        row = bench_policy("invalidate", num_requests=2000, num_keys=100)
        for phase in BENCH_PHASES:
            assert row[phase] >= 0.0
        assert row["wall_seconds"] >= row["replay_seconds"]

    def test_check_bench_refuses_rows_missing_a_phase(self) -> None:
        check_bench = _load_check_bench()
        record = {
            "kind": "repro-bench",
            "config": {"engine": "scalar", "workers": 1},
            "results": [
                {
                    "policy": "invalidate",
                    "requests_per_sec": 1.0,
                    **{phase: 0.1 for phase in BENCH_PHASES},
                }
            ],
        }
        assert check_bench.bench_entries(record)
        del record["results"][0]["replay_seconds"]
        with pytest.raises(ValueError, match="replay_seconds"):
            check_bench.bench_entries(record)
        record["results"][0]["replay_seconds"] = -0.5
        with pytest.raises(ValueError, match="replay_seconds"):
            check_bench.bench_entries(record)


class TestPerfMicrobenches:
    def test_obs_pair_registered_and_runs(self) -> None:
        from repro.perf.perf import MICROBENCHES, run_perf

        assert "obs-disabled" in MICROBENCHES and "obs-enabled" in MICROBENCHES
        record = run_perf(names=["obs-disabled", "obs-enabled"], scale=0.02)
        by_name = {row["name"]: row for row in record["results"]}
        assert by_name["obs-disabled"]["ops_per_sec"] > 0
        assert by_name["obs-enabled"]["ops_per_sec"] > 0
