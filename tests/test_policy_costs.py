"""Cost accounting per policy family, on hand-built traces.

Fixed costs (c_m=1.0, c_i=0.1, c_u=0.6) make every expected total exact.
"""

import pytest

from repro.core.cost_model import CostModel
from repro.core.ttl import TTLExpiryPolicy, TTLPollingPolicy
from repro.core.write_reactive import AlwaysInvalidatePolicy, AlwaysUpdatePolicy
from repro.sim.simulation import Simulation
from repro.workload.base import OpType, Request

C_M, C_I, C_U = 1.0, 0.1, 0.6


def costs() -> CostModel:
    return CostModel(miss=C_M, invalidate=C_I, update=C_U)


def read(time: float, key: str = "k") -> Request:
    return Request(time=time, key=key, op=OpType.READ)


def write(time: float, key: str = "k") -> Request:
    return Request(time=time, key=key, op=OpType.WRITE)


def run(trace, policy, bound=1.0, **kwargs):
    return Simulation(
        workload=trace, policy=policy, staleness_bound=bound, costs=costs(), **kwargs
    ).run()


class TestTTLExpiry:
    def test_expiry_miss_pays_one_refetch(self) -> None:
        result = run([read(0.0), read(0.5), read(1.5)], TTLExpiryPolicy())
        assert result.cold_misses == 1
        assert result.hits == 1  # t=0.5, timer still running
        assert result.stale_misses == 1  # t=1.5, expired at t=1.0
        assert result.freshness_cost == pytest.approx(C_M)
        assert result.staleness_cost == pytest.approx(1.0)

    def test_no_expiry_within_ttl(self) -> None:
        result = run([read(0.0), read(0.9)], TTLExpiryPolicy())
        assert result.stale_misses == 0
        assert result.freshness_cost == 0.0


class TestTTLPollingLazySettlement:
    def test_polls_settled_on_next_touch(self) -> None:
        # Two whole TTL intervals elapse between the reads: exactly two polls
        # must be charged, even though no event fired in between.
        result = run([read(0.0), read(2.5)], TTLPollingPolicy())
        assert result.polls == 2
        assert result.freshness_cost == pytest.approx(2 * C_M)
        assert result.hits == 1  # polling keeps the entry always valid
        assert result.staleness_violations == 0

    def test_polls_settled_on_eviction(self) -> None:
        # Key "a" is never touched again; its polls are settled when "b"
        # evicts it from the capacity-1 cache at t=2.2.
        result = run([read(0.0, "a"), read(2.2, "b")], TTLPollingPolicy(), cache_capacity=1)
        assert result.polls == 2
        assert result.freshness_cost == pytest.approx(2 * C_M)

    def test_polls_settled_at_end_of_run(self) -> None:
        result = run([read(0.0)], TTLPollingPolicy(), duration=3.0)
        assert result.polls == 3
        assert result.freshness_cost == pytest.approx(3 * C_M)


class TestInvalidatePath:
    def test_invalidate_then_stale_miss(self) -> None:
        # Write at t=0.5 -> invalidate at the t=1.0 flush (c_i), read at
        # t=1.2 misses and re-fetches (c_m).
        result = run([read(0.0), write(0.5), read(1.2)], AlwaysInvalidatePolicy())
        assert result.invalidates_sent == 1
        assert result.stale_misses == 1
        assert result.freshness_cost == pytest.approx(C_I + C_M)

    def test_redundant_invalidate_suppressed(self) -> None:
        # Two writes in consecutive intervals with no read in between: the
        # second invalidate is redundant (the entry is still invalidated).
        result = run(
            [read(0.0), write(0.5), write(1.5), read(2.8)], AlwaysInvalidatePolicy()
        )
        assert result.invalidates_sent == 1
        assert result.suppressed_invalidates == 1
        assert result.freshness_cost == pytest.approx(C_I + C_M)


class TestUpdatePath:
    def test_update_keeps_entry_fresh(self) -> None:
        result = run([read(0.0), write(0.5), read(1.2)], AlwaysUpdatePolicy())
        assert result.updates_sent == 1
        assert result.hits == 1  # the update refreshed the cached copy
        assert result.stale_misses == 0
        assert result.freshness_cost == pytest.approx(C_U)
        assert result.staleness_violations == 0

    def test_final_flush_charges_trailing_write(self) -> None:
        # A write with no later request still costs its update at the final
        # flush (matching the closed-form model); with nothing cached the
        # message is wasted.
        result = run([write(0.5)], AlwaysUpdatePolicy())
        assert result.updates_sent == 1
        assert result.updates_wasted == 1
        assert result.freshness_cost == pytest.approx(C_U)

    def test_final_flush_can_be_disabled(self) -> None:
        result = run([write(0.5)], AlwaysUpdatePolicy(), final_flush=False)
        assert result.updates_sent == 0
        assert result.freshness_cost == 0.0
