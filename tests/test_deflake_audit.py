"""Deflake audit: no wall clocks or unseeded randomness in simulated time.

Every replay result must be a pure function of (workload, config, seed).
The classic ways that breaks are a wall-clock read (``time.time()``,
``datetime.now()``) leaking into simulated-time logic, or a random stream
created without a seed (``np.random.default_rng()`` with no argument, the
module-level ``random.*`` functions, a bare ``random.Random()``).

This test scans every source and test file and pins the current count of
violations at **zero**.  Wall-clock use is legitimate only where wall time
is the *measurement* — the ``repro.perf`` microbenchmarks, the bench
harness's throughput timers — so those files are allowlisted explicitly;
growing the allowlist is a reviewed decision, not an accident.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_ROOTS = ("src/repro", "tests")

#: Files where wall-clock reads are the point (throughput measurement).
#: Paths are repo-relative, matched by prefix.
WALL_CLOCK_ALLOWLIST = (
    "src/repro/perf/",
)

#: Pattern -> human explanation.  Each regex is written so it does not match
#: its own (escaped) source text in this file.
VIOLATION_PATTERNS = {
    r"\btime\.time\(": "wall-clock time.time() in replay logic",
    r"\bdatetime\.now\(": "wall-clock datetime.now()",
    r"\bdatetime\.utcnow\(": "wall-clock datetime.utcnow()",
    r"default_rng\(\s*\)": "unseeded numpy Generator",
    r"\bnp\.random\.(random|randint|choice|normal|exponential|shuffle)\(":
        "legacy numpy global RNG (unseeded, process-wide state)",
    r"(?<![.\w])random\.(random|randint|choice|choices|shuffle|sample|"
    r"expovariate|gauss|uniform|lognormvariate)\(":
        "module-level random.* (global, unseeded RNG)",
    r"\brandom\.Random\(\s*\)": "random.Random() without a seed",
}


def scan() -> "list[str]":
    violations = []
    self_path = Path(__file__).resolve()
    for root in SCAN_ROOTS:
        for path in sorted((REPO_ROOT / root).rglob("*.py")):
            if path.resolve() == self_path:
                continue
            relative = path.relative_to(REPO_ROOT).as_posix()
            if any(relative.startswith(prefix) for prefix in WALL_CLOCK_ALLOWLIST):
                continue
            for number, line in enumerate(path.read_text().splitlines(), start=1):
                for pattern, reason in VIOLATION_PATTERNS.items():
                    if re.search(pattern, line):
                        violations.append(
                            f"{relative}:{number}: {reason}: {line.strip()}"
                        )
    return violations


def test_no_wall_clocks_or_unseeded_rng_in_simulated_time_paths() -> None:
    violations = scan()
    assert violations == [], (
        "determinism audit found wall-clock/unseeded-RNG use:\n"
        + "\n".join(violations)
    )


def test_audit_scans_a_meaningful_file_set() -> None:
    # Guard the audit itself: if the tree moves, an empty scan would pass
    # vacuously.  The repo has dozens of source files; require a floor.
    scanned = [
        path
        for root in SCAN_ROOTS
        for path in (REPO_ROOT / root).rglob("*.py")
    ]
    assert len(scanned) > 40
    # The chaos/autoscale machinery is exactly where unseeded randomness
    # would be tempting; make sure the package is inside the audit's net.
    assert any(path.parent.name == "resilience" for path in scanned)
