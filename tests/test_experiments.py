"""Experiment orchestration: grid expansion, seeding, parallel runs, export."""

import csv
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentSpec,
    WorkloadSpec,
    make_policy,
    make_workload,
    run_experiment,
    stable_cell_seed,
    write_results_csv,
    write_results_json,
)


def small_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="smoke",
        policies=["invalidate", "update"],
        workloads=[WorkloadSpec.of("poisson", {"num_keys": 15, "rate_per_key": 6.0})],
        staleness_bounds=[0.5, 2.0],
        duration=2.0,
        base_seed=7,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def test_expand_produces_full_grid_with_stable_ids() -> None:
    spec = small_spec()
    cells = spec.expand()
    assert len(cells) == spec.num_cells == 4
    assert [cell.cell_id for cell in cells] == [0, 1, 2, 3]
    assert {cell.policy for cell in cells} == {"invalidate", "update"}


def test_cells_sharing_a_workload_share_a_seed() -> None:
    cells = small_spec().expand()
    seeds = {cell.seed for cell in cells}
    # The seed is anchored to the workload coordinates only, so every cell of
    # this single-workload grid replays the identical trace.
    assert len(seeds) == 1


def test_seed_is_deterministic_and_sensitive_to_coordinates() -> None:
    seed = stable_cell_seed(7, "poisson", {"num_keys": 15}, 2.0)
    assert seed == stable_cell_seed(7, "poisson", {"num_keys": 15}, 2.0)
    assert seed != stable_cell_seed(8, "poisson", {"num_keys": 15}, 2.0)
    assert seed != stable_cell_seed(7, "poisson", {"num_keys": 16}, 2.0)
    assert seed != stable_cell_seed(7, "twitter", {"num_keys": 15}, 2.0)


def test_parallel_and_serial_runs_are_identical() -> None:
    spec = small_spec()
    serial = run_experiment(spec, processes=1)
    parallel = run_experiment(spec, processes=2)
    assert serial == parallel
    assert len(serial) == 4
    for row in serial:
        assert row["reads"] + row["writes"] > 0
        assert row["normalized_freshness_cost"] >= 0.0


def test_same_workload_cells_replay_identical_traces() -> None:
    rows = run_experiment(small_spec(), processes=1)
    totals = {(row["reads"], row["writes"]) for row in rows}
    assert len(totals) == 1, "policies must be compared on the same trace"


def test_export_json_and_csv(tmp_path) -> None:
    rows = run_experiment(small_spec(), processes=1)
    json_path = write_results_json(rows, tmp_path / "results.json", metadata={"spec": "smoke"})
    csv_path = write_results_csv(rows, tmp_path / "results.csv")
    document = json.loads(json_path.read_text())
    assert document["metadata"]["spec"] == "smoke"
    assert len(document["results"]) == len(rows)
    with csv_path.open() as handle:
        parsed = list(csv.DictReader(handle))
    assert len(parsed) == len(rows)
    assert parsed[0]["policy"] == rows[0]["policy"]


def test_registry_rejects_unknown_names() -> None:
    with pytest.raises(ConfigurationError):
        make_policy("no-such-policy")
    with pytest.raises(ConfigurationError):
        make_workload("no-such-workload")


def test_spec_validation() -> None:
    with pytest.raises(ConfigurationError):
        small_spec(policies=[])
    with pytest.raises(ConfigurationError):
        small_spec(staleness_bounds=[])
    with pytest.raises(ConfigurationError):
        small_spec(duration=0.0)
