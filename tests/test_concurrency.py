"""The in-flight fetch model: invariants, physics, and refusals.

Three families of pins:

* **The off invariant** — ``concurrency=None`` (the default) must leave every
  pipeline byte-identical to the instant-fetch engine: same rows from the
  scalar, vector, and shard-parallel paths, and no shadowed methods on the
  instances (the concurrent handlers bind as *instance* attributes, so with
  the model off the plain class methods must resolve untouched).
* **The physics** — misses occupy the backend, stampedes dogpile without a
  policy and coalesce with one, stale serves and early refreshes happen when
  (and only when) their policy is on, and every read records exactly one
  latency sample.
* **The refusals** — combinations the model cannot replay honestly (shard
  workers, checkpoints, mid-run stops) raise instead of approximating.
"""

import json

import pytest

from repro.cluster import (
    ClusterSimulation,
    VectorClusterSimulation,
    make_scenario,
    replay_cluster_parallel,
)
from repro.concurrency.config import (
    STAMPEDE_POLICIES,
    ConcurrencyConfig,
    as_concurrency,
)
from repro.errors import ClusterError, ConfigurationError
from repro.experiments.registry import make_policy
from repro.sim.simulation import Simulation
from repro.sim.vector import VectorSimulation
from repro.store.snapshot import StoreConfig
from repro.workload.compiled import compile_workload
from repro.workload.poisson import PoissonZipfWorkload

DURATION = 5.0


def make_workload(seed: int = 23) -> PoissonZipfWorkload:
    return PoissonZipfWorkload(num_keys=80, rate_per_key=20.0, seed=seed)


def concurrency(policy: str = "none", **overrides) -> ConcurrencyConfig:
    settings = dict(
        service_time="exponential", mean=0.05, capacity=4, policy=policy, seed=23
    )
    settings.update(overrides)
    return ConcurrencyConfig(**settings)


def run_single(config=None, engine: str = "scalar") -> dict:
    shared = dict(
        policy=make_policy("invalidate"),
        staleness_bound=0.5,
        duration=DURATION,
        workload_name="conccheck",
        concurrency=config,
    )
    if engine == "vector":
        simulation = VectorSimulation(
            compile_workload(make_workload(), DURATION), **shared
        )
    else:
        simulation = Simulation(
            workload=make_workload().iter_requests(DURATION), **shared
        )
    return simulation.run().as_dict()


def fleet_result(config=None, scenario=None, **kwargs):
    simulation = ClusterSimulation(
        workload=make_workload().iter_requests(DURATION),
        policy="invalidate",
        num_nodes=4,
        staleness_bound=0.5,
        duration=DURATION,
        workload_name="conccheck",
        seed=23,
        concurrency=config,
        scenario=scenario,
        **kwargs,
    )
    return simulation.run()


def run_fleet(config=None, scenario=None, **kwargs) -> dict:
    return fleet_result(config, scenario, **kwargs).as_dict()


# --------------------------------------------------------------------- #
# Config object
# --------------------------------------------------------------------- #

def test_config_rejects_bad_values() -> None:
    with pytest.raises(ConfigurationError):
        ConcurrencyConfig(service_time="uniform")
    with pytest.raises(ConfigurationError):
        ConcurrencyConfig(policy="lock-free")
    with pytest.raises(ConfigurationError):
        ConcurrencyConfig(mean=0.0)
    with pytest.raises(ConfigurationError):
        ConcurrencyConfig(capacity=0)
    with pytest.raises(TypeError):
        as_concurrency({"policy": "none"})


def test_config_as_dict_excludes_seed() -> None:
    flat = concurrency(seed=99).as_dict()
    assert "seed" not in flat
    assert flat["policy"] == "none"


# --------------------------------------------------------------------- #
# The off invariant: concurrency=None is byte-identical on every pipeline
# --------------------------------------------------------------------- #

def test_disabled_leaves_scalar_engine_untouched() -> None:
    simulation = Simulation(
        workload=make_workload().iter_requests(DURATION),
        policy=make_policy("invalidate"),
        staleness_bound=0.5,
        duration=DURATION,
        workload_name="conccheck",
    )
    result = simulation.run()
    # No shadowed handlers: the concurrent path binds instance attributes,
    # so with the model off the instance dict must not carry any.
    assert not any(name.startswith("_process") for name in vars(simulation))
    assert result.as_dict() == run_single(config=None)
    assert result.backend_fetches == 0
    assert result.latency_count == 0


def test_disabled_vector_engine_matches_scalar() -> None:
    assert run_single(None, engine="vector") == run_single(None, engine="scalar")


def test_disabled_cluster_row_identical_with_and_without_kwarg() -> None:
    simulation = ClusterSimulation(
        workload=make_workload().iter_requests(DURATION),
        policy="invalidate",
        num_nodes=4,
        staleness_bound=0.5,
        duration=DURATION,
        workload_name="conccheck",
        seed=23,
    )
    baseline = simulation.run().as_dict()
    for node in simulation.nodes():
        assert "handle_read" not in vars(node)
    row = run_fleet(config=None)
    assert json.dumps(baseline, sort_keys=True) == json.dumps(row, sort_keys=True)


def test_disabled_shard_parallel_identical_for_any_worker_count() -> None:
    trace = compile_workload(make_workload(), DURATION)
    shared = dict(
        policy="invalidate",
        num_nodes=4,
        staleness_bound=0.5,
        duration=DURATION,
        workload_name="conccheck",
        seed=23,
        concurrency=None,
    )
    single = replay_cluster_parallel(trace, workers=1, **shared).as_dict()
    sharded = replay_cluster_parallel(trace, workers=3, **shared).as_dict()
    assert json.dumps(single, sort_keys=True) == json.dumps(sharded, sort_keys=True)
    assert single == run_fleet(config=None)


def test_vector_engine_falls_back_to_scalar_when_enabled() -> None:
    config = concurrency("single-flight")
    assert run_single(config, engine="vector") == run_single(config, engine="scalar")
    trace = compile_workload(make_workload(), DURATION)
    fleet = VectorClusterSimulation(
        trace,
        policy="invalidate",
        num_nodes=4,
        staleness_bound=0.5,
        duration=DURATION,
        workload_name="conccheck",
        seed=23,
        concurrency=config,
    )
    assert not fleet.vector_eligible()
    assert fleet.run().as_dict() == run_fleet(config)


# --------------------------------------------------------------------- #
# Physics: stampedes, coalescing, stale serves, early refresh, latency
# --------------------------------------------------------------------- #

def stampede_row(policy: str) -> dict:
    return run_fleet(
        concurrency(policy),
        scenario=make_scenario("stampede", {"fraction": 0.8}),
    )


def test_stampede_single_flight_fetches_strictly_fewer_than_none() -> None:
    dogpiled = stampede_row("none")
    coalesced = stampede_row("single-flight")
    # The acceptance pin: same workload, same staleness bound, strictly
    # fewer backend fetches once duplicate misses coalesce.
    assert coalesced["backend_fetches"] < dogpiled["backend_fetches"]
    assert coalesced["coalesced_reads"] > 0
    assert dogpiled["coalesced_reads"] == 0


def test_every_read_records_exactly_one_latency_sample() -> None:
    for policy in STAMPEDE_POLICIES:
        result = fleet_result(
            concurrency(policy),
            scenario=make_scenario("stampede", {"fraction": 0.8}),
        )
        assert result.totals.latency_count == result.totals.reads, policy
        assert sum(result.totals.latency_buckets.values()) == result.totals.reads


def test_stale_serves_only_with_stale_serving_policies() -> None:
    rows = {policy: stampede_row(policy) for policy in STAMPEDE_POLICIES}
    assert rows["stale-while-revalidate"]["stale_serves"] > 0
    assert rows["dogpile-lock"]["stale_serves"] > 0
    for policy in ("none", "single-flight", "early-expiry"):
        assert rows[policy]["stale_serves"] == 0, policy
    # Serving stale hides the fetch wait: the tail must sit below the
    # dogpiled baseline.
    assert (
        rows["stale-while-revalidate"]["read_latency_p99"]
        < rows["none"]["read_latency_p99"]
    )


def test_early_expiry_refreshes_before_misses() -> None:
    rows = {policy: stampede_row(policy) for policy in ("single-flight", "early-expiry")}
    assert rows["early-expiry"]["early_refreshes"] > 0
    assert rows["single-flight"]["early_refreshes"] == 0


def test_saturation_squeeze_stretches_the_tail() -> None:
    config = concurrency("none", capacity=8)
    calm = run_fleet(config)
    squeezed = run_fleet(
        config,
        scenario=make_scenario("backend-saturation", {"capacity": 1}),
    )
    assert squeezed["read_latency_p999"] > calm["read_latency_p999"]


def test_backend_saturation_scenario_requires_the_model() -> None:
    with pytest.raises(ClusterError):
        run_fleet(config=None, scenario=make_scenario("backend-saturation", {}))


def test_results_report_latency_percentiles() -> None:
    row = stampede_row("none")
    assert row["read_latency_p50"] <= row["read_latency_p99"] <= row["read_latency_p999"]
    assert row["read_latency_p999"] > 0.0


# --------------------------------------------------------------------- #
# Refusals
# --------------------------------------------------------------------- #

def test_shard_parallel_refuses_concurrency() -> None:
    trace = compile_workload(make_workload(), DURATION)
    with pytest.raises(ClusterError, match="workers"):
        replay_cluster_parallel(
            trace,
            workers=2,
            policy="invalidate",
            num_nodes=4,
            staleness_bound=0.5,
            duration=DURATION,
            workload_name="conccheck",
            seed=23,
            concurrency=concurrency(),
        )


def test_owned_nodes_refuses_concurrency() -> None:
    with pytest.raises(ClusterError):
        ClusterSimulation(
            workload=make_workload().iter_requests(DURATION),
            policy="invalidate",
            num_nodes=4,
            staleness_bound=0.5,
            duration=DURATION,
            workload_name="conccheck",
            seed=23,
            owned_nodes=(0, 1),
            concurrency=concurrency(),
        )


def test_stop_at_and_restore_refuse_concurrency(tmp_path) -> None:
    def build():
        return ClusterSimulation(
            workload=make_workload().iter_requests(DURATION),
            policy="invalidate",
            num_nodes=2,
            staleness_bound=0.5,
            duration=DURATION,
            workload_name="conccheck",
            seed=23,
            store=StoreConfig(root=str(tmp_path / "store")),
            concurrency=concurrency(),
        )

    with pytest.raises(ClusterError, match="stop_at"):
        build().run(stop_at=2.0)
    with pytest.raises(ClusterError):
        build().restore_from_store()
