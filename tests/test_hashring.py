"""Consistent-hash ring: determinism, balance, and minimal disruption."""

import pytest

from repro.cluster.hashring import ConsistentHashRing
from repro.errors import ClusterError


def build_ring(num_nodes: int = 8, vnodes: int = 64) -> ConsistentHashRing:
    ring = ConsistentHashRing(vnodes=vnodes)
    for index in range(num_nodes):
        ring.add_node(f"node-{index:03d}")
    return ring


KEYS = [f"key-{i:06d}" for i in range(2000)]


def test_placement_is_deterministic_across_instances() -> None:
    first = build_ring()
    second = build_ring()
    assert [first.primary(key) for key in KEYS] == [second.primary(key) for key in KEYS]


def test_replicas_are_distinct_and_primary_first() -> None:
    ring = build_ring()
    for key in KEYS[:200]:
        replicas = ring.nodes_for(key, 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert replicas[0] == ring.primary(key)


def test_replica_count_capped_by_fleet_size() -> None:
    ring = build_ring(num_nodes=2)
    assert len(ring.nodes_for("key", 5)) == 2


def test_virtual_nodes_keep_the_split_roughly_even() -> None:
    counts = build_ring().ownership_counts(KEYS)
    assert len(counts) == 8
    mean = len(KEYS) / len(counts)
    # With 64 vnodes the heaviest node should stay within ~3x of the mean —
    # loose on purpose, the point is that no node owns almost everything.
    assert max(counts.values()) < 3 * mean
    assert min(counts.values()) > 0


def test_removal_moves_only_the_removed_nodes_keys() -> None:
    ring = build_ring()
    before = {key: ring.primary(key) for key in KEYS}
    ring.remove_node("node-003")
    moved = [key for key in KEYS if ring.primary(key) != before[key]]
    # Exactly the keys owned by the removed node move, nothing else.
    assert set(moved) == {key for key, node in before.items() if node == "node-003"}


def test_rejoin_restores_prior_placement() -> None:
    ring = build_ring()
    before = {key: ring.primary(key) for key in KEYS}
    ring.remove_node("node-003")
    ring.add_node("node-003")
    assert {key: ring.primary(key) for key in KEYS} == before


def test_errors_on_empty_ring_and_duplicate_membership() -> None:
    ring = ConsistentHashRing()
    with pytest.raises(ClusterError):
        ring.nodes_for("key", 1)
    ring.add_node("a")
    with pytest.raises(ClusterError):
        ring.add_node("a")
    with pytest.raises(ClusterError):
        ring.remove_node("b")
