"""Round-trip tests for ``repro.experiments.export`` (CSV/JSON stability)."""

import csv
import json

from repro.experiments.export import write_results_csv, write_results_json

ROWS = [
    {
        "policy": "invalidate",
        "staleness_bound": 0.1,
        "hit_ratio": 1 / 3,
        "cache_capacity": None,
        "workload_params": {"num_keys": 100, "rate_per_key": 10.0},
        "nodes": [{"node_id": "node-000", "hits": 7}],
    },
    {
        "policy": "update",
        "staleness_bound": 10.0,
        "hit_ratio": 0.875,
        "cache_capacity": 512,
        "workload_params": {},
        "nodes": [],
        # A column appearing only in a later row.
        "scenario": "node-failure",
    },
]


def read_csv(path):
    with path.open(newline="") as handle:
        return list(csv.reader(handle))


def test_csv_column_order_is_first_appearance_across_all_rows(tmp_path) -> None:
    path = write_results_csv(ROWS, tmp_path / "rows.csv")
    header, *body = read_csv(path)
    assert header == [
        "policy",
        "staleness_bound",
        "hit_ratio",
        "cache_capacity",
        "workload_params",
        "nodes",
        "scenario",
    ]
    assert len(body) == 2
    # The first row simply has an empty cell for the late-appearing column.
    assert body[0][header.index("scenario")] == ""


def test_csv_cells_round_trip_floats_exactly(tmp_path) -> None:
    path = write_results_csv(ROWS, tmp_path / "rows.csv")
    header, first, second = read_csv(path)
    ratio = header.index("hit_ratio")
    assert float(first[ratio]) == 1 / 3
    assert float(second[ratio]) == 0.875
    assert float(first[header.index("staleness_bound")]) == 0.1


def test_csv_nested_values_are_json_cells_and_none_is_empty(tmp_path) -> None:
    path = write_results_csv(ROWS, tmp_path / "rows.csv")
    header, first, _second = read_csv(path)
    params = json.loads(first[header.index("workload_params")])
    assert params == {"num_keys": 100, "rate_per_key": 10.0}
    nodes = json.loads(first[header.index("nodes")])
    assert nodes == [{"node_id": "node-000", "hits": 7}]
    assert first[header.index("cache_capacity")] == ""


def test_csv_with_no_rows_writes_an_empty_header(tmp_path) -> None:
    path = write_results_csv([], tmp_path / "empty.csv")
    assert read_csv(path) == [[]]


def test_json_document_round_trips_rows_and_metadata(tmp_path) -> None:
    path = write_results_json(ROWS, tmp_path / "rows.json", metadata={"spec": "test"})
    document = json.loads(path.read_text())
    assert document["metadata"] == {"spec": "test"}
    assert document["results"] == json.loads(json.dumps(ROWS))
    # Floats survive exactly through the JSON round trip.
    assert document["results"][0]["hit_ratio"] == 1 / 3


def test_json_with_no_rows_and_no_metadata(tmp_path) -> None:
    path = write_results_json([], tmp_path / "empty.json")
    document = json.loads(path.read_text())
    assert document == {"metadata": {}, "results": []}
    assert path.read_text().endswith("\n")
