"""Crash recovery: byte-identical datastore rebuild and exact run resume."""

import json

import pytest

from repro.cluster import ClusterSimulation, ReplicationConfig
from repro.core.write_reactive import AlwaysInvalidatePolicy
from repro.errors import ClusterError, StoreError
from repro.sim.simulation import Simulation
from repro.store import (
    StoreConfig,
    canonical_datastore_bytes,
    latest_snapshot,
    recover_datastore,
)
from repro.workload.poisson import PoissonZipfWorkload

DURATION = 12.0
BOUND = 0.5


def make_cluster(root, num_nodes=3, snapshot_interval=2.0, **kwargs):
    workload = PoissonZipfWorkload(num_keys=80, rate_per_key=20.0, seed=11)
    return ClusterSimulation(
        workload=workload.iter_requests(DURATION),
        policy="invalidate",
        num_nodes=num_nodes,
        staleness_bound=BOUND,
        replication=(
            ReplicationConfig(factor=2, read_policy="round-robin") if num_nodes > 1 else None
        ),
        duration=DURATION,
        workload_name="poisson",
        seed=11,
        store=StoreConfig(str(root), snapshot_interval=snapshot_interval),
        **kwargs,
    )


def test_simulation_datastore_recovers_byte_for_byte(tmp_path) -> None:
    workload = PoissonZipfWorkload(num_keys=50, rate_per_key=20.0, seed=3)
    simulation = Simulation(
        workload=workload.iter_requests(6.0),
        policy=AlwaysInvalidatePolicy(),
        staleness_bound=BOUND,
        duration=6.0,
        store=StoreConfig(str(tmp_path / "store"), snapshot_interval=2.0),
    )
    result = simulation.run()
    recovered, report = recover_datastore(tmp_path / "store")
    assert canonical_datastore_bytes(recovered) == canonical_datastore_bytes(
        simulation.datastore
    )
    assert recovered.total_writes == simulation.datastore.total_writes
    assert recovered.total_reads == simulation.datastore.total_reads
    assert report.recovered_keys == len(simulation.datastore.known_keys())
    # The run reported its persistence activity.
    assert result.wal_appends > 0
    assert result.wal_flushes > 0
    assert result.snapshots_taken == 3
    assert result.persistence_cost > 0


def test_wal_tail_replays_past_the_last_snapshot(tmp_path) -> None:
    """Kill between snapshots: the WAL tail carries the state forward."""
    root = tmp_path / "store"
    # No compaction, so the log survives alongside the snapshots and a
    # recovery from (snapshot at t=4) + (tail after it) can be exercised.
    workload = PoissonZipfWorkload(num_keys=40, rate_per_key=20.0, seed=9)
    simulation = Simulation(
        workload=workload.iter_requests(6.0),
        policy=AlwaysInvalidatePolicy(),
        staleness_bound=BOUND,
        duration=6.0,
        store=StoreConfig(str(root), snapshot_interval=4.0, compact=False, flush_every=1),
    )
    simulation.run()
    # Drop the final checkpoint so the newest snapshot predates the WAL tip.
    snapshots = sorted(root.glob("snapshot-*.json"))
    assert len(snapshots) == 2
    snapshots[-1].unlink()
    recovered, report = recover_datastore(root)
    assert report.snapshot_time == pytest.approx(4.0)
    assert report.writes_replayed > 0
    assert canonical_datastore_bytes(recovered) == canonical_datastore_bytes(
        simulation.datastore
    )


def test_wal_replay_under_retention_prunes_like_the_original_run(tmp_path) -> None:
    """Retention travels with the snapshot, so tail replay stays byte-exact."""
    root = tmp_path / "store"
    workload = PoissonZipfWorkload(num_keys=30, rate_per_key=30.0, seed=5)
    simulation = Simulation(
        workload=workload.iter_requests(9.0),
        policy=AlwaysInvalidatePolicy(),
        staleness_bound=BOUND,
        duration=9.0,
        history_retention=2.0,
        store=StoreConfig(str(root), snapshot_interval=3.0, compact=False, flush_every=1),
    )
    simulation.run()
    sorted(root.glob("snapshot-*.json"))[-1].unlink()  # force a tail replay
    recovered, report = recover_datastore(root)
    assert report.writes_replayed > 0
    assert recovered.retention == 2.0
    assert recovered.pruned_writes == simulation.datastore.pruned_writes
    assert canonical_datastore_bytes(recovered) == canonical_datastore_bytes(
        simulation.datastore
    )


@pytest.mark.parametrize("num_nodes", [1, 3])
def test_recovered_cluster_finishes_with_identical_counters(tmp_path, num_nodes) -> None:
    """The acceptance check: crash at a checkpoint, resume, identical run."""
    uninterrupted = make_cluster(tmp_path / "a", num_nodes).run()

    crashed = make_cluster(tmp_path / "b", num_nodes)
    partial = crashed.run(stop_at=6.0)
    assert partial.interrupted
    assert partial.duration == pytest.approx(6.0)

    resumed = make_cluster(tmp_path / "b", num_nodes)
    resumed.restore_from_store()
    final = resumed.run()

    # Identical aggregate counters, per-node rows, and store counters —
    # the whole flattened result row matches field for field.
    assert json.dumps(final.as_dict(), sort_keys=True) == json.dumps(
        uninterrupted.as_dict(), sort_keys=True
    )
    assert final.totals.as_dict() == uninterrupted.totals.as_dict()


def test_resume_skips_scenario_events_already_applied(tmp_path) -> None:
    from repro.cluster import make_scenario

    def build(root):
        workload = PoissonZipfWorkload(num_keys=80, rate_per_key=20.0, seed=5)
        return ClusterSimulation(
            workload=workload.iter_requests(DURATION),
            policy="invalidate",
            num_nodes=4,
            staleness_bound=BOUND,
            scenario=make_scenario("node-failure"),
            duration=DURATION,
            seed=5,
            store=StoreConfig(str(root), snapshot_interval=2.0),
        )

    uninterrupted = build(tmp_path / "a").run()
    # Crash after fail (4.8) and detect (~6.8): both events must not re-fire.
    build(tmp_path / "b").run(stop_at=8.0)
    resumed = build(tmp_path / "b")
    resumed.restore_from_store()
    final = resumed.run()
    assert final.rebalances == uninterrupted.rebalances == 2
    assert [n.as_dict() for n in final.nodes] == [n.as_dict() for n in uninterrupted.nodes]


def test_recovery_of_an_empty_store_directory(tmp_path) -> None:
    recovered, report = recover_datastore(tmp_path)
    assert recovered.total_writes == 0
    assert report.wal_records == 0
    assert report.snapshot_seq == 0


def test_snapshots_stub_out_failed_nodes(tmp_path) -> None:
    from repro.store import warm_state

    cluster = make_cluster(tmp_path / "s", num_nodes=3)
    cluster.fail_node(0)
    cluster._checkpoint(1.0)
    snapshot = latest_snapshot(tmp_path / "s")
    assert sorted(snapshot.nodes) == ["node-000", "node-001", "node-002"]
    assert snapshot.nodes["node-000"].get("partial") is True
    assert "entries" not in snapshot.nodes["node-000"]
    assert "entries" in snapshot.nodes["node-001"]
    # A stub is not a restorable cache: warm rejoin ignores it.
    assert warm_state(tmp_path / "s", "node-000", 2.0) is None


def test_stop_at_without_store_is_rejected(tmp_path) -> None:
    workload = PoissonZipfWorkload(num_keys=10, rate_per_key=10.0, seed=1)
    cluster = ClusterSimulation(
        workload=workload.iter_requests(2.0),
        policy="invalidate",
        num_nodes=1,
        staleness_bound=BOUND,
        duration=2.0,
    )
    with pytest.raises(ClusterError):
        cluster.run(stop_at=1.0)


def test_restore_needs_a_checkpoint_and_a_store(tmp_path) -> None:
    workload = PoissonZipfWorkload(num_keys=10, rate_per_key=10.0, seed=1)
    cluster = ClusterSimulation(
        workload=workload.iter_requests(2.0),
        policy="invalidate",
        num_nodes=1,
        staleness_bound=BOUND,
        duration=2.0,
    )
    with pytest.raises(ClusterError):
        cluster.restore_from_store()
    empty = make_cluster(tmp_path / "empty", num_nodes=1)
    with pytest.raises(StoreError):
        empty.restore_from_store()


def test_persistence_grid_cells_record_store_counters(tmp_path) -> None:
    from repro.experiments import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        name="durable",
        policies=["invalidate"],
        workloads=["poisson"],
        staleness_bounds=[1.0],
        num_nodes=[None, 2],
        persistence=[True],
        snapshot_intervals=[2.0],
        duration=4.0,
        base_seed=3,
    )
    assert spec.num_cells == 2
    serial = run_experiment(spec, processes=1)
    parallel = run_experiment(spec, processes=2)
    # Scratch store directories must not leak into the rows: byte-identical
    # regardless of the worker schedule (and of where the tempdirs lived).
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
    for row in serial:
        assert row["persistence"] is True
        assert row["snapshot_interval"] == 2.0
        assert row["wal_appends"] > 0
        assert row["persistence_cost"] > 0
        assert row["store"]["writes_logged"] > 0
        assert "root" not in row["store"]


def test_spec_rejects_snapshot_intervals_without_persistence() -> None:
    from repro.errors import ConfigurationError
    from repro.experiments import ExperimentSpec

    base = dict(
        name="bad",
        policies=["invalidate"],
        workloads=["poisson"],
        staleness_bounds=[1.0],
    )
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, snapshot_intervals=[2.0])
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, persistence=[True, False], snapshot_intervals=[2.0])
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, persistence=[True], snapshot_intervals=[-1.0])
    # Warm scenarios need both the persistence axis and a snapshot cadence.
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, num_nodes=[4], scenarios=["kill-at-t"], persistence=[True])
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, num_nodes=[4], scenarios=["kill-at-t"])


def test_boundary_coinciding_final_flush_leaves_a_resumable_store(tmp_path) -> None:
    """A flush at the last snapshot instant must not strand a WAL tail.

    With the bound off the snapshot grid, the final flush at the horizon
    journals messages *after* the interval snapshot taken at the same
    instant; the final checkpoint must cover them with a fresh snapshot or
    the store ends past its own watermark and refuses to resume.
    """
    workload = PoissonZipfWorkload(num_keys=60, rate_per_key=20.0, seed=2)
    cluster = ClusterSimulation(
        workload=workload.iter_requests(8.0),
        policy="invalidate",
        num_nodes=2,
        staleness_bound=0.75,
        duration=8.0,
        seed=2,
        store=StoreConfig(str(tmp_path / "s"), snapshot_interval=2.0),
    )
    cluster.run()
    _recovered, report = recover_datastore(tmp_path / "s")
    assert report.wal_records == 0  # nothing past the last snapshot's watermark


def test_history_pruning_keeps_versions_exact_above_the_watermark() -> None:
    from repro.backend.datastore import DataStore

    pruned = DataStore(retention=5.0)
    exact = DataStore()
    for i in range(2000):
        time = i * 0.01
        pruned.write("hot", time)
        exact.write("hot", time)
    assert pruned.total_writes == exact.total_writes == 2000
    # Version numbers never renumber...
    assert pruned.latest_version("hot") == exact.latest_version("hot") == 2000
    # ...and queries at or above the watermark stay exact.
    now = 19.99
    for probe in (now, now - 1.0, now - 4.9):
        assert pruned.version_at("hot", probe) == exact.version_at("hot", probe)
    assert pruned.writes_between("hot", now - 4.0, now) == exact.writes_between(
        "hot", now - 4.0, now
    )
    assert pruned.is_fresh("hot", now - 0.005, now, 0.5) == exact.is_fresh(
        "hot", now - 0.005, now, 0.5
    )
    # The RSS win: retained timestamps stay bounded by the window.
    assert pruned.pruned_writes > 0
    assert pruned.retained_write_times() <= 5.0 / 0.01 + 1
    assert exact.retained_write_times() == 2000


def test_long_run_history_stays_flat_with_retention() -> None:
    """A multi-interval run under retention holds a bounded history."""
    from repro.backend.datastore import DataStore

    store = DataStore(retention=2.0)
    for i in range(50_000):
        store.write(f"k{i % 20}", i * 0.001)
    assert store.retained_write_times() <= 20 * (2.0 / 0.02 + 2)
    assert store.latest_version("k0") == 2500
