"""WAL framing, group commit, torn tails, compaction, and cost accounting."""

import pytest

from repro.core.cost_model import CostModel
from repro.errors import StoreError
from repro.store import WalScan, WriteAheadLog, scan_wal
from repro.store.format import KIND_READS, KIND_WRITE, MAGIC, encode_record
from repro.store.wal import Journal


def make_wal(tmp_path, **kwargs):
    return WriteAheadLog(tmp_path / "wal.log", **kwargs)


def test_append_assigns_monotone_lsns_and_replay_round_trips(tmp_path) -> None:
    wal = make_wal(tmp_path, flush_every=4)
    lsns = [wal.append(KIND_WRITE, {"key": f"k{i}", "t": float(i), "vs": 128}) for i in range(10)]
    wal.flush()
    assert lsns == list(range(1, 11))
    records = list(wal.replay())
    assert [r["lsn"] for r in records] == lsns
    assert records[3] == {"lsn": 4, "k": KIND_WRITE, "key": "k3", "t": 3.0, "vs": 128}
    # Replay after a watermark skips the prefix.
    assert [r["lsn"] for r in wal.replay(after_lsn=7)] == [8, 9, 10]
    wal.close()


def test_group_commit_batches_appends_into_flushes(tmp_path) -> None:
    wal = make_wal(tmp_path, flush_every=8)
    for i in range(20):
        wal.append(KIND_WRITE, {"key": "k", "t": float(i), "vs": 1})
    # 20 appends = 2 full batches; 4 records still staged and not yet durable.
    assert wal.stats.flushes == 2
    assert sum(1 for _ in wal.replay()) == 16
    wal.close()  # close flushes the tail
    assert wal.stats.flushes == 3
    assert sum(1 for _ in scan_wal(wal.path)) == 20


def test_wal_costs_charge_appends_and_flushes(tmp_path) -> None:
    costs = CostModel(wal_append=0.25, wal_flush=2.0)
    wal = make_wal(tmp_path, flush_every=5, costs=costs)
    for i in range(10):
        wal.append(KIND_WRITE, {"key": "k", "t": float(i), "vs": 1})
    assert wal.stats.persistence_cost == pytest.approx(10 * 0.25 + 2 * 2.0)
    wal.close()


def test_torn_tail_stops_replay_at_last_complete_record(tmp_path) -> None:
    wal = make_wal(tmp_path, flush_every=1)
    for i in range(5):
        wal.append(KIND_WRITE, {"key": f"k{i}", "t": float(i), "vs": 1})
    wal.close()
    # A crash mid-append leaves half a record on disk.
    with wal.path.open("ab") as handle:
        handle.write(encode_record({"lsn": 6, "k": KIND_WRITE})[:7])
    scan = WalScan()
    assert [r["lsn"] for r in scan_wal(wal.path, scan)] == [1, 2, 3, 4, 5]
    assert scan.torn_bytes > 0


def test_corrupt_checksum_truncates_replay(tmp_path) -> None:
    wal = make_wal(tmp_path, flush_every=1)
    for i in range(4):
        wal.append(KIND_WRITE, {"key": f"k{i}", "t": float(i), "vs": 1})
    wal.close()
    data = bytearray(wal.path.read_bytes())
    data[-3] ^= 0xFF  # flip a byte inside the last record's payload
    wal.path.write_bytes(bytes(data))
    scan = WalScan()
    assert [r["lsn"] for r in scan_wal(wal.path, scan)] == [1, 2, 3]
    assert scan.torn_bytes > 0


def test_reopening_truncates_the_torn_tail_and_continues_lsns(tmp_path) -> None:
    wal = make_wal(tmp_path, flush_every=1)
    wal.append(KIND_WRITE, {"key": "a", "t": 0.0, "vs": 1})
    wal.append(KIND_WRITE, {"key": "b", "t": 1.0, "vs": 1})
    wal.close()
    with wal.path.open("ab") as handle:
        handle.write(b"\x99" * 5)
    reopened = make_wal(tmp_path, flush_every=1)
    assert reopened.last_lsn == 2
    reopened.append(KIND_WRITE, {"key": "c", "t": 2.0, "vs": 1})
    reopened.close()
    assert [r["lsn"] for r in scan_wal(reopened.path)] == [1, 2, 3]


def test_bad_magic_is_rejected(tmp_path) -> None:
    path = tmp_path / "not-a-wal.log"
    path.write_bytes(b"definitely not" + MAGIC)
    with pytest.raises(StoreError):
        list(scan_wal(path))


def test_compaction_drops_records_below_the_watermark(tmp_path) -> None:
    wal = make_wal(tmp_path, flush_every=1)
    for i in range(10):
        wal.append(KIND_WRITE, {"key": f"k{i}", "t": float(i), "vs": 1})
    dropped = wal.compact(keep_after_lsn=6)
    assert dropped == 6
    assert [r["lsn"] for r in wal.replay()] == [7, 8, 9, 10]
    # Appends after compaction keep the LSN sequence.
    assert wal.append(KIND_WRITE, {"key": "k", "t": 10.0, "vs": 1}) == 11
    wal.close()
    assert wal.stats.compactions == 1
    assert wal.stats.records_dropped == 6


def test_journal_aggregates_reads_into_delta_records(tmp_path) -> None:
    wal = make_wal(tmp_path, flush_every=1)
    journal = Journal(wal)
    journal.note_read()
    journal.note_read()
    journal.log_write("k", 1.0, 128)  # flushes the pending read delta first
    journal.note_read()
    journal.sync()
    records = list(wal.replay())
    assert [r["k"] for r in records] == [KIND_READS, KIND_WRITE, KIND_READS]
    assert records[0]["n"] == 2
    assert records[2]["n"] == 1
    assert journal.reads_logged == 3
    assert journal.writes_logged == 1
    wal.close()


def test_journal_sync_is_a_noop_when_nothing_is_pending(tmp_path) -> None:
    wal = make_wal(tmp_path, flush_every=64)
    journal = Journal(wal)
    journal.log_write("k", 1.0, 128)
    journal.sync()
    flushes = wal.stats.flushes
    journal.sync()  # nothing new: no extra flush, no empty read record
    assert wal.stats.flushes == flushes
    assert wal.stats.appends == 1
    wal.close()


def test_flush_every_must_be_positive(tmp_path) -> None:
    with pytest.raises(StoreError):
        make_wal(tmp_path, flush_every=0)
