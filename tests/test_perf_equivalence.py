"""Pinning tests: the hot-path optimizations change *speed*, never *results*.

Each test keeps a deliberately naive reference implementation (the pre-PR-5
code shape) next to the optimized one and asserts byte-identical output:
request streams, ring routing, fingerprints, sketch counts, and the inlined
TTL poll arithmetic.
"""

from __future__ import annotations

import hashlib
import resource
from bisect import bisect_right, insort

import numpy as np
import pytest

from repro.cluster.hashring import ConsistentHashRing
from repro.core.ttl import TTLPollingPolicy
from repro.sketch.countmin import CountMinSketch
from repro.sketch.hashing import (
    DEFAULT_FINGERPRINT_CACHE_SIZE,
    HashFamily,
    fingerprint_cache_clear,
    fingerprint_cache_info,
    set_fingerprint_cache_size,
    stable_fingerprint,
)
from repro.workload.base import STREAM_CHUNK_SIZE, OpType, Request
from repro.workload.poisson import PoissonZipfWorkload
from repro.workload.twitter import TwitterWorkload
from repro.workload.zipf import ZipfSampler


def as_tuples(requests):
    return [
        (request.time, request.key, request.op, request.key_size, request.value_size)
        for request in requests
    ]


# --------------------------------------------------------------------- #
# Workload generators vs the naive reference loop
# --------------------------------------------------------------------- #

def naive_poisson_stream(workload: PoissonZipfWorkload, duration: float):
    """The pre-optimization generation loop: per-request boxed conversions,
    per-request key formatting, boolean-mask trimming."""
    rng = np.random.default_rng(workload.seed)
    mean_gap = 1.0 / (workload.rate_per_key * workload.num_keys)
    now = 0.0
    while now < duration:
        gaps = rng.exponential(mean_gap, size=STREAM_CHUNK_SIZE)
        times = now + np.cumsum(gaps)
        now = float(times[-1])
        ranks = workload._sampler.sample_using(rng, STREAM_CHUNK_SIZE)
        is_read = rng.random(STREAM_CHUNK_SIZE) < workload.read_ratio
        if now >= duration:
            inside = times < duration
            times, ranks, is_read = times[inside], ranks[inside], is_read[inside]
        for i in range(times.size):
            yield Request(
                time=float(times[i]),
                key=workload.key_name(int(ranks[i])),
                op=OpType.READ if is_read[i] else OpType.WRITE,
                key_size=workload.key_size,
                value_size=workload.value_size,
            )


def naive_twitter_stream(workload: TwitterWorkload, duration: float):
    rng = np.random.default_rng(workload.seed)
    peak_rate = workload.total_rate * (1.0 + workload.diurnal_amplitude)
    mean_gap = 1.0 / peak_rate
    now = 0.0
    while now < duration:
        gaps = rng.exponential(mean_gap, size=STREAM_CHUNK_SIZE)
        candidate = now + np.cumsum(gaps)
        now = float(candidate[-1])
        envelope = 1.0 + workload.diurnal_amplitude * np.sin(
            2.0 * np.pi * candidate / workload.diurnal_period
        )
        accept = rng.random(STREAM_CHUNK_SIZE) < (workload.total_rate * envelope) / peak_rate
        if now >= duration:
            accept &= candidate < duration
        times = candidate[accept]
        count = times.size
        ranks = workload._sampler.sample_using(rng, count)
        is_read = rng.random(count) < workload._read_probabilities(ranks)
        value_sizes = np.maximum(
            8, rng.lognormal(mean=np.log(workload.value_size), sigma=0.6, size=count)
        ).astype(np.int64)
        for i in range(count):
            yield Request(
                time=float(times[i]),
                key=workload.key_name(int(ranks[i])),
                op=OpType.READ if is_read[i] else OpType.WRITE,
                key_size=workload.key_size,
                value_size=int(value_sizes[i]),
            )


def test_poisson_stream_matches_naive_reference() -> None:
    """Optimized generation is byte-identical, including the trimmed tail."""
    workload = PoissonZipfWorkload(num_keys=50, rate_per_key=100.0, seed=7)
    # Long enough to cross several chunk boundaries and trim the last chunk.
    duration = (2.5 * STREAM_CHUNK_SIZE) / (100.0 * 50)
    optimized = as_tuples(workload.iter_requests(duration))
    reference = as_tuples(naive_poisson_stream(workload, duration))
    assert optimized == reference
    assert len(optimized) > 2 * STREAM_CHUNK_SIZE


def test_twitter_stream_matches_naive_reference() -> None:
    workload = TwitterWorkload(num_keys=80, total_rate=2000.0, seed=11)
    duration = (2.5 * STREAM_CHUNK_SIZE) / (2000.0 * (1.0 + workload.diurnal_amplitude))
    optimized = as_tuples(workload.iter_requests(duration))
    reference = as_tuples(naive_twitter_stream(workload, duration))
    assert optimized == reference
    assert len(optimized) > STREAM_CHUNK_SIZE


def test_zipf_sampler_astype_is_not_a_draw_change() -> None:
    """The copy-free astype returns the same ranks as a fresh int64 copy."""
    sampler = ZipfSampler(num_keys=100, exponent=1.3, seed=3)
    rng_a = np.random.default_rng(5)
    rng_b = np.random.default_rng(5)
    ranks = sampler.sample_using(rng_a, 10_000)
    reference = np.searchsorted(sampler._cdf, rng_b.random(10_000), side="left")
    assert ranks.dtype == np.int64
    np.testing.assert_array_equal(ranks, reference.astype(np.int64))


# --------------------------------------------------------------------- #
# Fingerprint memo vs direct BLAKE2
# --------------------------------------------------------------------- #

def direct_blake2_fingerprint(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def test_fingerprint_cache_returns_exact_blake2_values() -> None:
    fingerprint_cache_clear()
    keys = [f"fp-key-{index}" for index in range(5_000)]
    # Twice: the second pass is served from cache and must agree.
    first = [stable_fingerprint(key) for key in keys]
    second = [stable_fingerprint(key) for key in keys]
    reference = [direct_blake2_fingerprint(key) for key in keys]
    assert first == reference
    assert second == reference
    info = fingerprint_cache_info()
    assert info.hits >= len(keys)


def test_fingerprint_cache_is_bounded_and_configurable() -> None:
    try:
        set_fingerprint_cache_size(1024)
        for index in range(10_000):
            stable_fingerprint(f"bounded-{index}")
        info = fingerprint_cache_info()
        assert info.currsize <= 1024
        assert info.maxsize == 1024
        with pytest.raises(Exception):
            set_fingerprint_cache_size(-1)
    finally:
        set_fingerprint_cache_size(DEFAULT_FINGERPRINT_CACHE_SIZE)


def test_fingerprint_rss_stays_flat_on_a_million_distinct_keys() -> None:
    """The memo cannot grow without bound: 1M distinct keys, flat RSS.

    An unbounded memo would retain every key string and boxed fingerprint
    (~250 MiB for a million keys); the bounded LRU keeps the footprint at
    the cache cap.  The generous threshold keeps the test robust to
    allocator noise while still catching an unbounded cache by an order of
    magnitude.
    """
    fingerprint_cache_clear()
    before_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    for index in range(1_000_000):
        stable_fingerprint(f"rss-key-{index:09d}")
    after_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    info = fingerprint_cache_info()
    assert info.currsize <= DEFAULT_FINGERPRINT_CACHE_SIZE
    grown_mib = (after_kib - before_kib) / 1024
    assert grown_mib < 100, f"RSS grew by {grown_mib:.0f} MiB over 1M distinct keys"


# --------------------------------------------------------------------- #
# Ring routing vs the naive reference walk
# --------------------------------------------------------------------- #

class NaiveRing:
    """The pre-optimization ring: tuple-list bisect, no caching."""

    def __init__(self, vnodes: int = 64) -> None:
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []
        self._nodes: dict[str, list[int]] = {}

    def add_node(self, node_id: str) -> None:
        points = []
        for vnode in range(self.vnodes):
            point = direct_blake2_fingerprint(f"{node_id}#{vnode}")
            insort(self._points, (point, node_id))
            points.append(point)
        self._nodes[node_id] = points

    def remove_node(self, node_id: str) -> None:
        self._nodes.pop(node_id)
        self._points = [pair for pair in self._points if pair[1] != node_id]

    def nodes_for(self, key: str, count: int) -> list[str]:
        start = bisect_right(self._points, (direct_blake2_fingerprint(key), ""))
        chosen: list[str] = []
        seen = set()
        total = len(self._points)
        for offset in range(total):
            _, node_id = self._points[(start + offset) % total]
            if node_id in seen:
                continue
            seen.add(node_id)
            chosen.append(node_id)
            if len(chosen) == count:
                break
        return chosen


def test_ring_routing_matches_naive_reference_across_membership_changes() -> None:
    ring = ConsistentHashRing(vnodes=32)
    naive = NaiveRing(vnodes=32)
    for index in range(6):
        ring.add_node(f"node-{index:03d}")
        naive.add_node(f"node-{index:03d}")
    keys = [f"route-key-{index:05d}" for index in range(2_000)]

    for count in (1, 2, 3):
        for key in keys:
            assert ring.nodes_for(key, count) == naive.nodes_for(key, count)

    # Membership change must invalidate every cached route.
    ring.remove_node("node-002")
    naive.remove_node("node-002")
    for count in (1, 2, 3):
        for key in keys:
            assert ring.nodes_for(key, count) == naive.nodes_for(key, count)

    ring.add_node("node-006")
    naive.add_node("node-006")
    for key in keys:
        assert ring.nodes_for(key, 2) == naive.nodes_for(key, 2)


def test_route_cache_alias_survives_membership_change() -> None:
    ring = ConsistentHashRing(vnodes=16)
    for index in range(3):
        ring.add_node(f"node-{index:03d}")
    alias = ring.route_cache_for(2)
    ring.route("some-key", 2)
    assert "some-key" in alias
    ring.remove_node("node-001")
    # Cleared in place: same dict object, cached routes gone.
    assert alias is ring.route_cache_for(2)
    assert "some-key" not in alias


# --------------------------------------------------------------------- #
# Sketches: memoized + vectorized index computation
# --------------------------------------------------------------------- #

def test_hash_family_memoized_indices_match_fresh_computation() -> None:
    family = HashFamily(depth=4, width=512, seed=9)
    fresh = HashFamily(depth=4, width=512, seed=9)
    keys = [f"sketch-key-{index}" for index in range(1_000)]
    for key in keys:
        first = family.indices(key)
        second = family.indices(key)  # memo hit
        assert first == second == fresh.indices(key)


def test_hash_family_vectorized_rows_match_scalar_path() -> None:
    family = HashFamily(depth=5, width=257, seed=4)
    keys = [f"vec-key-{index}" for index in range(500)]
    fingerprints = [stable_fingerprint(key) for key in keys]
    matrix = family.row_indices(fingerprints)
    assert matrix.shape == (5, len(keys))
    for column, key in enumerate(keys):
        assert tuple(matrix[:, column]) == family.indices(key)


def test_countmin_add_many_matches_repeated_add() -> None:
    vectorized = CountMinSketch(width=128, depth=4, seed=2)
    scalar = CountMinSketch(width=128, depth=4, seed=2)
    keys = [f"cm-key-{index % 37}" for index in range(400)]
    vectorized.add_many(keys)
    for key in keys:
        scalar.add(key)
    assert vectorized.total == scalar.total
    np.testing.assert_array_equal(vectorized._table, scalar._table)
    for key in set(keys):
        assert vectorized.query(key) == scalar.query(key)


# --------------------------------------------------------------------- #
# Inlined TTL poll arithmetic vs the policy methods
# --------------------------------------------------------------------- #

def test_inlined_poll_arithmetic_matches_policy_methods() -> None:
    """The simulator inlines polls_between/last_poll_at_or_before against a
    bind-time TTL; the arithmetic must agree on every grid point."""
    policy = TTLPollingPolicy(ttl=0.75)
    ttl = 0.75
    anchors = [0.0, 0.3, 1.0]
    for anchor in anchors:
        for accounted in np.arange(anchor, anchor + 4.0, 0.19):
            for now in np.arange(accounted, accounted + 3.0, 0.23):
                accounted_f, now_f = float(accounted), float(now)
                expected = policy.polls_between(anchor, accounted_f, now_f)
                if now_f <= anchor:
                    inlined = 0
                else:
                    k_now = int((now_f - anchor) / ttl)
                    k_acc = (
                        int((accounted_f - anchor) / ttl) if accounted_f > anchor else 0
                    )
                    inlined = max(k_now - k_acc, 0)
                assert inlined == expected, (anchor, accounted_f, now_f)
                if expected > 0:
                    k_now = int((now_f - anchor) / ttl)
                    assert anchor + k_now * ttl == policy.last_poll_at_or_before(
                        anchor, now_f
                    )
