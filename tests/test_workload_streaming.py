"""Streaming workload contract: laziness, determinism, ordering."""

import itertools

import pytest

from repro.errors import WorkloadError
from repro.workload.base import (
    OpType,
    Request,
    Workload,
    ensure_sorted,
    merge_streams,
    validate_duration,
)
from repro.workload.meta import MetaWorkload
from repro.workload.mixed import PoissonMixWorkload
from repro.workload.poisson import PoissonZipfWorkload
from repro.workload.trace import TraceWorkload, iter_trace, read_trace, write_trace
from repro.workload.twitter import TwitterWorkload

DURATION = 3.0

GENERATORS = [
    PoissonZipfWorkload(num_keys=25, rate_per_key=8.0, seed=11),
    PoissonMixWorkload(num_keys=20, rate_per_key=8.0, seed=11),
    MetaWorkload(num_keys=40, total_rate=150.0, seed=11),
    TwitterWorkload(num_keys=40, total_rate=150.0, seed=11),
]


@pytest.mark.parametrize("workload", GENERATORS, ids=lambda w: w.name)
def test_iter_requests_is_deterministic_for_fixed_seed(workload: Workload) -> None:
    first = list(workload.iter_requests(DURATION))
    second = list(workload.iter_requests(DURATION))
    assert first, "generator produced an empty stream"
    assert first == second


@pytest.mark.parametrize("workload", GENERATORS, ids=lambda w: w.name)
def test_generate_is_a_thin_wrapper_over_iter_requests(workload: Workload) -> None:
    assert workload.generate(DURATION) == list(workload.iter_requests(DURATION))


@pytest.mark.parametrize("workload", GENERATORS, ids=lambda w: w.name)
def test_streams_are_time_ordered_and_bounded(workload: Workload) -> None:
    times = [request.time for request in workload.iter_requests(DURATION)]
    assert times == sorted(times)
    assert all(0.0 <= time < DURATION for time in times)


def test_iter_requests_is_lazy() -> None:
    workload = PoissonZipfWorkload(num_keys=10, rate_per_key=100.0, seed=0)
    stream = workload.iter_requests(1000.0)
    # Taking a handful of requests from an hours-long trace must not
    # materialize it: pull five and stop.
    head = list(itertools.islice(stream, 5))
    assert len(head) == 5


def test_merge_streams_is_lazy_and_stable() -> None:
    left = [Request(time=float(t), key="left", op=OpType.READ) for t in (0, 1, 2)]
    right = [Request(time=float(t), key="right", op=OpType.READ) for t in (0, 1.5)]
    merged = merge_streams([iter(left), iter(right)])
    assert not isinstance(merged, list)
    requests = list(merged)
    times = [request.time for request in requests]
    assert times == sorted(times)
    # Stability: at t=0 the left stream's request comes first.
    assert requests[0].key == "left"
    assert requests[1].key == "right"


def test_merge_streams_never_materializes_inputs() -> None:
    def endless(key: str):
        time = 0.0
        while True:
            yield Request(time=time, key=key, op=OpType.READ)
            time += 1.0

    merged = merge_streams([endless("a"), endless("b")])
    head = list(itertools.islice(merged, 6))
    assert [request.key for request in head] == ["a", "b"] * 3


@pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
def test_validate_duration_rejects_non_positive_and_non_finite(bad: float) -> None:
    with pytest.raises(WorkloadError):
        validate_duration(bad)


@pytest.mark.parametrize("workload", GENERATORS, ids=lambda w: w.name)
def test_bad_duration_fails_eagerly_not_at_first_next(workload: Workload) -> None:
    # The error must surface at the call site, not when the stream is first
    # consumed (possibly deep inside Simulation.run).
    with pytest.raises(WorkloadError):
        workload.iter_requests(-1.0)


def test_ensure_sorted_raises_on_disorder() -> None:
    stream = [
        Request(time=1.0, key="a", op=OpType.READ),
        Request(time=0.5, key="b", op=OpType.READ),
    ]
    with pytest.raises(WorkloadError, match="not sorted"):
        list(ensure_sorted(iter(stream)))


def test_trace_roundtrip_streams(tmp_path) -> None:
    workload = PoissonZipfWorkload(num_keys=10, rate_per_key=10.0, seed=4)
    path = tmp_path / "trace.csv"
    # write_trace consumes the stream lazily, straight from the generator.
    count = write_trace(workload.iter_requests(DURATION), path)
    original = workload.generate(DURATION)
    assert count == len(original)
    loaded = list(iter_trace(path))
    assert [request.key for request in loaded] == [request.key for request in original]
    assert [request.op for request in loaded] == [request.op for request in original]
    assert read_trace(path) == loaded


def test_trace_workload_path_mode_streams_and_truncates(tmp_path) -> None:
    requests = [Request(time=float(t), key=f"k{t}", op=OpType.READ) for t in range(5)]
    path = tmp_path / "trace.csv"
    write_trace(requests, path)
    workload = TraceWorkload(path=path)
    assert len(workload) == 5
    truncated = list(workload.iter_requests(3.0))
    assert [request.time for request in truncated] == [0.0, 1.0, 2.0]
    assert workload.generate() == requests


def test_unsorted_trace_file_raises(tmp_path) -> None:
    path = tmp_path / "bad.csv"
    path.write_text(
        "time,key,op,key_size,value_size\n"
        "1.0,a,read,16,128\n"
        "0.5,b,read,16,128\n"
    )
    with pytest.raises(WorkloadError, match="not sorted"):
        list(iter_trace(path))
