"""Sketch accuracy: count-min error bound and top-k recall on Zipf streams.

These pin the accuracy contract the cluster's hot-key detector relies on:
count-min never under-counts and over-counts by at most ~e*N/width with high
probability, and the top-k sketch keeps the head of a Zipfian stream exact.
"""

import math
from collections import Counter

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sketch import (
    CountMinEWSketch,
    CountMinSketch,
    ExactEWTracker,
    TopKEWSketch,
    estimator_memory_bytes,
)
from repro.sketch.memory import storage_saving
from repro.workload.zipf import ZipfSampler


def zipf_stream(num_keys: int = 400, count: int = 30_000, seed: int = 5):
    sampler = ZipfSampler(num_keys=num_keys, exponent=1.3, seed=seed)
    return [f"key-{rank:06d}" for rank in sampler.sample(count)]


# --------------------------------------------------------------------- #
# Count-min
# --------------------------------------------------------------------- #
def test_count_min_never_undercounts_and_respects_the_error_bound() -> None:
    width, depth = 512, 4
    sketch = CountMinSketch(width=width, depth=depth, seed=1)
    stream = zipf_stream()
    truth = Counter(stream)
    for key in stream:
        sketch.add(key)

    assert sketch.total == len(stream)
    bound = math.e * len(stream) / width  # the classic eps*N guarantee
    over_bound = 0
    for key, exact in truth.items():
        estimate = sketch.query(key)
        assert estimate >= exact, "count-min must never under-count"
        if estimate - exact > bound:
            over_bound += 1
    # Per-key failure probability is ~exp(-depth); with depth 4 over a few
    # hundred keys essentially none should exceed the bound.
    assert over_bound <= max(1, len(truth) // 100)


def test_count_min_unseen_keys_stay_near_zero() -> None:
    sketch = CountMinSketch(width=1024, depth=4, seed=2)
    for key in zipf_stream(count=5000):
        sketch.add(key)
    bound = math.e * sketch.total / sketch.width
    assert sketch.query("never-seen-key") <= bound


def test_count_min_halve_decays_counts() -> None:
    sketch = CountMinSketch(width=64, depth=4, seed=0)
    for _ in range(100):
        sketch.add("hot")
    before = sketch.query("hot")
    sketch.halve()
    assert sketch.query("hot") == before // 2
    assert sketch.total == 50


def test_count_min_validation() -> None:
    with pytest.raises(ConfigurationError):
        CountMinSketch(width=0)
    sketch = CountMinSketch()
    with pytest.raises(ConfigurationError):
        sketch.add("key", count=-1)


# --------------------------------------------------------------------- #
# E[W] estimates: sketch vs exact on a read/write stream
# --------------------------------------------------------------------- #
def read_write_stream(num_keys: int = 200, count: int = 20_000, seed: int = 9):
    sampler = ZipfSampler(num_keys=num_keys, exponent=1.3, seed=seed)
    rng = np.random.default_rng(seed + 1)
    ranks = sampler.sample(count)
    is_read = rng.random(count) < 0.8
    return [(f"key-{rank:06d}", bool(read)) for rank, read in zip(ranks, is_read)]


def feed(estimator, stream) -> None:
    for key, is_read in stream:
        if is_read:
            estimator.observe_read(key)
        else:
            estimator.observe_write(key)


def test_count_min_ew_tracks_exact_on_hot_keys() -> None:
    stream = read_write_stream()
    # With zero-length runs counted, the exact tracker computes the same
    # writes/reads ratio the sketch approximates — the right ground truth.
    exact = ExactEWTracker(count_zero_runs=True)
    approx = CountMinEWSketch(width=1024, depth=4, seed=3)
    feed(exact, stream)
    feed(approx, stream)
    counts = Counter(key for key, _ in stream)
    hot = [key for key, _ in counts.most_common(20)]
    for key in hot:
        assert approx.estimate(key) == pytest.approx(exact.estimate(key), abs=0.15)


def test_top_k_recall_of_the_zipf_head() -> None:
    stream = read_write_stream()
    sketch = TopKEWSketch(k=32, width=512, depth=4, seed=4)
    feed(sketch, stream)
    counts = Counter(key for key, _ in stream)
    head = [key for key, _ in counts.most_common(10)]
    recalled = sum(1 for key in head if sketch.is_hot(key))
    assert recalled >= 8, f"top-k caught only {recalled}/10 of the head"


def test_top_k_hot_keys_match_exact_estimates() -> None:
    stream = read_write_stream()
    exact = ExactEWTracker(count_zero_runs=True)  # writes/reads ground truth
    topk = TopKEWSketch(k=64, width=512, depth=4, seed=4)
    feed(exact, stream)
    feed(topk, stream)
    counts = Counter(key for key, _ in stream)
    for key, _ in counts.most_common(5):
        if topk.is_hot(key):
            # Hot keys use exact counters; small drift is possible only from
            # observations made before promotion.
            assert topk.estimate(key) == pytest.approx(exact.estimate(key), abs=0.1)


def test_sketches_save_storage_over_exact_tracking() -> None:
    stream = read_write_stream(num_keys=2000, count=40_000)
    exact = ExactEWTracker()
    count_min = CountMinEWSketch(width=256, depth=4, seed=5)
    feed(exact, stream)
    feed(count_min, stream)
    assert estimator_memory_bytes(count_min) < estimator_memory_bytes(exact)
    assert storage_saving(exact, count_min) > 1.0
