"""Closed-form policy costs (repro.model.analytical) against hand-computed values.

Defaults make the arithmetic exact enough to check by hand: c_m=1.0,
c_i=0.1, c_u=0.6, serve=1.0, so every expectation below is the formula from
§2.2/§3.1 evaluated directly.
"""

import math

import pytest

from repro.core.cost_model import CostModel
from repro.errors import ConfigurationError
from repro.model.analytical import (
    AggregateCosts,
    InvalidationModel,
    KeyParameters,
    TTLExpiryModel,
    TTLPollingModel,
    UpdateModel,
    _require_positive_bound,
    aggregate_normalized_costs,
    steady_state_invalidated_probability,
)
from repro.model.arrivals import expected_reads, p_read, p_write

KEY = KeyParameters(rate=10.0, read_ratio=0.9)
BOUND = 1.0
HORIZON = 100.0


class TestKeyParameters:
    def test_defaults(self) -> None:
        assert KEY.key_size == 16
        assert KEY.value_size == 128

    def test_negative_rate_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            KeyParameters(rate=-1.0, read_ratio=0.5)

    @pytest.mark.parametrize("ratio", [-0.1, 1.1])
    def test_read_ratio_outside_unit_interval_rejected(self, ratio: float) -> None:
        with pytest.raises(ConfigurationError):
            KeyParameters(rate=1.0, read_ratio=ratio)

    def test_boundary_ratios_accepted(self) -> None:
        KeyParameters(rate=0.0, read_ratio=0.0)
        KeyParameters(rate=0.0, read_ratio=1.0)


class TestTTLExpiry:
    def test_staleness_is_interval_count_times_read_probability(self) -> None:
        model = TTLExpiryModel()
        expected = (HORIZON / BOUND) * p_read(KEY.rate, KEY.read_ratio, BOUND)
        assert model.staleness_cost(KEY, BOUND, HORIZON) == pytest.approx(expected)

    def test_freshness_is_staleness_times_miss_cost(self) -> None:
        model = TTLExpiryModel(CostModel(miss=2.0))
        stale = model.staleness_cost(KEY, BOUND, HORIZON)
        assert model.freshness_cost(KEY, BOUND, HORIZON) == pytest.approx(2.0 * stale)


class TestTTLPolling:
    def test_never_stale(self) -> None:
        assert TTLPollingModel().staleness_cost(KEY, BOUND, HORIZON) == 0.0

    def test_freshness_is_poll_count_times_miss_cost(self) -> None:
        model = TTLPollingModel()
        assert model.freshness_cost(KEY, 0.5, HORIZON) == pytest.approx(
            (HORIZON / 0.5) * 1.0
        )


class TestInvalidation:
    def test_interval_factor_formula(self) -> None:
        model = InvalidationModel()
        reads = p_read(KEY.rate, KEY.read_ratio, BOUND)
        writes = p_write(KEY.rate, KEY.read_ratio, BOUND)
        expected = (HORIZON / BOUND) * reads * writes / (reads + writes)
        assert model.staleness_cost(KEY, BOUND, HORIZON) == pytest.approx(expected)
        assert model.freshness_cost(KEY, BOUND, HORIZON) == pytest.approx(
            expected * (1.0 + 0.1)  # c_m + c_i
        )

    def test_idle_key_costs_nothing(self) -> None:
        idle = KeyParameters(rate=0.0, read_ratio=0.5)
        model = InvalidationModel()
        assert model.staleness_cost(idle, BOUND, HORIZON) == 0.0
        assert model.freshness_cost(idle, BOUND, HORIZON) == 0.0


class TestUpdate:
    def test_never_stale(self) -> None:
        assert UpdateModel().staleness_cost(KEY, BOUND, HORIZON) == 0.0

    def test_freshness_is_write_probability_times_update_cost(self) -> None:
        model = UpdateModel()
        writes = p_write(KEY.rate, KEY.read_ratio, BOUND)
        assert model.freshness_cost(KEY, BOUND, HORIZON) == pytest.approx(
            (HORIZON / BOUND) * writes * 0.6
        )


class TestNormalisation:
    def test_normalized_freshness_divides_by_useful_work(self) -> None:
        model = TTLPollingModel()
        useful = expected_reads(KEY.rate, KEY.read_ratio, HORIZON) * 1.0
        assert model.useful_work(KEY, HORIZON) == pytest.approx(useful)
        assert model.normalized_freshness_cost(KEY, BOUND, HORIZON) == pytest.approx(
            model.freshness_cost(KEY, BOUND, HORIZON) / useful
        )

    def test_normalized_staleness_divides_by_reads(self) -> None:
        model = TTLExpiryModel()
        reads = expected_reads(KEY.rate, KEY.read_ratio, HORIZON)
        assert model.normalized_staleness_cost(KEY, BOUND, HORIZON) == pytest.approx(
            model.staleness_cost(KEY, BOUND, HORIZON) / reads
        )

    def test_write_only_key_normalises_to_zero(self) -> None:
        write_only = KeyParameters(rate=5.0, read_ratio=0.0)
        model = TTLExpiryModel()
        assert model.normalized_freshness_cost(write_only, BOUND, HORIZON) == 0.0
        assert model.normalized_staleness_cost(write_only, BOUND, HORIZON) == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "model",
        [TTLExpiryModel(), TTLPollingModel(), InvalidationModel(), UpdateModel()],
    )
    def test_non_positive_bound_rejected(self, model) -> None:
        with pytest.raises(ConfigurationError):
            model.staleness_cost(KEY, 0.0, HORIZON)
        with pytest.raises(ConfigurationError):
            model.freshness_cost(KEY, -1.0, HORIZON)

    def test_negative_horizon_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            _require_positive_bound(1.0, -1.0)

    def test_zero_horizon_accepted(self) -> None:
        _require_positive_bound(1.0, 0.0)
        assert TTLExpiryModel().staleness_cost(KEY, BOUND, 0.0) == 0.0


class TestSteadyState:
    def test_fixed_point(self) -> None:
        reads, writes = 0.6, 0.3
        p = steady_state_invalidated_probability(reads, writes)
        # p must satisfy the paper's recurrence p = p(1 - P_R) + (1 - p)P_W.
        assert p == pytest.approx(p * (1.0 - reads) + (1.0 - p) * writes)
        assert p == pytest.approx(writes / (reads + writes))

    def test_no_traffic_is_never_invalidated(self) -> None:
        assert steady_state_invalidated_probability(0.0, 0.0) == 0.0


class TestAggregate:
    def test_sums_per_key_costs(self) -> None:
        keys = [KeyParameters(rate=r, read_ratio=0.9) for r in (1.0, 5.0, 20.0)]
        model = InvalidationModel()
        aggregate = aggregate_normalized_costs(model, keys, BOUND, HORIZON)
        assert aggregate.freshness_cost == pytest.approx(
            sum(model.freshness_cost(key, BOUND, HORIZON) for key in keys)
        )
        assert aggregate.staleness_cost == pytest.approx(
            sum(model.staleness_cost(key, BOUND, HORIZON) for key in keys)
        )
        assert aggregate.total_reads == pytest.approx(
            sum(expected_reads(key.rate, key.read_ratio, HORIZON) for key in keys)
        )
        assert aggregate.normalized_freshness_cost == pytest.approx(
            aggregate.freshness_cost / aggregate.useful_work
        )
        assert aggregate.normalized_staleness_cost == pytest.approx(
            aggregate.staleness_cost / aggregate.total_reads
        )

    def test_empty_population_normalises_to_zero(self) -> None:
        aggregate = aggregate_normalized_costs(TTLExpiryModel(), [], BOUND, HORIZON)
        assert aggregate == AggregateCosts(0.0, 0.0, 0.0, 0.0)
        assert aggregate.normalized_freshness_cost == 0.0
        assert aggregate.normalized_staleness_cost == 0.0

    def test_accepts_any_iterable(self) -> None:
        generator = (KeyParameters(rate=2.0, read_ratio=0.5) for _ in range(3))
        aggregate = aggregate_normalized_costs(UpdateModel(), generator, BOUND, HORIZON)
        assert aggregate.total_reads == pytest.approx(3 * 2.0 * 0.5 * HORIZON)


def test_ttl_tradeoff_monotone_in_bound() -> None:
    """Loosening T lowers TTL-expiry freshness cost but raises nothing stale-free."""
    model = TTLExpiryModel()
    tight = model.freshness_cost(KEY, 0.1, HORIZON)
    loose = model.freshness_cost(KEY, 10.0, HORIZON)
    assert tight > loose
    assert math.isfinite(tight)
