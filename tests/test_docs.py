"""The documentation site and the public-API docstring contract."""

import importlib
import inspect
import re
import subprocess
import sys
from pathlib import Path

import repro

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"


def test_readme_docs_links_and_mkdocs_nav_resolve() -> None:
    """The same checker CI runs: every relative link and nav entry exists."""
    result = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_links.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_every_public_export_has_a_docstring() -> None:
    missing = [
        name for name in repro.__all__
        if not (inspect.getdoc(getattr(repro, name)) or "").strip()
    ]
    assert not missing, f"exports without docstrings: {missing}"


def test_api_reference_covers_every_public_export() -> None:
    """Each repro.__all__ symbol appears on exactly one api/ page."""
    directives: list[str] = []
    for page in sorted((DOCS / "api").glob("*.md")):
        directives += re.findall(r"^::: repro\.(\w+)$", page.read_text(), re.MULTILINE)
    exported = set(repro.__all__)
    documented = set(directives)
    assert documented == exported, (
        f"missing from api/: {sorted(exported - documented)}; "
        f"documented but not exported: {sorted(documented - exported)}"
    )
    duplicates = {name for name in directives if directives.count(name) > 1}
    assert not duplicates, f"documented on more than one page: {sorted(duplicates)}"


def test_mkdocstrings_identifiers_resolve_to_real_objects() -> None:
    """Every ``::: dotted.path`` directive in docs/ imports cleanly.

    ``mkdocs build --strict`` would fail on an unresolvable identifier in
    CI; this catches the same class of breakage without mkdocs installed.
    """
    pattern = re.compile(r"^::: ([\w.]+)$", re.MULTILINE)
    for page in sorted(DOCS.rglob("*.md")):
        for dotted in pattern.findall(page.read_text()):
            module_path, _, attribute = dotted.rpartition(".")
            if not module_path:
                importlib.import_module(dotted)
                continue
            module = importlib.import_module(module_path)
            assert hasattr(module, attribute), f"{page.name}: {dotted} does not resolve"


def test_scenario_catalog_documents_every_registered_scenario() -> None:
    from repro.cluster.scenarios import SCENARIO_FACTORIES

    catalog = (DOCS / "scenarios.md").read_text()
    for name in SCENARIO_FACTORIES:
        assert f"`{name}`" in catalog, f"scenario {name!r} missing from docs/scenarios.md"
    # Every scenario section comes with a runnable CLI invocation.
    assert catalog.count("python -m repro") >= len(SCENARIO_FACTORIES)


def test_cli_subcommands_are_documented_in_readme() -> None:
    readme = (ROOT / "README.md").read_text()
    for subcommand in ("run", "sweep", "cluster", "tier", "bench", "store", "obs"):
        assert re.search(rf"python -m repro {subcommand}\b", readme), (
            f"README does not show `python -m repro {subcommand}`"
        )
