"""Microbenchmark harness for the replay hot paths.

``python -m repro bench`` measures the end product (full replay throughput);
this module measures the *components* that replay is made of — fingerprinting,
ring routing, request allocation, workload generation, sketch updates, cache
operations, and small end-to-end replays — so a regression in any one layer
is attributable before it drowns in an aggregate number.

Three building blocks:

* :class:`Timer` / :func:`time_callable` — wall-clock timing primitives.
* :func:`profile_call` — a cProfile hook that returns the profile table as
  text, for ``python -m repro perf --profile <name>``.
* :data:`MICROBENCHES` — the registry of named component benchmarks driven
  by :func:`run_perf` and the ``perf`` CLI subcommand.

Every benchmark is deterministic in its *work* (fixed keys, fixed seeds);
only the measured wall time varies between runs.
"""

from __future__ import annotations

import cProfile
import io
import platform
import pstats
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


class Timer:
    """Context manager measuring wall-clock seconds.

    Example:

        >>> with Timer() as timer:
        ...     _ = sum(range(1000))
        >>> timer.seconds > 0
        True
    """

    __slots__ = ("started", "seconds")

    def __init__(self) -> None:
        self.started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.seconds = time.perf_counter() - self.started


@dataclass(slots=True)
class PhaseTimer:
    """Accumulates named wall-clock phases (generation vs replay, etc.).

    Example:

        >>> phases = PhaseTimer()
        >>> with phases.phase("work"):
        ...     _ = sum(range(1000))
        >>> list(phases.seconds) == ["work"]
        True
    """

    seconds: Dict[str, float] = field(default_factory=dict)

    def phase(self, name: str) -> "_Phase":
        """Return a context manager adding its elapsed time to ``name``."""
        return _Phase(self, name)

    def add(self, name: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds into phase ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed


class _Phase:
    __slots__ = ("_timer", "_name", "_started")

    def __init__(self, timer: PhaseTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Phase":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.add(self._name, time.perf_counter() - self._started)


def time_callable(fn: Callable[[], Any], repeats: int = 3) -> Dict[str, float]:
    """Time ``fn()`` ``repeats`` times; report best and mean wall seconds.

    The *best* run is the least-noisy estimate of the code's cost (anything
    slower was interference); the mean is reported for context.
    """
    runs: List[float] = []
    for _ in range(max(1, repeats)):
        with Timer() as timer:
            fn()
        runs.append(timer.seconds)
    return {"best_seconds": min(runs), "mean_seconds": sum(runs) / len(runs)}


def profile_call(fn: Callable[[], Any], limit: int = 25) -> str:
    """Run ``fn()`` under cProfile and return the top-``limit`` table as text."""
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(limit)
    return stream.getvalue()


# --------------------------------------------------------------------- #
# Component benchmarks
# --------------------------------------------------------------------- #

def _scaled(base: int, scale: float) -> int:
    return max(1, int(base * scale))


def bench_fingerprint(scale: float = 1.0) -> Dict[str, Any]:
    """Memoized vs raw BLAKE2 fingerprint throughput."""
    from repro.sketch.hashing import (
        _compute_fingerprint,
        fingerprint_cache_clear,
        stable_fingerprint,
    )

    ops = _scaled(200_000, scale)
    keys = [f"perf-key-{index % 10_000:06d}" for index in range(ops)]
    fingerprint_cache_clear()

    def cached() -> None:
        for key in keys:
            stable_fingerprint(key)

    def raw() -> None:
        for key in keys[: ops // 10]:
            _compute_fingerprint(key)

    cached_timing = time_callable(cached)
    raw_timing = time_callable(raw)
    return {
        "ops": ops,
        "ops_per_sec": ops / cached_timing["best_seconds"],
        "raw_ops_per_sec": (ops // 10) / raw_timing["best_seconds"],
        **cached_timing,
    }


def bench_hashring_route(scale: float = 1.0) -> Dict[str, Any]:
    """Cached consistent-hash routing throughput (8 nodes, factor 2)."""
    from repro.cluster.hashring import ConsistentHashRing

    ops = _scaled(200_000, scale)
    ring = ConsistentHashRing(vnodes=64)
    for index in range(8):
        ring.add_node(f"node-{index:03d}")
    keys = [f"perf-key-{index % 10_000:06d}" for index in range(ops)]
    route = ring.route

    def routed() -> None:
        for key in keys:
            route(key, 2)

    timing = time_callable(routed)
    return {"ops": ops, "ops_per_sec": ops / timing["best_seconds"], **timing}


def bench_request_alloc(scale: float = 1.0) -> Dict[str, Any]:
    """Request object construction throughput (the per-request floor)."""
    from repro.workload.base import OpType, Request

    ops = _scaled(200_000, scale)
    read = OpType.READ

    def build() -> None:
        for index in range(ops):
            Request(float(index), "key-000001", read, 16, 128)

    timing = time_callable(build)
    return {"ops": ops, "ops_per_sec": ops / timing["best_seconds"], **timing}


def bench_workload_generation(scale: float = 1.0) -> Dict[str, Any]:
    """Streamed Poisson/Zipf generation throughput (no replay attached)."""
    from repro.workload.poisson import PoissonZipfWorkload

    requests = _scaled(100_000, scale)
    workload = PoissonZipfWorkload(num_keys=1000, rate_per_key=100.0, seed=0)
    duration = requests / (100.0 * 1000)

    def drain() -> None:
        deque(workload.iter_requests(duration), maxlen=0)

    timing = time_callable(drain)
    return {"ops": requests, "ops_per_sec": requests / timing["best_seconds"], **timing}


def bench_sketch_update(scale: float = 1.0) -> Dict[str, Any]:
    """Count-min add/query throughput, scalar and vectorized batch paths."""
    from repro.sketch.countmin import CountMinSketch

    ops = _scaled(100_000, scale)
    sketch = CountMinSketch(width=512, depth=4, seed=0)
    batch_sketch = CountMinSketch(width=512, depth=4, seed=0)
    keys = [f"perf-key-{index % 2_000:06d}" for index in range(ops)]

    def update() -> None:
        add = sketch.add
        query = sketch.query
        for index, key in enumerate(keys):
            add(key)
            if not index % 16:
                query(key)

    def update_batched() -> None:
        # The vectorized path: one row_indices pass + np.add.at per chunk.
        for start in range(0, ops, 4096):
            batch_sketch.add_many(keys[start : start + 4096])

    timing = time_callable(update)
    batch_timing = time_callable(update_batched)
    return {
        "ops": ops,
        "ops_per_sec": ops / timing["best_seconds"],
        "batch_ops_per_sec": ops / batch_timing["best_seconds"],
        **timing,
    }


def bench_cache_ops(scale: float = 1.0) -> Dict[str, Any]:
    """Cache fill + lookup throughput under LRU at capacity."""
    from repro.cache.cache import Cache

    ops = _scaled(100_000, scale)
    cache = Cache(capacity=4096)
    keys = [f"perf-key-{index % 8_000:06d}" for index in range(ops)]

    def churn() -> None:
        fill = cache.fill
        lookup = cache.lookup
        for index, key in enumerate(keys):
            entry, outcome = lookup(key, float(index))
            if entry is None:
                fill(key, version=1, time=float(index))

    timing = time_callable(churn)
    return {"ops": ops, "ops_per_sec": ops / timing["best_seconds"], **timing}


def bench_replay_single(scale: float = 1.0) -> Dict[str, Any]:
    """End-to-end single-cache replay (generation + simulation)."""
    from repro.experiments.bench import bench_policy

    requests = _scaled(50_000, scale)
    row = bench_policy("invalidate", num_requests=requests, num_keys=500)
    return {
        "ops": row["requests"],
        "ops_per_sec": row["requests_per_sec"],
        "best_seconds": row["wall_seconds"],
        "mean_seconds": row["wall_seconds"],
    }


def bench_replay_cluster(scale: float = 1.0) -> Dict[str, Any]:
    """End-to-end 3-node cluster replay (routing + fan-out included)."""
    from repro.experiments.bench import bench_policy

    requests = _scaled(50_000, scale)
    row = bench_policy("invalidate", num_requests=requests, num_keys=500, num_nodes=3)
    return {
        "ops": row["requests"],
        "ops_per_sec": row["requests_per_sec"],
        "best_seconds": row["wall_seconds"],
        "mean_seconds": row["wall_seconds"],
    }


def bench_vector_kernels(scale: float = 1.0) -> Dict[str, Any]:
    """Columnar replay of a precompiled trace (kernels only, no compile).

    Compiles the trace once outside the timed region, then replays it
    through :class:`~repro.sim.vector.VectorSimulation` — the isolated cost
    of the span/kernel machinery that ``bench`` folds into ``wall_seconds``.
    """
    from repro.experiments.registry import make_policy
    from repro.sim.vector import VectorSimulation
    from repro.workload.compiled import compile_workload
    from repro.workload.poisson import PoissonZipfWorkload

    requests = _scaled(100_000, scale)
    workload = PoissonZipfWorkload(num_keys=500, rate_per_key=100.0, seed=0)
    duration = requests / (100.0 * 500)
    trace = compile_workload(workload, duration)

    def replay() -> None:
        # A simulation instance is single-shot; construction is cheap next
        # to the replay itself.
        VectorSimulation(
            trace,
            policy=make_policy("invalidate"),
            staleness_bound=1.0,
            duration=duration,
            workload_name=workload.name,
        ).run()

    timing = time_callable(replay)
    return {
        "ops": len(trace),
        "ops_per_sec": len(trace) / timing["best_seconds"],
        **timing,
    }


def bench_shard_merge(scale: float = 1.0) -> Dict[str, Any]:
    """Deterministic merge of per-shard cluster results.

    Replays two node partitions of a 4-node fleet once (untimed), then
    times :func:`~repro.cluster.parallel._merge_shard_results` — the serial
    tail every parallel replay pays after its workers finish.  The merge is
    idempotent (row reassignment plus a totals re-finalise), so re-merging
    the same shard results is sound.
    """
    from repro.cluster.parallel import _merge_shard_results, partition_nodes
    from repro.cluster.vector import VectorClusterSimulation
    from repro.workload.compiled import compile_workload
    from repro.workload.poisson import PoissonZipfWorkload

    requests = _scaled(20_000, scale)
    workload = PoissonZipfWorkload(num_keys=500, rate_per_key=100.0, seed=0)
    duration = requests / (100.0 * 500)
    trace = compile_workload(workload, duration)
    partitions = partition_nodes(4, 2)
    shard_results = [
        VectorClusterSimulation(
            trace,
            owned_nodes=owned,
            policy="invalidate",
            num_nodes=4,
            staleness_bound=1.0,
            duration=duration,
            workload_name=workload.name,
            seed=0,
        ).run()
        for owned in partitions
    ]
    merges = _scaled(200, scale)

    def merge() -> None:
        for _ in range(merges):
            _merge_shard_results(partitions, shard_results)

    timing = time_callable(merge)
    return {
        "ops": merges,
        "ops_per_sec": merges / timing["best_seconds"],
        **timing,
    }


def _obs_replay(scale: float, obs: Any) -> Dict[str, Any]:
    """Single-cache replay with the given obs setting (shared harness)."""
    from repro.experiments.registry import make_policy
    from repro.sim.simulation import Simulation
    from repro.workload.poisson import PoissonZipfWorkload

    requests = _scaled(50_000, scale)
    workload = PoissonZipfWorkload(num_keys=500, rate_per_key=100.0, seed=0)
    duration = requests / (100.0 * 500)

    def replay() -> None:
        Simulation(
            workload=workload.iter_requests(duration),
            policy=make_policy("invalidate"),
            staleness_bound=1.0,
            duration=duration,
            workload_name=workload.name,
            obs=obs,
        ).run()

    timing = time_callable(replay)
    return {"ops": requests, "ops_per_sec": requests / timing["best_seconds"], **timing}


def bench_obs_disabled(scale: float = 1.0) -> Dict[str, Any]:
    """Replay with telemetry off — the zero-cost claim under a clock.

    ``obs=None`` binds the raw ``_process_read``/``_process_write`` methods
    at the top of ``run()``, so this must be indistinguishable from a build
    without the hooks; compare against ``replay-single`` and ``obs-enabled``.
    """
    return _obs_replay(scale, None)


def bench_obs_enabled(scale: float = 1.0) -> Dict[str, Any]:
    """Replay with a live recorder (1s windows, sampled spans) — the paid cost."""
    from repro.obs.recorder import ObsConfig

    return _obs_replay(scale, ObsConfig(window=1.0))


#: Registry of component benchmarks, in report order.
MICROBENCHES: Dict[str, Callable[[float], Dict[str, Any]]] = {
    "fingerprint": bench_fingerprint,
    "hashring-route": bench_hashring_route,
    "request-alloc": bench_request_alloc,
    "workload-generation": bench_workload_generation,
    "sketch-update": bench_sketch_update,
    "cache-ops": bench_cache_ops,
    "replay-single": bench_replay_single,
    "replay-cluster": bench_replay_cluster,
    "vector-kernels": bench_vector_kernels,
    "shard-merge": bench_shard_merge,
    "obs-disabled": bench_obs_disabled,
    "obs-enabled": bench_obs_enabled,
}


def run_perf(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Any]:
    """Run the named microbenchmarks (default: all) and return the record.

    Args:
        names: Benchmark names from :data:`MICROBENCHES`; ``None`` runs all.
        scale: Multiplier on every benchmark's operation count (CI smoke
            passes a small value, local investigation a larger one).

    Returns:
        A JSON-ready record with one row per benchmark.

    Raises:
        KeyError: If a name is not in the registry.
    """
    selected = list(MICROBENCHES) if names is None else list(names)
    unknown = [name for name in selected if name not in MICROBENCHES]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {unknown}; available: {sorted(MICROBENCHES)}"
        )
    results = []
    for name in selected:
        row = MICROBENCHES[name](scale)
        row["name"] = name
        results.append(row)
    return {
        "kind": "repro-perf",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": scale,
        "results": results,
    }
