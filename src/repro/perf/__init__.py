"""Performance measurement: microbenchmarks, timers, and profile hooks.

The ``repro.perf`` package makes replay throughput a first-class, observable
metric.  It complements ``python -m repro bench`` (end-to-end throughput,
regression-gated against the committed ``BENCH_BASELINE.json`` by
``scripts/check_bench.py``) with per-component microbenchmarks driven by
``python -m repro perf``, so a regression is attributable to the layer that
caused it.
"""

from repro.perf.perf import (
    MICROBENCHES,
    PhaseTimer,
    Timer,
    profile_call,
    run_perf,
    time_callable,
)

__all__ = [
    "MICROBENCHES",
    "PhaseTimer",
    "Timer",
    "profile_call",
    "run_perf",
    "time_callable",
]
