"""Eviction policies for the capacity-limited cache.

The paper's evaluation uses caches with limited capacity so that eviction
interacts with freshness decisions (a key that is evicted cannot be stale).
LRU is the default; LFU, FIFO, and Clock are provided both for completeness
and for the ablation benchmarks that explore how eviction interacts with the
freshness policies (one of the paper's §5 open questions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, Optional

from repro.errors import ConfigurationError


class EvictionPolicy(ABC):
    """Tracks access recency/frequency and chooses victims on overflow.

    The cache calls :meth:`on_insert` when a key enters the cache,
    :meth:`on_access` on every hit, :meth:`on_remove` when a key leaves for
    any reason, and :meth:`choose_victim` when it needs space.
    """

    name: str = "eviction"

    @abstractmethod
    def on_insert(self, key: str) -> None:
        """Record that ``key`` was inserted into the cache."""

    @abstractmethod
    def on_access(self, key: str) -> None:
        """Record a hit on ``key``."""

    @abstractmethod
    def on_remove(self, key: str) -> None:
        """Record that ``key`` left the cache (eviction or explicit delete)."""

    @abstractmethod
    def choose_victim(self) -> Optional[str]:
        """Return the key to evict next, or ``None`` if the policy is empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of keys currently tracked."""

    def recency_order(self) -> Optional[list[str]]:
        """Keys in victim-first order, for exact serialization — or ``None``.

        Policies whose state is fully captured by an ordered key list (LRU,
        FIFO) return it here; snapshots store entries in this order so that
        restoring them via ``on_insert`` reproduces the eviction state — and
        hence every post-restore eviction decision — exactly.  Policies with
        richer state return ``None`` and restore approximately.
        """
        return None


class LRUEviction(EvictionPolicy):
    """Least-recently-used eviction."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[str, None] = OrderedDict()

    def on_insert(self, key: str) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_access(self, key: str) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def on_remove(self, key: str) -> None:
        self._order.pop(key, None)

    def choose_victim(self) -> Optional[str]:
        if not self._order:
            return None
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def recency_order(self) -> list[str]:
        """Keys least-recently-used first (victim-first)."""
        return list(self._order)


class FIFOEviction(EvictionPolicy):
    """First-in-first-out eviction (insertion order, ignores accesses)."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: OrderedDict[str, None] = OrderedDict()

    def on_insert(self, key: str) -> None:
        if key not in self._order:
            self._order[key] = None

    def on_access(self, key: str) -> None:
        # FIFO ignores accesses by design.
        return None

    def on_remove(self, key: str) -> None:
        self._order.pop(key, None)

    def choose_victim(self) -> Optional[str]:
        if not self._order:
            return None
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def recency_order(self) -> list[str]:
        """Keys in insertion order (victim-first)."""
        return list(self._order)


class LFUEviction(EvictionPolicy):
    """Least-frequently-used eviction with LRU tie-breaking."""

    name = "lfu"

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._recency: OrderedDict[str, None] = OrderedDict()

    def on_insert(self, key: str) -> None:
        self._counts[key] = self._counts.get(key, 0)
        self._recency[key] = None
        self._recency.move_to_end(key)

    def on_access(self, key: str) -> None:
        if key in self._counts:
            self._counts[key] += 1
            self._recency.move_to_end(key)

    def on_remove(self, key: str) -> None:
        self._counts.pop(key, None)
        self._recency.pop(key, None)

    def choose_victim(self) -> Optional[str]:
        if not self._counts:
            return None
        min_count = min(self._counts.values())
        for key in self._recency:
            if self._counts[key] == min_count:
                return key
        return None  # pragma: no cover - unreachable

    def __len__(self) -> int:
        return len(self._counts)


class ClockEviction(EvictionPolicy):
    """Second-chance (Clock) eviction.

    Each key carries a reference bit set on access.  The clock hand sweeps
    insertion order, clearing bits until it finds an unreferenced key.
    """

    name = "clock"

    def __init__(self) -> None:
        self._referenced: OrderedDict[str, bool] = OrderedDict()

    def on_insert(self, key: str) -> None:
        self._referenced[key] = False

    def on_access(self, key: str) -> None:
        if key in self._referenced:
            self._referenced[key] = True

    def on_remove(self, key: str) -> None:
        self._referenced.pop(key, None)

    def choose_victim(self) -> Optional[str]:
        if not self._referenced:
            return None
        # Sweep at most two passes: the first pass clears reference bits, the
        # second is guaranteed to find an unreferenced key.
        for _ in range(2 * len(self._referenced)):
            key, referenced = next(iter(self._referenced.items()))
            if referenced:
                self._referenced[key] = False
                self._referenced.move_to_end(key)
            else:
                return key
        return next(iter(self._referenced))  # pragma: no cover - safety net

    def __len__(self) -> int:
        return len(self._referenced)


_POLICIES = {
    "lru": LRUEviction,
    "fifo": FIFOEviction,
    "lfu": LFUEviction,
    "clock": ClockEviction,
}


def make_eviction_policy(name: str) -> EvictionPolicy:
    """Build an eviction policy by name (``lru``, ``fifo``, ``lfu``, ``clock``).

    Raises:
        ConfigurationError: If the name is not recognised.
    """
    try:
        factory = _POLICIES[name.lower()]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown eviction policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from exc
    return factory()
