"""Cache-aside cache substrate.

Implements the in-memory, capacity-limited cache that the paper's evaluation
simulates (Figure 1): reads are served from the cache, writes bypass it and go
straight to the backend, and entries are populated when a read misses.
Freshness is *not* guaranteed by the cache itself — that is the job of the
policies in :mod:`repro.core`.
"""

from repro.cache.entry import CacheEntry, EntryState
from repro.cache.eviction import (
    ClockEviction,
    EvictionPolicy,
    FIFOEviction,
    LFUEviction,
    LRUEviction,
    make_eviction_policy,
)
from repro.cache.cache import Cache
from repro.cache.stats import CacheStats

__all__ = [
    "Cache",
    "CacheEntry",
    "CacheStats",
    "ClockEviction",
    "EntryState",
    "EvictionPolicy",
    "FIFOEviction",
    "LFUEviction",
    "LRUEviction",
    "make_eviction_policy",
]
