"""Counters describing cache behaviour during a simulation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class CacheStats:
    """Aggregate cache counters.

    The split between ``stale_misses`` and ``cold_misses`` mirrors the paper's
    definition of the staleness cost: only misses on objects that *were*
    present in the cache but could not be returned because they were stale
    (invalidated or expired) count towards :math:`C_S`.
    """

    lookups: int = 0
    hits: int = 0
    stale_misses: int = 0
    cold_misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    updates_applied: int = 0
    updates_ignored: int = 0
    expirations: int = 0

    @property
    def misses(self) -> int:
        """Total misses of any kind."""
        return self.stale_misses + self.cold_misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def miss_ratio(self) -> float:
        """Fraction of lookups that missed for any reason."""
        return self.misses / self.lookups if self.lookups else 0.0

    @property
    def stale_miss_ratio(self) -> float:
        """Misses due to staleness over lookups where the object was cached.

        This is the per-cache analogue of the paper's normalised staleness
        cost :math:`C'_S`: the denominator only counts reads for which the
        object was present in the cache (hits plus stale misses).
        """
        present = self.hits + self.stale_misses
        return self.stale_misses / present if present else 0.0

    def as_dict(self) -> dict[str, float]:
        """Return the counters (and derived ratios) as a plain dictionary."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "stale_misses": self.stale_misses,
            "cold_misses": self.cold_misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "updates_applied": self.updates_applied,
            "updates_ignored": self.updates_ignored,
            "expirations": self.expirations,
            "hit_ratio": self.hit_ratio,
            "miss_ratio": self.miss_ratio,
            "stale_miss_ratio": self.stale_miss_ratio,
        }
