"""Cache entry representation.

Each entry remembers which backend version it holds and when that version was
fetched, which is what lets the simulator decide whether a read observes data
within the staleness bound.  Entries can also be marked invalid (by an
invalidation message) or expired (by a TTL timer) without being removed, so
that the accounting can distinguish "miss because the data was stale" from
"miss because the data was never cached or was evicted" — the distinction at
the heart of the paper's staleness-cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class EntryState(Enum):
    """Lifecycle state of a cached object."""

    VALID = "valid"
    INVALIDATED = "invalidated"
    EXPIRED = "expired"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(slots=True)
class CacheEntry:
    """A single cached object.

    Attributes:
        key: Object key.
        version: Backend version number this entry reflects.
        as_of: Backend time the entry reflects (time of fetch or update).
        fetched_at: Time the entry was last brought into the cache or
            refreshed; TTL timers are anchored here.
        key_size: Key size in bytes.
        value_size: Value size in bytes.
        state: Validity state (valid, invalidated by the backend, or expired
            by a TTL).
        last_poll_accounted: Bookkeeping timestamp used by TTL-polling to
            lazily account for periodic refreshes.
        hits: Number of reads served from this entry since it was cached.
    """

    key: str
    version: int
    as_of: float
    fetched_at: float
    key_size: int = 16
    value_size: int = 128
    state: EntryState = EntryState.VALID
    last_poll_accounted: float = field(default=0.0)
    hits: int = 0

    @property
    def is_valid(self) -> bool:
        """Whether the entry can serve reads without a freshness violation."""
        return self.state is EntryState.VALID

    def mark_invalidated(self) -> None:
        """Mark the entry stale due to a backend invalidation message."""
        self.state = EntryState.INVALIDATED

    def mark_expired(self) -> None:
        """Mark the entry stale due to a TTL expiry."""
        self.state = EntryState.EXPIRED

    def refresh(self, version: int, time: float, value_size: int | None = None) -> None:
        """Refresh the entry with a new backend version.

        Used both when a miss re-fetches the object and when the backend
        pushes an update message.
        """
        self.version = version
        self.as_of = time
        self.fetched_at = time
        self.state = EntryState.VALID
        if value_size is not None:
            self.value_size = value_size

    def total_size(self) -> int:
        """Approximate in-memory footprint of the entry in bytes."""
        return self.key_size + self.value_size
