"""The cache-aside cache.

The cache stores :class:`~repro.cache.entry.CacheEntry` objects up to a fixed
capacity (in number of objects), delegating victim selection to a pluggable
eviction policy.  It deliberately knows nothing about freshness policies: the
simulator and the policies drive invalidation, expiry, updates, and re-fetches
through the explicit methods below, and the cache merely records state and
statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

from repro.cache.entry import CacheEntry, EntryState
from repro.cache.eviction import EvictionPolicy, LRUEviction
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError

EvictionCallback = Callable[[CacheEntry, float], None]


class Cache:
    """A capacity-limited, cache-aside key-value cache.

    Args:
        capacity: Maximum number of objects held at once.  ``None`` means
            unbounded (useful for experiments that want to isolate freshness
            effects from eviction effects, as the paper's model does).
        eviction: Eviction policy instance; defaults to LRU.
        on_evict: Optional callback invoked with ``(entry, time)`` whenever an
            entry is evicted for capacity reasons.  The simulator uses this to
            finalise lazily-accounted polling costs.
    """

    __slots__ = ("capacity", "eviction", "on_evict", "stats", "_entries", "_on_access")

    def __init__(
        self,
        capacity: Optional[int] = None,
        eviction: Optional[EvictionPolicy] = None,
        on_evict: Optional[EvictionCallback] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.eviction = eviction if eviction is not None else LRUEviction()
        self.on_evict = on_evict
        self.stats = CacheStats()
        self._entries: Dict[str, CacheEntry] = {}
        # Hot-path alias: one bound-method resolution per lookup saved; the
        # eviction policy never changes after construction.
        self._on_access = self.eviction.on_access

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[str]:
        """Iterate over the keys currently cached (in no particular order)."""
        return iter(self._entries)

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate over the cached entries (valid or not)."""
        return iter(self._entries.values())

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Return the entry for ``key`` without touching recency or stats."""
        return self._entries.get(key)

    def raw_getter(self):
        """Bound ``dict.get`` over the live entry map (a hot-path ``peek``).

        The returned callable must be used read-only; the dict object is
        stable for the cache's lifetime, so the alias never goes stale.
        """
        return self._entries.get

    def contains_valid(self, key: str) -> bool:
        """Whether ``key`` is cached *and* currently valid."""
        entry = self._entries.get(key)
        return entry is not None and entry.is_valid

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def lookup(self, key: str, time: float) -> tuple[Optional[CacheEntry], str]:
        """Look up ``key`` at ``time`` and classify the outcome.

        Returns:
            A ``(entry, outcome)`` pair where ``outcome`` is one of ``"hit"``,
            ``"stale_miss"`` (the object is cached but invalidated/expired),
            or ``"cold_miss"`` (the object is not cached at all).  On a hit the
            entry's recency is updated; on any outcome the statistics are
            updated.
        """
        stats = self.stats
        stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            stats.cold_misses += 1
            return None, "cold_miss"
        if entry.state is EntryState.VALID:
            entry.hits += 1
            stats.hits += 1
            self._on_access(key)
            return entry, "hit"
        stats.stale_misses += 1
        self._on_access(key)
        return entry, "stale_miss"

    # ------------------------------------------------------------------ #
    # Fill / refresh path
    # ------------------------------------------------------------------ #
    def fill(
        self,
        key: str,
        version: int,
        time: float,
        key_size: int = 16,
        value_size: int = 128,
    ) -> CacheEntry:
        """Insert or refresh ``key`` after fetching it from the backend.

        If the key is already present (for example, it was invalidated and a
        miss re-fetched it), the existing entry is refreshed in place;
        otherwise a new entry is inserted, evicting a victim when at capacity.
        """
        entry = self._entries.get(key)
        if entry is not None:
            entry.refresh(version=version, time=time, value_size=value_size)
            entry.last_poll_accounted = time
            self.eviction.on_access(key)
            return entry
        self._make_room(time)
        entry = CacheEntry(
            key=key,
            version=version,
            as_of=time,
            fetched_at=time,
            key_size=key_size,
            value_size=value_size,
            last_poll_accounted=time,
        )
        self._entries[key] = entry
        self.eviction.on_insert(key)
        self.stats.insertions += 1
        return entry

    def apply_update(
        self, key: str, version: int, time: float, value_size: int | None = None
    ) -> bool:
        """Apply a backend update message.

        Updates modify the object only if it is present in the cache and do
        nothing otherwise, matching the paper's definition of an update.

        Returns:
            ``True`` if the cached object was refreshed, ``False`` if the key
            was not cached (the message had no effect).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.updates_ignored += 1
            return False
        entry.refresh(version=version, time=time, value_size=value_size)
        entry.last_poll_accounted = time
        self.stats.updates_applied += 1
        return True

    def apply_invalidate(self, key: str, time: float) -> bool:
        """Apply a backend invalidation message.

        Returns:
            ``True`` if a cached object was marked invalid, ``False`` if the
            key was not cached or already invalid.
        """
        entry = self._entries.get(key)
        if entry is None or not entry.is_valid:
            return False
        entry.mark_invalidated()
        self.stats.invalidations += 1
        return True

    def expire(self, key: str) -> bool:
        """Mark ``key`` as expired due to a TTL timer.

        Returns:
            ``True`` if a valid cached object was expired.
        """
        entry = self._entries.get(key)
        if entry is None or not entry.is_valid:
            return False
        entry.mark_expired()
        self.stats.expirations += 1
        return True

    def restore_entry(self, entry: CacheEntry, time: float) -> CacheEntry:
        """Re-insert a previously serialized entry (recovery / warm rejoin).

        The entry is inserted as-is — state, version, and timestamps are the
        caller's to decide — evicting a victim when at capacity, exactly as a
        fill would.
        """
        existing = self._entries.get(entry.key)
        if existing is None:
            self._make_room(time)
        self._entries[entry.key] = entry
        self.eviction.on_insert(entry.key)
        self.stats.insertions += 1
        return entry

    def delete(self, key: str) -> bool:
        """Remove ``key`` from the cache entirely (no eviction callback)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.eviction.on_remove(key)
        return True

    def clear(self) -> None:
        """Remove every entry (statistics are preserved)."""
        for key in list(self._entries):
            self.delete(key)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _make_room(self, time: float) -> None:
        """Evict victims until there is room for one more entry."""
        if self.capacity is None:
            return
        while len(self._entries) >= self.capacity:
            victim = self.eviction.choose_victim()
            if victim is None:  # pragma: no cover - defensive
                return
            entry = self._entries.pop(victim)
            self.eviction.on_remove(victim)
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(entry, time)
