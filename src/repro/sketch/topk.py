"""Top-K sketch: exact counters for hot keys, Count-min for the rest (§3.3).

The paper's modified Top-K sketch keeps precise read/write counters for the
``K`` most accessed keys and falls back to the Count-min approximation for the
cold tail.  Keys are promoted into the exact set when their (approximate)
access count exceeds that of the coldest tracked key, and the displaced key is
demoted back to the sketch.  This keeps decisions for hot keys — which account
for most of the traffic and therefore most of the freshness cost — exact while
bounding storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.sketch.base import EWEstimator
from repro.sketch.countmin import CountMinEWSketch, CountMinSketch


@dataclass(slots=True)
class _HotKeyCounters:
    """Exact per-key counters for a key in the Top-K set."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class TopKEWSketch(EWEstimator):
    """Hybrid exact/approximate E[W] estimator.

    Args:
        k: Number of keys tracked exactly.
        width: Width of the fallback Count-min sketches.
        depth: Depth of the fallback Count-min sketches.
        default_estimate: E[W] returned for keys never observed.
        seed: Seed for the sketch hash families.
    """

    name = "top-k"

    #: Approximate per-hot-key storage: two 8-byte counters plus a pointer.
    BYTES_PER_HOT_KEY = 2 * 8 + 8

    def __init__(
        self,
        k: int = 64,
        width: int = 256,
        depth: int = 4,
        default_estimate: float = 1.0,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.default_estimate = float(default_estimate)
        self._hot: Dict[str, _HotKeyCounters] = {}
        self._cold = CountMinEWSketch(
            width=width, depth=depth, default_estimate=default_estimate, seed=seed
        )
        self._access_counts = CountMinSketch(width=width, depth=depth, seed=seed + 1)
        self.promotions = 0
        self.demotions = 0

    # ------------------------------------------------------------------ #
    # Observation path
    # ------------------------------------------------------------------ #
    def _observe(self, key: str, is_read: bool) -> None:
        self._access_counts.add(key)
        counters = self._hot.get(key)
        if counters is None:
            counters = self._maybe_promote(key)
        if counters is not None:
            if is_read:
                counters.reads += 1
            else:
                counters.writes += 1
            return
        if is_read:
            self._cold.observe_read(key)
        else:
            self._cold.observe_write(key)

    def observe_read(self, key: str) -> None:
        """Record a read of ``key``."""
        self._observe(key, is_read=True)

    def observe_write(self, key: str) -> None:
        """Record a write of ``key``."""
        self._observe(key, is_read=False)

    # ------------------------------------------------------------------ #
    # Promotion / demotion
    # ------------------------------------------------------------------ #
    def _maybe_promote(self, key: str) -> _HotKeyCounters | None:
        """Promote ``key`` into the exact set if it is hot enough.

        Returns the key's exact counters if promoted, else ``None``.
        """
        if len(self._hot) < self.k:
            counters = _HotKeyCounters()
            self._hot[key] = counters
            self.promotions += 1
            return counters
        candidate_count = self._access_counts.query(key)
        coldest_key = min(self._hot, key=lambda hot_key: self._hot[hot_key].total)
        coldest = self._hot[coldest_key]
        if candidate_count <= coldest.total:
            return None
        # Demote the coldest hot key: fold its exact counts into the sketch so
        # its history is not lost entirely.
        for _ in range(coldest.reads):
            self._cold.observe_read(coldest_key)
        for _ in range(coldest.writes):
            self._cold.observe_write(coldest_key)
        del self._hot[coldest_key]
        self.demotions += 1
        counters = _HotKeyCounters()
        self._hot[key] = counters
        self.promotions += 1
        return counters

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_hot(self, key: str) -> bool:
        """Whether ``key`` is currently tracked exactly."""
        return key in self._hot

    def estimate(self, key: str) -> float:
        """Return E[W] for ``key``: exact for hot keys, sketched otherwise."""
        counters = self._hot.get(key)
        if counters is not None:
            if counters.reads == 0 and counters.writes == 0:
                return self.default_estimate
            if counters.reads == 0:
                return float(counters.writes)
            return counters.writes / counters.reads
        return self._cold.estimate(key)

    def memory_bytes(self) -> int:
        """Memory of the hot table plus both fallback sketches."""
        hot_key_bytes = sum(len(key) for key in self._hot)
        hot_bytes = len(self._hot) * self.BYTES_PER_HOT_KEY + hot_key_bytes
        return hot_bytes + self._cold.memory_bytes() + self._access_counts.memory_bytes()

    def reset(self) -> None:
        """Forget all hot keys and zero the sketches."""
        self._hot.clear()
        self._cold.reset()
        self._access_counts.reset()
        self.promotions = 0
        self.demotions = 0
