"""Common interface for E[W] estimators."""

from __future__ import annotations

from abc import ABC, abstractmethod


class EWEstimator(ABC):
    """Estimates, per key, the expected number of writes between reads.

    Estimators observe the request stream through :meth:`observe_read` and
    :meth:`observe_write` and answer :meth:`estimate` queries at decision
    time.  They must also report their memory footprint so experiments can
    reproduce the storage-saving comparison of Figure 6c.
    """

    #: Short name used in experiment reports ("exact", "count-min", "top-k").
    name: str = "estimator"

    @abstractmethod
    def observe_read(self, key: str) -> None:
        """Record a read of ``key``."""

    @abstractmethod
    def observe_write(self, key: str) -> None:
        """Record a write of ``key``."""

    @abstractmethod
    def estimate(self, key: str) -> float:
        """Return the estimated E[W] for ``key``.

        Keys with no observed history return the estimator's default prior
        (implementation-specific, typically 1.0, i.e. "one write per read").
        """

    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate memory used by the estimator state, in bytes."""

    def reset(self) -> None:
        """Forget all state.  Subclasses may override for efficiency."""
        raise NotImplementedError
