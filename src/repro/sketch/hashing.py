"""Pairwise-independent hash functions for sketching.

Count-min sketches need one hash function per row.  We use the classic
multiply-shift construction over a stable 64-bit fingerprint of the key so
that results are deterministic across processes (Python's built-in ``hash``
is salted per process and would make experiments unreproducible).
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

from repro.errors import ConfigurationError

_MASK64 = (1 << 64) - 1


def stable_fingerprint(key: str) -> int:
    """Return a stable 64-bit fingerprint of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashFamily:
    """A family of ``depth`` hash functions mapping keys to ``[0, width)``.

    Each function is ``h_i(x) = ((a_i * x + b_i) mod 2^64) >> shift mod width``
    with odd multipliers drawn from a seeded generator, giving deterministic,
    well-spread row indices.
    """

    def __init__(self, depth: int, width: int, seed: int = 0) -> None:
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.depth = int(depth)
        self.width = int(width)
        rng = np.random.default_rng(seed)
        # dtype=uint64: the 64-bit bounds overflow numpy's default int64.
        self._multipliers = [
            int(rng.integers(1, _MASK64, dtype=np.uint64)) | 1 for _ in range(depth)
        ]
        self._offsets = [int(rng.integers(0, _MASK64, dtype=np.uint64)) for _ in range(depth)]

    def indices(self, key: str) -> List[int]:
        """Return the column index of ``key`` in each row."""
        fingerprint = stable_fingerprint(key)
        columns = []
        for row in range(self.depth):
            mixed = (self._multipliers[row] * fingerprint + self._offsets[row]) & _MASK64
            columns.append((mixed >> 16) % self.width)
        return columns
