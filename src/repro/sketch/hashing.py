"""Pairwise-independent hash functions for sketching.

Count-min sketches need one hash function per row.  We use the classic
multiply-shift construction over a stable 64-bit fingerprint of the key so
that results are deterministic across processes (Python's built-in ``hash``
is salted per process and would make experiments unreproducible).

Fingerprinting is the single hottest pure-Python helper in the whole stack —
every routing decision, sketch update, and sketch query starts from it — so
:func:`stable_fingerprint` memoizes digests in a process-wide bounded LRU
cache: each key pays for BLAKE2 once per process, and the bound keeps RSS
flat even on streams of millions of distinct keys.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError

_MASK64 = (1 << 64) - 1

#: Default bound (entries) of the process-wide fingerprint memo cache.  At
#: ~250 bytes per entry (key string + boxed int + LRU bookkeeping) the
#: default tops out around 30 MiB.
DEFAULT_FINGERPRINT_CACHE_SIZE = 1 << 17

#: Bound of each :class:`HashFamily` instance's per-key column memo.
_FAMILY_MEMO_CAP = 1 << 16


def _compute_fingerprint(key: str) -> int:
    """BLAKE2-hash ``key`` to 64 bits (the uncached ground truth)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


_cached_fingerprint = lru_cache(maxsize=DEFAULT_FINGERPRINT_CACHE_SIZE)(
    _compute_fingerprint
)


def stable_fingerprint(key: str) -> int:
    """Return a stable 64-bit fingerprint of ``key``.

    Results are memoized in a bounded process-wide LRU cache so each key is
    BLAKE2-hashed once per process (until evicted).  The cache is purely an
    optimization: hits and misses return identical values.  Resize it with
    :func:`set_fingerprint_cache_size`.
    """
    return _cached_fingerprint(key)


def set_fingerprint_cache_size(size: int) -> None:
    """Rebuild the fingerprint memo cache with a new bound.

    Args:
        size: Maximum number of cached fingerprints; ``0`` disables caching
            entirely (every call recomputes the digest).

    The existing cache contents are discarded — harmless, since cached and
    recomputed fingerprints are identical.
    """
    if size < 0:
        raise ConfigurationError(f"fingerprint cache size must be >= 0, got {size}")
    global _cached_fingerprint
    _cached_fingerprint = lru_cache(maxsize=int(size))(_compute_fingerprint)


def fingerprint_cache_info():
    """Hit/miss/size statistics of the fingerprint memo (``CacheInfo``)."""
    return _cached_fingerprint.cache_info()


def fingerprint_cache_clear() -> None:
    """Drop every memoized fingerprint (keeps the configured bound)."""
    _cached_fingerprint.cache_clear()


class HashFamily:
    """A family of ``depth`` hash functions mapping keys to ``[0, width)``.

    Each function is ``h_i(x) = ((a_i * x + b_i) mod 2^64) >> shift mod width``
    with odd multipliers drawn from a seeded generator, giving deterministic,
    well-spread row indices.

    Per-key column tuples are memoized (bounded) so repeated sketch updates
    and queries for the same key skip the multiply-shift arithmetic, and
    :meth:`row_indices` computes the whole family over a *batch* of
    fingerprints in one vectorized numpy pass.
    """

    __slots__ = (
        "depth",
        "width",
        "_multipliers",
        "_offsets",
        "_params",
        "_mul_arr",
        "_off_arr",
        "_memo",
    )

    def __init__(self, depth: int, width: int, seed: int = 0) -> None:
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.depth = int(depth)
        self.width = int(width)
        rng = np.random.default_rng(seed)
        # dtype=uint64: the 64-bit bounds overflow numpy's default int64.
        self._multipliers = [
            int(rng.integers(1, _MASK64, dtype=np.uint64)) | 1 for _ in range(depth)
        ]
        self._offsets = [int(rng.integers(0, _MASK64, dtype=np.uint64)) for _ in range(depth)]
        self._params = list(zip(self._multipliers, self._offsets))
        self._mul_arr = np.array(self._multipliers, dtype=np.uint64)
        self._off_arr = np.array(self._offsets, dtype=np.uint64)
        self._memo: dict[str, Tuple[int, ...]] = {}

    def indices(self, key: str) -> Tuple[int, ...]:
        """Return the column index of ``key`` in each row (memoized)."""
        columns = self._memo.get(key)
        if columns is None:
            fingerprint = stable_fingerprint(key)
            width = self.width
            columns = tuple(
                (((multiplier * fingerprint + offset) & _MASK64) >> 16) % width
                for multiplier, offset in self._params
            )
            if len(self._memo) >= _FAMILY_MEMO_CAP:
                self._memo.clear()
            self._memo[key] = columns
        return columns

    def row_indices(self, fingerprints: "np.ndarray | List[int]") -> np.ndarray:
        """Vectorized column indices for a batch of fingerprints.

        Args:
            fingerprints: 64-bit key fingerprints (``stable_fingerprint``
                values), any array-like.

        Returns:
            An int64 array of shape ``(depth, len(fingerprints))`` whose
            ``[row, i]`` element equals ``indices(key_i)[row]`` — numpy's
            uint64 arithmetic wraps mod 2^64 exactly like the scalar path.
        """
        fps = np.asarray(fingerprints, dtype=np.uint64)
        mixed = self._mul_arr[:, None] * fps[None, :] + self._off_arr[:, None]
        return ((mixed >> np.uint64(16)) % np.uint64(self.width)).astype(np.int64)
