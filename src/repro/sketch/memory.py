"""Storage accounting helpers for the sketch comparison (Figure 6c)."""

from __future__ import annotations

from repro.sketch.base import EWEstimator


def estimator_memory_bytes(estimator: EWEstimator) -> int:
    """Return the estimator's memory footprint in bytes.

    Thin wrapper around :meth:`EWEstimator.memory_bytes` kept for symmetry
    with :func:`storage_saving`, which experiments call directly.
    """
    return estimator.memory_bytes()


def storage_saving(baseline: EWEstimator, candidate: EWEstimator) -> float:
    """Return how many times smaller ``candidate`` is than ``baseline``.

    Figure 6c reports storage saving as the ratio of the exact tracker's
    memory to the sketch's memory (larger is better).  A candidate that uses
    no memory at all (degenerate) returns ``float('inf')``.
    """
    baseline_bytes = baseline.memory_bytes()
    candidate_bytes = candidate.memory_bytes()
    if candidate_bytes == 0:
        return float("inf")
    return baseline_bytes / candidate_bytes
