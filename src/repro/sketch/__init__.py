"""Sketches for estimating E[W], the expected number of writes between reads.

The adaptive policy (§3.3 of the paper) decides between updating and
invalidating a key by comparing ``E[W] * c_u`` against ``c_i + c_m``.  Exact
per-key tracking needs three counters per key, which grows linearly with the
key population, so the paper proposes approximating the counts with a
Count-min sketch and improving accuracy with a Top-K sketch that keeps exact
counters only for the hottest keys.
"""

from repro.sketch.base import EWEstimator
from repro.sketch.hashing import HashFamily
from repro.sketch.exact import ExactEWTracker
from repro.sketch.countmin import CountMinEWSketch, CountMinSketch
from repro.sketch.topk import TopKEWSketch
from repro.sketch.memory import estimator_memory_bytes

__all__ = [
    "CountMinEWSketch",
    "CountMinSketch",
    "EWEstimator",
    "ExactEWTracker",
    "HashFamily",
    "TopKEWSketch",
    "estimator_memory_bytes",
]
