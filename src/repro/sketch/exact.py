"""Exact per-key E[W] tracking with three counters per key (§3.3).

For every key the tracker keeps:

* ``C1`` — the sum of completed E[W] samples (each sample is the length of a
  run of consecutive writes terminated by a read),
* ``C2`` — the number of samples, and
* ``C3`` — the number of consecutive writes since the last read.

``E[W] = C1 / C2``.  This is the ground truth the sketches approximate; its
storage grows linearly with the number of keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sketch.base import EWEstimator


@dataclass(slots=True)
class _KeyCounters:
    """The three per-key counters described in the paper."""

    sample_sum: int = 0  # C1
    sample_count: int = 0  # C2
    writes_since_read: int = 0  # C3


class ExactEWTracker(EWEstimator):
    """Exact E[W] tracking using three counters per key.

    Args:
        default_estimate: E[W] returned for keys with no completed sample yet.
        count_zero_runs: Whether a read that follows another read contributes
            a zero-length sample.  The paper's counter description only adds a
            sample after at least one write; the default matches that.
    """

    name = "exact"

    #: Approximate per-key storage: three 8-byte counters plus a key
    #: reference (pointer-sized); key bytes themselves are accounted
    #: separately by :func:`repro.sketch.memory.estimator_memory_bytes`.
    BYTES_PER_KEY = 3 * 8 + 8

    def __init__(self, default_estimate: float = 1.0, count_zero_runs: bool = False) -> None:
        self.default_estimate = float(default_estimate)
        self.count_zero_runs = bool(count_zero_runs)
        self._counters: Dict[str, _KeyCounters] = {}

    def _counters_for(self, key: str) -> _KeyCounters:
        counters = self._counters.get(key)
        if counters is None:
            counters = _KeyCounters()
            self._counters[key] = counters
        return counters

    def observe_write(self, key: str) -> None:
        """Record a write: extend the current run of writes (increment C3)."""
        self._counters_for(key).writes_since_read += 1

    def observe_read(self, key: str) -> None:
        """Record a read: complete the current run (fold C3 into C1/C2)."""
        counters = self._counters_for(key)
        if counters.writes_since_read > 0 or self.count_zero_runs:
            counters.sample_sum += counters.writes_since_read
            counters.sample_count += 1
            counters.writes_since_read = 0

    def estimate(self, key: str) -> float:
        """Return ``C1 / C2`` for ``key``, or the default prior if no samples."""
        counters = self._counters.get(key)
        if counters is None or counters.sample_count == 0:
            return self.default_estimate
        return counters.sample_sum / counters.sample_count

    def tracked_keys(self) -> int:
        """Number of keys with at least one observation."""
        return len(self._counters)

    def memory_bytes(self) -> int:
        """Memory of the counter table (keys accounted at 16 bytes each)."""
        key_bytes = sum(len(key) for key in self._counters)
        return len(self._counters) * self.BYTES_PER_KEY + key_bytes

    def reset(self) -> None:
        """Forget all per-key counters."""
        self._counters.clear()
