"""Count-min sketch and the Count-min based E[W] estimator (§3.3).

The Count-min sketch (Cormode & Muthukrishnan, 2005) approximates per-key
counters with a ``depth x width`` array of integers: each key hashes to one
column per row, increments add to every hashed cell, and point queries return
the minimum across rows, which upper-bounds the true count with error
proportional to the total stream length divided by the width.

For E[W] estimation the paper keeps two approximate counters per key (reads
and writes) and estimates ``E[W] ~= writes / reads``.
"""

from __future__ import annotations

import numpy as np

from typing import Sequence

from repro.errors import ConfigurationError
from repro.sketch.base import EWEstimator
from repro.sketch.hashing import HashFamily, stable_fingerprint


class CountMinSketch:
    """A plain Count-min sketch over string keys.

    Args:
        width: Number of counters per row; error scales as ``total/width``.
        depth: Number of rows (independent hash functions); failure
            probability scales as ``exp(-depth)``.
        seed: Seed for the hash family.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError(
                f"width and depth must be >= 1, got width={width}, depth={depth}"
            )
        self.width = int(width)
        self.depth = int(depth)
        self._hashes = HashFamily(depth=depth, width=width, seed=seed)
        self._table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    def add(self, key: str, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        for row, column in enumerate(self._hashes.indices(key)):
            self._table[row, column] += count
        self.total += count

    def add_many(self, keys: Sequence[str], count: int = 1) -> None:
        """Add ``count`` occurrences of every key in ``keys`` in one pass.

        Column indices for the whole batch are computed with one vectorized
        :meth:`~repro.sketch.hashing.HashFamily.row_indices` call and applied
        with ``np.add.at`` (which accumulates duplicate cells correctly), so
        the result is identical to calling :meth:`add` per key.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if not keys:
            return
        columns = self._hashes.row_indices([stable_fingerprint(key) for key in keys])
        rows = np.broadcast_to(np.arange(self.depth)[:, None], columns.shape)
        np.add.at(self._table, (rows, columns), count)
        self.total += count * len(keys)

    def query(self, key: str) -> int:
        """Return the (over-)estimated count of ``key``."""
        return int(
            min(
                self._table[row, column]
                for row, column in enumerate(self._hashes.indices(key))
            )
        )

    def memory_bytes(self) -> int:
        """Memory of the counter table in bytes."""
        return int(self._table.nbytes)

    def halve(self) -> None:
        """Halve every counter (and the total), rounding down.

        Periodic halving turns the sketch into an exponentially-decayed
        frequency estimate, which is what lets an online hot-key detector
        track *current* popularity instead of all-time popularity — a key
        whose traffic evaporates stops looking hot after a few decay rounds.
        The halved ``total`` is approximate (floor division loses at most one
        unit per key per round), which is acceptable for thresholding.
        """
        np.floor_divide(self._table, 2, out=self._table)
        self.total //= 2

    def reset(self) -> None:
        """Zero every counter."""
        self._table.fill(0)
        self.total = 0

    def state(self) -> dict:
        """Serialisable snapshot of the counter table (JSON-safe primitives).

        The hash family is reconstructed from the seed at construction time,
        so the counters and the running total are the whole mutable state.
        """
        return {"table": self._table.tolist(), "total": self.total}

    def load_state(self, data: dict) -> None:
        """Restore a :meth:`state` snapshot in place (same dimensions)."""
        self._table[:] = np.asarray(data["table"], dtype=np.int64)
        self.total = int(data["total"])


class CountMinEWSketch(EWEstimator):
    """E[W] estimator backed by two Count-min sketches (reads and writes).

    Args:
        width: Width of each underlying sketch.
        depth: Depth of each underlying sketch.
        default_estimate: E[W] returned for keys never observed.
        seed: Seed for the hash families (both sketches share hash functions
            so that their collisions line up, which keeps the ratio estimate
            better behaved).
    """

    name = "count-min"

    def __init__(
        self,
        width: int = 256,
        depth: int = 4,
        default_estimate: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.default_estimate = float(default_estimate)
        self._reads = CountMinSketch(width=width, depth=depth, seed=seed)
        self._writes = CountMinSketch(width=width, depth=depth, seed=seed)

    def observe_read(self, key: str) -> None:
        """Record a read of ``key``."""
        self._reads.add(key)

    def observe_write(self, key: str) -> None:
        """Record a write of ``key``."""
        self._writes.add(key)

    def estimate(self, key: str) -> float:
        """Estimate E[W] as approximate writes divided by approximate reads."""
        reads = self._reads.query(key)
        writes = self._writes.query(key)
        if reads == 0 and writes == 0:
            return self.default_estimate
        if reads == 0:
            # All observed requests were writes: every read (if one ever
            # arrives) would be preceded by at least this many writes.
            return float(writes)
        return writes / reads

    def memory_bytes(self) -> int:
        """Memory of both sketch tables in bytes."""
        return self._reads.memory_bytes() + self._writes.memory_bytes()

    def reset(self) -> None:
        """Zero both sketches."""
        self._reads.reset()
        self._writes.reset()
