"""Exporters for recorder payloads: JSONL, CSV, Prometheus text, run dirs.

An observability run directory (``--obs-dir`` / ``python -m repro obs``)
mirrors the ``RUN.json`` convention of ``repro.store``:

* ``OBS_RUN.json`` — the full recorder payload (self-describing);
* ``windows.jsonl`` — one derived fleet-level window row per line;
* ``trace.jsonl`` — one span/event record per line;
* ``metrics.prom`` — Prometheus text exposition of totals and histograms.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any, Dict, List, Mapping

from repro.obs.metrics import Histogram, bucket_upper_bound
from repro.obs.recorder import PAYLOAD_KIND, WINDOW_FIELDS
from repro.obs.windows import window_rows

__all__ = [
    "export_windows_jsonl",
    "export_windows_csv",
    "export_trace_jsonl",
    "export_prometheus",
    "write_run",
    "load_run",
    "summarize",
]

OBS_RUN_FILENAME = "OBS_RUN.json"
_PROM_PREFIX = "repro_"
_PERCENTILES = (0.5, 0.9, 0.99, 0.999)


def derived_window_rows(payload: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Fleet-level window rows (sorted-node sums + derived ratios)."""
    return window_rows(payload.get("windows", {}), WINDOW_FIELDS)


def export_windows_jsonl(payload: Mapping[str, Any]) -> str:
    lines = [json.dumps(row, sort_keys=True) for row in derived_window_rows(payload)]
    return "\n".join(lines) + ("\n" if lines else "")


def export_windows_csv(payload: Mapping[str, Any]) -> str:
    rows = derived_window_rows(payload)
    buffer = io.StringIO()
    header = ["index", "start", "end", *WINDOW_FIELDS, "hit_rate", "miss_cost", "l1_share", "node_load"]
    writer = csv.DictWriter(buffer, fieldnames=header, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        flat = dict(row)
        flat["node_load"] = json.dumps(flat.get("node_load", {}), sort_keys=True)
        writer.writerow(flat)
    return buffer.getvalue()


def export_trace_jsonl(payload: Mapping[str, Any]) -> str:
    lines = [json.dumps(record, sort_keys=True) for record in payload.get("trace", [])]
    return "\n".join(lines) + ("\n" if lines else "")


# Help strings for well-known metric names; anything else gets a per-kind
# fallback so every exposed family still carries HELP metadata.
_METRIC_HELP = {
    "total_reads": "Total read requests observed by the run.",
    "total_writes": "Total write requests observed by the run.",
    "total_hits": "Reads served fresh from cache.",
    "total_stale_misses": "Reads that found a stale entry and refetched.",
    "total_cold_misses": "Reads that missed cache entirely.",
    "total_staleness_violations": "Reads served beyond the staleness bound.",
    "total_messages_dropped": "Coordination messages lost in transit.",
    "read_cost": "Per-read cost distribution (freshness + cold-miss).",
    "wal_sync_seconds": "Durable-store WAL sync latency distribution.",
}
_KIND_HELP = {
    "counter": "Monotonic counter recorded by repro.obs.",
    "gauge": "Gauge recorded by repro.obs.",
    "histogram": "Log-bucketed histogram recorded by repro.obs.",
}


def _prom_name(name: str) -> str:
    return _PROM_PREFIX + "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _prom_help(name: str, kind: str) -> str:
    text = _METRIC_HELP.get(name, _KIND_HELP[kind])
    # Exposition-format escaping for HELP text: backslash and newline.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_value(value: Any) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def export_prometheus(payload: Mapping[str, Any]) -> str:
    """Prometheus text exposition format (counters, gauges, histograms)."""
    metrics = payload.get("metrics", {})
    lines: List[str] = []
    for name, value in metrics.get("counters", {}).items():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} {_prom_help(name, 'counter')}")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in metrics.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} {_prom_help(name, 'gauge')}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, data in metrics.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} {_prom_help(name, 'histogram')}")
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for index in sorted(int(i) for i in data.get("counts", {})):
            cumulative += data["counts"][str(index)]
            bound = _prom_value(bucket_upper_bound(index))
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {data.get("count", 0)}')
        lines.append(f"{prom}_sum {_prom_value(data.get('sum', 0.0))}")
        lines.append(f"{prom}_count {data.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_run(payload: Mapping[str, Any], directory: str) -> Dict[str, str]:
    """Write the run-directory artifact set; returns ``{name: path}``."""
    os.makedirs(directory, exist_ok=True)
    files = {
        OBS_RUN_FILENAME: json.dumps(payload, indent=2, sort_keys=True) + "\n",
        "windows.jsonl": export_windows_jsonl(payload),
        "trace.jsonl": export_trace_jsonl(payload),
        "metrics.prom": export_prometheus(payload),
    }
    written = {}
    for name, text in files.items():
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        written[name] = path
    return written


def load_run(directory: str) -> Dict[str, Any]:
    """Load a payload back from a run directory written by :func:`write_run`."""
    path = os.path.join(directory, OBS_RUN_FILENAME)
    if not os.path.exists(path):
        raise FileNotFoundError(f"no {OBS_RUN_FILENAME} in {directory!r} - not an obs run directory")
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") != PAYLOAD_KIND:
        raise ValueError(f"{path!r} is not a {PAYLOAD_KIND} payload")
    return payload


def summarize(payload: Mapping[str, Any]) -> str:
    """Human-readable run summary (meta, totals, windows, percentiles)."""
    meta = payload.get("meta", {})
    totals = meta.get("totals", {})
    rows = derived_window_rows(payload)
    lines: List[str] = []
    descriptors = [
        f"{key}={meta[key]}"
        for key in ("policy", "workload", "engine", "nodes", "end_time")
        if key in meta
    ]
    lines.append("obs run: " + (" ".join(descriptors) if descriptors else "(no meta)"))
    reads = totals.get("reads", 0)
    hits = totals.get("hits", 0)
    lines.append(
        f"totals: reads={reads} writes={totals.get('writes', 0)} "
        f"hit_rate={hits / reads if reads else 0.0:.4f} "
        f"stale_misses={totals.get('stale_misses', 0)} "
        f"staleness_violations={totals.get('staleness_violations', 0)} "
        f"drops={totals.get('messages_dropped', 0)}"
    )
    if rows:
        rates = [row["hit_rate"] for row in rows]
        peak_stale = max(rows, key=lambda row: row["staleness_violations"])
        lines.append(
            f"windows: {len(rows)} x {payload.get('windows', {}).get('window', 0)}s, "
            f"hit_rate {min(rates):.4f}..{max(rates):.4f}, "
            f"peak staleness_violations={peak_stale['staleness_violations']} "
            f"at [{peak_stale['start']}, {peak_stale['end']})"
        )
    else:
        lines.append("windows: none recorded")
    histograms = payload.get("metrics", {}).get("histograms", {})
    for name, data in histograms.items():
        histogram = Histogram.from_dict(name, data)
        quantiles = " ".join(
            f"p{q * 100:g}".replace(".", "") + f"={histogram.percentile(q):.6g}"
            for q in _PERCENTILES
        )
        lines.append(f"{name}: count={histogram.count} mean={histogram.mean:.6g} {quantiles}")
    spans = sum(1 for record in payload.get("trace", []) if record.get("type") == "span")
    events = sum(1 for record in payload.get("trace", []) if record.get("type") == "event")
    lines.append(
        f"trace: {spans} spans, {events} events, {payload.get('trace_dropped', 0)} dropped"
    )
    return "\n".join(lines)
