"""Post-hoc analysis over recorder payloads: run diffing and anomaly detection.

PR 7 made every run emit an OBS artifact set; this module reads it back.
Everything here is strictly **post-hoc and deterministic**: functions consume
the JSON payloads produced by :meth:`~repro.obs.recorder.ObsRecorder.payload`
(or loaded from an ``OBS_RUN.json``) and never touch a live simulation, so
result rows and OBS payloads are byte-identical whether analysis runs or not.

Two primitives:

* :func:`diff_payloads` aligns two payloads window-by-window and
  node-by-node, orients every metric delta by its badness direction
  (``stale_misses`` up = bad, ``hit_rate`` down = bad), and emits a ranked
  regression report with per-node attribution and lifecycle-phase
  annotation — run-vs-run or run-vs-committed-baseline
  (``OBS_BASELINE.json``, gated by ``scripts/check_obs.py``).
* :func:`detect_anomalies` runs deterministic rolling-median/MAD flagging
  plus a single strongest change-point split over every windowed counter
  series, and annotates each anomaly with the nearest lifecycle event
  (scenario ``fail``/``detect``/``recover``, rebalances, crash-restarts).

No RNG, no wall clock: identical payloads always produce identical reports,
which is what lets ``ExperimentSpec(slo_rules=)`` attach verdicts to sweep
rows byte-identically across any ``--processes`` count.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.recorder import PAYLOAD_KIND, WINDOW_FIELDS
from repro.obs.windows import window_rows

__all__ = [
    "ANOMALY_FIELDS",
    "DIFF_KIND",
    "HIGHER_IS_WORSE",
    "LOWER_IS_WORSE",
    "dense_rows",
    "detect_anomalies",
    "diff_payloads",
    "lifecycle_events",
    "nearest_event",
    "phase_at",
]

DIFF_KIND = "repro-obs-diff"
DIFF_VERSION = 1

#: Fields where an *increase* between runs is a regression.
HIGHER_IS_WORSE = frozenset(
    {
        "stale_misses",
        "cold_misses",
        "staleness_violations",
        "messages_dropped",
        "failed_fetches",
        "freshness_cost",
        "cold_miss_cost",
        "poll_cost",
        "tier_cost",
        "miss_cost",
        "evictions",
        "expirations",
        "l1_evictions",
        "l1_writebacks",
        "l1_served_degraded",
    }
)

#: Fields where a *decrease* between runs is a regression.
LOWER_IS_WORSE = frozenset({"hits", "hit_rate", "l1_hits", "l1_share"})

#: Derived ratio-like fields: deviations are floored in absolute ratio units
#: instead of whole counter units.
_RATIO_FIELDS = frozenset({"hit_rate", "l1_share"})

#: Fleet-row fields the detectors sweep by default (every windowed counter
#: with a badness direction, in stable catalog order).
_DERIVED_FIELDS = ("hit_rate", "miss_cost", "l1_share")
ANOMALY_FIELDS: Tuple[str, ...] = tuple(
    field
    for field in WINDOW_FIELDS + _DERIVED_FIELDS
    if field in HIGHER_IS_WORSE or field in LOWER_IS_WORSE
)

#: Trace-event kinds that mark run lifecycle transitions (used for anomaly
#: and regression annotation; spans and bookkeeping events are skipped).
_LIFECYCLE_KINDS = frozenset(
    {"scenario", "rebalance", "crash-restart", "recovery", "interrupted"}
)


# --------------------------------------------------------------------- #
# Series extraction
# --------------------------------------------------------------------- #

def dense_rows(payload: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Fleet-level window rows densified over the full index range.

    The sampler stores windows sparsely (nothing happened → no row), but the
    detectors need a contiguous series: a silent window is a real observation
    of zero activity.  Missing indices are filled with all-zero rows
    (derived ratios included) so rolling statistics see them.
    """
    rows = window_rows(payload.get("windows", {}), WINDOW_FIELDS)
    if not rows:
        return []
    width = float(payload.get("windows", {}).get("window", 0.0)) or (
        rows[0]["end"] - rows[0]["start"]
    )
    by_index = {row["index"]: row for row in rows}
    dense: List[Dict[str, Any]] = []
    for index in range(min(by_index), max(by_index) + 1):
        row = by_index.get(index)
        if row is None:
            row = {field: 0 for field in WINDOW_FIELDS}
            row.update(
                index=index,
                start=index * width,
                end=(index + 1) * width,
                hit_rate=0.0,
                miss_cost=0,
                l1_share=0.0,
                node_load={},
            )
        dense.append(row)
    return dense


def _series(rows: Sequence[Mapping[str, Any]], field: str) -> List[float]:
    return [float(row.get(field, 0)) for row in rows]


def lifecycle_events(payload: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """The payload's lifecycle events (scenario/rebalance/crash/recovery)."""
    return [
        record
        for record in payload.get("trace", [])
        if record.get("type") == "event" and record.get("kind") in _LIFECYCLE_KINDS
    ]


def nearest_event(
    events: Sequence[Mapping[str, Any]], time: float
) -> Optional[Dict[str, Any]]:
    """The lifecycle event closest in time (ties break toward the earlier one)."""
    best: Optional[Dict[str, Any]] = None
    best_distance = math.inf
    for event in events:
        distance = abs(float(event.get("time", 0.0)) - time)
        if distance < best_distance:
            best, best_distance = dict(event), distance
    return best


def phase_at(events: Sequence[Mapping[str, Any]], time: float) -> str:
    """The run phase at ``time``: the label of the last scenario transition.

    ``"steady"`` before the first scenario event; afterwards the most recent
    scenario label at or before ``time`` (e.g. ``fail``, ``detect``,
    ``recover``), so a window can be attributed to the outage it fell in.
    """
    phase = "steady"
    for event in events:
        if event.get("kind") != "scenario":
            continue
        if float(event.get("time", 0.0)) <= time:
            phase = str(event.get("label", phase))
    return phase


def _annotate(record: Dict[str, Any], events: Sequence[Mapping[str, Any]]) -> None:
    event = nearest_event(events, float(record["start"]))
    record["event"] = (
        {
            "kind": event.get("kind"),
            "label": event.get("label", event.get("action")),
            "time": event.get("time"),
            "node": event.get("node"),
        }
        if event is not None
        else None
    )
    record["phase"] = phase_at(events, float(record["start"]))


# --------------------------------------------------------------------- #
# Run diffing
# --------------------------------------------------------------------- #

def _check_payload(payload: Mapping[str, Any], label: str) -> None:
    if payload.get("kind") != PAYLOAD_KIND:
        raise ValueError(
            f"{label} is not a {PAYLOAD_KIND} payload (kind={payload.get('kind')!r})"
        )


def _worse_delta(field: str, base: float, other: float) -> float:
    """The badness-oriented delta: positive means ``other`` is worse."""
    if field in LOWER_IS_WORSE:
        return base - other
    return other - base


def _node_attribution(
    field: str,
    base_nodes: Mapping[str, Mapping[str, float]],
    other_nodes: Mapping[str, Mapping[str, float]],
) -> Tuple[Optional[str], float]:
    """The node contributing the largest worse-direction delta for a field."""
    worst_node: Optional[str] = None
    worst = 0.0
    for node_id in sorted(set(base_nodes) | set(other_nodes)):
        base_value = float(base_nodes.get(node_id, {}).get(field, 0))
        other_value = float(other_nodes.get(node_id, {}).get(field, 0))
        worse = _worse_delta(field, base_value, other_value)
        if worse > worst:
            worst_node, worst = node_id, worse
    return worst_node, worst


def diff_payloads(
    base: Mapping[str, Any],
    other: Mapping[str, Any],
    *,
    min_delta: float = 1e-9,
    min_relative: float = 0.0,
    top: int = 50,
) -> Dict[str, Any]:
    """Align two OBS payloads and emit a ranked regression report.

    Windows are aligned by index (both series densified over their union),
    every field with a badness direction is diffed per window, and each
    regression is attributed to the node contributing the largest
    worse-direction delta plus the lifecycle phase of the run under test
    (``other``).  A payload diffed against itself reports zero regressions.

    Args:
        base: The reference payload (e.g. a committed baseline or the
            no-scenario run).
        other: The payload under inspection.
        min_delta: Smallest worse-direction delta that counts (absolute,
            in the field's own units).
        min_relative: Smallest worse-direction delta relative to the base
            value (base of 0 compares against 1.0).
        top: Keep at most this many ranked regressions/improvements.

    Returns:
        A JSON-serializable ``repro-obs-diff`` report: oriented ``totals``
        deltas, ranked ``regressions`` and ``improvements`` (score-descending,
        ties broken by field then window), and alignment metadata.

    Raises:
        ValueError: If either payload is not a recorder payload or the
            window widths differ (the series cannot be aligned).
    """
    _check_payload(base, "base")
    _check_payload(other, "other")
    base_width = base.get("windows", {}).get("window")
    other_width = other.get("windows", {}).get("window")
    if base_width != other_width:
        raise ValueError(
            f"cannot align runs with different window widths: "
            f"{base_width} vs {other_width}"
        )

    base_rows = dense_rows(base)
    other_rows = dense_rows(other)
    base_by_index = {row["index"]: row for row in base_rows}
    other_by_index = {row["index"]: row for row in other_rows}
    base_node_rows = {
        int(row["index"]): row.get("nodes", {})
        for row in base.get("windows", {}).get("rows", [])
    }
    other_node_rows = {
        int(row["index"]): row.get("nodes", {})
        for row in other.get("windows", {}).get("rows", [])
    }
    events = lifecycle_events(other)
    width = float(base_width or 0.0)

    indices = sorted(set(base_by_index) | set(other_by_index))
    empty: Dict[str, Any] = {}
    regressions: List[Dict[str, Any]] = []
    improvements: List[Dict[str, Any]] = []
    for index in indices:
        base_row = base_by_index.get(index, empty)
        other_row = other_by_index.get(index, empty)
        start = float(base_row.get("start", other_row.get("start", index * width)))
        end = float(base_row.get("end", other_row.get("end", (index + 1) * width)))
        for field in ANOMALY_FIELDS:
            base_value = float(base_row.get(field, 0))
            other_value = float(other_row.get(field, 0))
            worse = _worse_delta(field, base_value, other_value)
            magnitude = abs(worse)
            if magnitude <= min_delta:
                continue
            relative = magnitude / (abs(base_value) if base_value else 1.0)
            if relative < min_relative:
                continue
            node, node_delta = (None, 0.0)
            if field in WINDOW_FIELDS:
                lookup_base = base_node_rows.get(index, empty)
                lookup_other = other_node_rows.get(index, empty)
                if worse > 0:
                    node, node_delta = _node_attribution(field, lookup_base, lookup_other)
                else:
                    # An improvement's "worst" node is the one that improved most.
                    node, node_delta = _node_attribution(field, lookup_other, lookup_base)
                    node_delta = -node_delta
            record = {
                "field": field,
                "index": index,
                "start": start,
                "end": end,
                "base": base_value,
                "other": other_value,
                "delta": other_value - base_value,
                "severity": worse,
                "relative": relative,
                "score": magnitude * relative,
                "node": node,
                "node_delta": node_delta,
            }
            _annotate(record, events)
            (regressions if worse > 0 else improvements).append(record)

    sort_key = lambda record: (-record["score"], record["field"], record["index"])  # noqa: E731
    regressions.sort(key=sort_key)
    improvements.sort(key=sort_key)

    totals: Dict[str, Dict[str, float]] = {}
    base_totals = base.get("meta", {}).get("totals", {})
    other_totals = other.get("meta", {}).get("totals", {})
    for field in sorted(set(base_totals) | set(other_totals)):
        base_value = float(base_totals.get(field, 0))
        other_value = float(other_totals.get(field, 0))
        if base_value != other_value:
            totals[field] = {
                "base": base_value,
                "other": other_value,
                "delta": other_value - base_value,
            }

    return {
        "kind": DIFF_KIND,
        "version": DIFF_VERSION,
        "window": base_width,
        "windows_compared": len(indices),
        "base": dict(base.get("meta", {})),
        "other": dict(other.get("meta", {})),
        "totals": totals,
        "regressions": regressions[:top],
        "improvements": improvements[:top],
        "regression_count": len(regressions),
        "improvement_count": len(improvements),
    }


# --------------------------------------------------------------------- #
# Anomaly detection
# --------------------------------------------------------------------- #

def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    count = len(ordered)
    if count == 0:
        return 0.0
    middle = count // 2
    if count % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _deviation_floor(field: str, trailing: Sequence[float]) -> float:
    """The smallest deviation scale a field is judged against.

    MAD of a flat trailing window is 0, which would flag any activity at
    all; the floor keeps single-count jitter on quiet counters (and small
    ratio wobble) below the threshold.
    """
    if field in _RATIO_FIELDS:
        return 0.05
    peak = max((abs(value) for value in trailing), default=0.0)
    return max(1.0, 0.05 * peak)


def detect_anomalies(
    payload: Mapping[str, Any],
    *,
    fields: Optional[Sequence[str]] = None,
    trailing: int = 5,
    threshold: float = 3.0,
    min_history: int = 3,
    top: int = 100,
) -> List[Dict[str, Any]]:
    """Flag anomalous windows in every (requested) counter series.

    Two deterministic detectors run per field over the densified fleet-level
    series:

    * **Rolling median**: each window is compared against the median of the
      ``trailing`` preceding windows; deviations beyond ``threshold`` times
      the trailing MAD (floored — see :func:`_deviation_floor`) are flagged
      as a ``spike`` (above) or ``drop`` (below).
    * **Change point**: the split index maximizing the standardized
      mean-shift statistic is flagged as a ``change-point`` when the shift
      exceeds ``threshold`` deviation floors — one per field, catching
      regime changes too gradual for the rolling window.

    Every anomaly is annotated with the nearest lifecycle event (scenario
    ``fail``/``detect``/``recover``, rebalances, crash-restarts) and the run
    phase of its window, then ranked by score (ties: field, then window).

    Args:
        payload: A recorder payload (live or loaded from ``OBS_RUN.json``).
        fields: Fields to sweep (default: every field with a badness
            direction, :data:`ANOMALY_FIELDS`).
        trailing: Rolling-median history length in windows.
        threshold: Deviation multiple that flags a window.
        min_history: Windows of history required before flagging begins.
        top: Keep at most this many ranked anomalies.

    Returns:
        JSON-serializable anomaly records, score-descending.
    """
    if trailing < 1:
        raise ValueError(f"trailing must be >= 1, got {trailing}")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    rows = dense_rows(payload)
    events = lifecycle_events(payload)
    anomalies: List[Dict[str, Any]] = []
    for field in fields if fields is not None else ANOMALY_FIELDS:
        series = _series(rows, field)
        if not any(series):
            continue
        # Rolling-median deviations.
        for position in range(min(min_history, trailing), len(series)):
            window = series[max(0, position - trailing):position]
            if len(window) < min_history:
                continue
            median = _median(window)
            mad = _median([abs(value - median) for value in window])
            scale = max(mad, _deviation_floor(field, window))
            deviation = series[position] - median
            score = abs(deviation) / scale
            if score < threshold:
                continue
            row = rows[position]
            record = {
                "type": "spike" if deviation > 0 else "drop",
                "field": field,
                "index": row["index"],
                "start": row["start"],
                "end": row["end"],
                "value": series[position],
                "expected": median,
                "score": score,
            }
            _annotate(record, events)
            anomalies.append(record)
        # Strongest change point.
        change = _change_point(series, field, threshold)
        if change is not None:
            position, before_mean, after_mean, score = change
            row = rows[position]
            record = {
                "type": "change-point",
                "field": field,
                "index": row["index"],
                "start": row["start"],
                "end": row["end"],
                "value": after_mean,
                "expected": before_mean,
                "score": score,
            }
            _annotate(record, events)
            anomalies.append(record)
    anomalies.sort(key=lambda record: (-record["score"], record["field"], record["index"]))
    return anomalies[:top]


def _change_point(
    series: Sequence[float], field: str, threshold: float
) -> Optional[Tuple[int, float, float, float]]:
    """The strongest mean-shift split of a series, if it clears the threshold.

    Returns ``(index, before_mean, after_mean, score)`` where ``index`` is
    the first window of the new regime; ``None`` when the series is too
    short or no split clears ``threshold``.
    """
    count = len(series)
    if count < 4:
        return None
    total = sum(series)
    best_split, best_stat = 0, 0.0
    prefix = 0.0
    for split in range(1, count):
        prefix += series[split - 1]
        left_mean = prefix / split
        right_mean = (total - prefix) / (count - split)
        stat = abs(left_mean - right_mean) * math.sqrt(split * (count - split) / count)
        if stat > best_stat:
            best_split, best_stat = split, stat
    if best_split == 0:
        return None
    scale = _deviation_floor(field, series)
    score = best_stat / scale
    if score < threshold:
        return None
    left = series[:best_split]
    right = series[best_split:]
    return best_split, sum(left) / len(left), sum(right) / len(right), score
