"""Time-resolved telemetry for the replay stack (``repro.obs``).

End-of-run aggregates (:class:`~repro.sim.results.SimulationResult` /
:class:`~repro.cluster.results.ClusterResult`) answer *how much* but never
*when*: stampede onset, the stale-serve spike of a ``node-failure`` scenario,
or a tier's warming transient are invisible between t=0 and t=end.  This
package adds the observability layer production cache operators reason from:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  log-bucketed percentile histograms with HDR-style **fixed** buckets, so
  merging two histograms (e.g. across shard-parallel workers) is an exact
  integer addition;
* :class:`~repro.obs.recorder.ObsRecorder` — windowed time-series sampling
  of the run (hit rate, miss cost, staleness violations, per-node load, tier
  L1 share, channel drops per window) plus structured tracing: sampled
  per-request spans and discrete events (scenario transitions, rebalances,
  evictions, hot-key switches, snapshots, recovery) in a bounded buffer;
* :mod:`~repro.obs.export` — JSONL / CSV / Prometheus text exporters and the
  on-disk run-directory format behind ``python -m repro obs``;
* :mod:`~repro.obs.analyze` — post-hoc run diffing (window-by-window,
  node-by-node, badness-oriented regression ranking) and deterministic
  anomaly detection (rolling-median + change-point) with lifecycle-event
  annotation, behind ``python -m repro obs diff``;
* :mod:`~repro.obs.slo` — a declarative SLO rules engine (hit-ratio floors,
  staleness-rate ceilings, histogram-quantile bounds, anomaly budgets)
  evaluated post-run with CI-friendly exit codes, behind
  ``python -m repro obs check`` and ``ExperimentSpec(slo_rules=)``;
* :mod:`~repro.obs.report` — self-contained HTML run reports (inline SVG
  sparklines, anomaly/SLO/diff tables) behind ``python -m repro obs report``.

The recorder is strictly **observational**: it reads result counters at
window boundaries and never feeds anything back into the simulation, so
replay results are byte-identical with observability on or off.  Disabled
mode is null-object zero cost — the replay loops bind their plain,
un-instrumented hot-path methods when no recorder is attached.
"""

from repro.obs.analyze import detect_anomalies, diff_payloads
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.recorder import (
    WINDOW_FIELDS,
    ObsConfig,
    ObsRecorder,
    as_recorder,
    merge_payloads,
)
from repro.obs.report import render_report
from repro.obs.slo import canonical_rules, evaluate_slo, load_rules, validate_rules
from repro.obs.trace import TraceBuffer
from repro.obs.windows import WindowSampler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsConfig",
    "ObsRecorder",
    "TraceBuffer",
    "WindowSampler",
    "WINDOW_FIELDS",
    "as_recorder",
    "canonical_rules",
    "detect_anomalies",
    "diff_payloads",
    "evaluate_slo",
    "load_rules",
    "merge_payloads",
    "render_report",
    "validate_rules",
]
