"""Time-resolved telemetry for the replay stack (``repro.obs``).

End-of-run aggregates (:class:`~repro.sim.results.SimulationResult` /
:class:`~repro.cluster.results.ClusterResult`) answer *how much* but never
*when*: stampede onset, the stale-serve spike of a ``node-failure`` scenario,
or a tier's warming transient are invisible between t=0 and t=end.  This
package adds the observability layer production cache operators reason from:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  log-bucketed percentile histograms with HDR-style **fixed** buckets, so
  merging two histograms (e.g. across shard-parallel workers) is an exact
  integer addition;
* :class:`~repro.obs.recorder.ObsRecorder` — windowed time-series sampling
  of the run (hit rate, miss cost, staleness violations, per-node load, tier
  L1 share, channel drops per window) plus structured tracing: sampled
  per-request spans and discrete events (scenario transitions, rebalances,
  evictions, hot-key switches, snapshots, recovery) in a bounded buffer;
* :mod:`~repro.obs.export` — JSONL / CSV / Prometheus text exporters and the
  on-disk run-directory format behind ``python -m repro obs``.

The recorder is strictly **observational**: it reads result counters at
window boundaries and never feeds anything back into the simulation, so
replay results are byte-identical with observability on or off.  Disabled
mode is null-object zero cost — the replay loops bind their plain,
un-instrumented hot-path methods when no recorder is attached.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.recorder import (
    WINDOW_FIELDS,
    ObsConfig,
    ObsRecorder,
    as_recorder,
    merge_payloads,
)
from repro.obs.trace import TraceBuffer
from repro.obs.windows import WindowSampler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsConfig",
    "ObsRecorder",
    "TraceBuffer",
    "WindowSampler",
    "WINDOW_FIELDS",
    "as_recorder",
    "merge_payloads",
]
