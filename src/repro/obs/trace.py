"""Bounded buffer for structured trace records (spans and events).

Records are plain JSON-serializable dicts with a ``type`` of ``"span"`` or
``"event"`` and a ``time`` in simulation seconds.  The buffer is bounded:
once ``max_records`` is reached new records are counted in ``dropped``
instead of growing memory without bound on long replays.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

__all__ = ["TraceBuffer", "merge_trace_records"]


def _sort_key(record: Dict[str, Any]) -> tuple:
    return (
        record.get("time", 0.0),
        record.get("type", ""),
        record.get("kind", record.get("op", "")),
        str(record.get("node", "")),
        str(record.get("key", "")),
    )


class TraceBuffer:
    """Append-only record buffer with a hard size cap and drop accounting."""

    __slots__ = ("max_records", "records", "dropped")

    def __init__(self, max_records: int = 10000) -> None:
        if max_records < 0:
            raise ValueError(f"max_records must be >= 0, got {max_records}")
        self.max_records = max_records
        self.records: List[Dict[str, Any]] = []
        self.dropped = 0

    def append(self, record: Dict[str, Any]) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)


def merge_trace_records(
    base: Iterable[Dict[str, Any]], other: Iterable[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Merge two trace streams into one, ordered by (time, type, kind, ...).

    The sort key is deterministic for any interleaving, so shard-parallel
    workers tracing disjoint nodes merge into the same stream regardless of
    worker count.
    """
    merged = list(base) + list(other)
    merged.sort(key=_sort_key)
    return merged
