"""The :class:`ObsRecorder`: windowed sampling + tracing for replay engines.

The recorder is attached to a set of *hosts* — ``(node_id, result,
cache_stats)`` triples — and observes them by diffing their counters:

* at every window boundary it snapshots each host and attributes the deltas
  since the previous snapshot to the window that just closed
  (:class:`~repro.obs.windows.WindowSampler` keeps them per-node so
  shard-parallel merges stay byte-identical);
* for sampled requests (every ``span_every``-th, deterministic countdown —
  no RNG is ever consulted, so replay results cannot be perturbed) it diffs
  counters across the un-instrumented request handler to classify the
  outcome and emit a span;
* discrete events (scenario transitions, rebalances, snapshots, recovery,
  evictions, hot-key switches) land in a bounded
  :class:`~repro.obs.trace.TraceBuffer`.

Engines keep their plain hot paths when no recorder is attached: the
recorder is only ever consulted from ``_obs_*`` wrapper methods that the
replay loops bind *instead of* the plain ones, never in addition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry, merge_metric_dicts
from repro.obs.trace import TraceBuffer, merge_trace_records
from repro.obs.windows import WindowSampler, merge_window_dicts

__all__ = ["ObsConfig", "ObsRecorder", "WINDOW_FIELDS", "as_recorder", "merge_payloads"]

PAYLOAD_KIND = "repro-obs"
PAYLOAD_VERSION = 1

# Counter fields sampled from each host's result object at window
# boundaries.  Missing fields read as 0, so the same list serves
# SimulationResult (single cache) and NodeResult (cluster) hosts.
_RESULT_FIELDS = (
    "reads",
    "writes",
    "hits",
    "stale_misses",
    "cold_misses",
    "staleness_violations",
    "messages_dropped",
    "polls",
    "invalidates_sent",
    "updates_sent",
    "freshness_cost",
    "cold_miss_cost",
    "poll_cost",
    "tier_cost",
    "l1_hits",
    "l1_evictions",
    "l1_writebacks",
    "l1_served_degraded",
    "hot_decisions",
    "failed_fetches",
    "backend_fetches",
    "coalesced_reads",
    "stale_serves",
    "early_refreshes",
    "hot_pressure",
)
# Fields sampled from each host's Cache.stats (the L2 cache).
_CACHE_FIELDS = ("evictions", "expirations")
WINDOW_FIELDS: Tuple[str, ...] = _RESULT_FIELDS + _CACHE_FIELDS


@dataclass(frozen=True, slots=True)
class ObsConfig:
    """Picklable observability settings (safe to ship to forked workers).

    ``window`` is the sampling window width in simulation seconds;
    ``span_every`` samples every N-th request as a span (0 disables spans);
    ``max_trace_records`` bounds the span/event buffer.  ``enabled=False``
    makes :func:`as_recorder` return ``None`` so engines bind their plain,
    zero-overhead hot paths.
    """

    window: float = 1.0
    span_every: int = 1000
    max_trace_records: int = 10000
    enabled: bool = True

    def __post_init__(self) -> None:
        if not (self.window > 0 and self.window == self.window):
            raise ValueError(f"obs window must be a positive number, got {self.window!r}")
        if self.span_every < 0:
            raise ValueError(f"span_every must be >= 0, got {self.span_every}")
        if self.max_trace_records < 0:
            raise ValueError(f"max_trace_records must be >= 0, got {self.max_trace_records}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "span_every": self.span_every,
            "max_trace_records": self.max_trace_records,
        }


def as_recorder(obs: Any) -> Optional["ObsRecorder"]:
    """Normalize an ``obs=`` argument to a recorder (or ``None`` if disabled)."""
    if obs is None:
        return None
    if isinstance(obs, ObsRecorder):
        return obs
    if isinstance(obs, ObsConfig):
        return ObsRecorder(obs) if obs.enabled else None
    raise TypeError(f"obs must be an ObsConfig, ObsRecorder, or None, got {type(obs).__name__}")


class ObsRecorder:
    """Observes attached hosts; never feeds anything back into the replay."""

    __slots__ = (
        "config",
        "registry",
        "windows",
        "trace",
        "record_global",
        "next_boundary",
        "_window_index",
        "_hosts",
        "_last",
        "_last_latency",
        "_span_countdown",
        "_meta",
        "_extra_totals",
    )

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config or ObsConfig()
        self.registry = MetricsRegistry()
        self.windows = WindowSampler(self.config.window)
        self.trace = TraceBuffer(self.config.max_trace_records)
        self.record_global = True
        self.next_boundary = self.config.window
        self._window_index = 0
        self._hosts: Tuple[Tuple[str, Any, Any], ...] = ()
        self._last: Dict[str, Dict[str, float]] = {}
        self._last_latency: Dict[str, Dict[int, int]] = {}
        # Countdown of 1 samples the very first request, then every N-th.
        self._span_countdown = 1 if self.config.span_every else 0
        self._meta: Dict[str, Any] = {}
        self._extra_totals: Dict[str, float] = {}

    # -- attachment and lifecycle -------------------------------------------

    def attach(
        self,
        hosts: Sequence[Tuple[str, Any, Any]],
        record_global: bool = True,
    ) -> None:
        """Bind the hosts to observe: ``(node_id, result, cache_stats)`` triples.

        ``cache_stats`` may be ``None`` for hosts without a directly owned
        cache.  ``record_global`` marks the recorder responsible for
        fleet-wide events (scenario transitions, run start/end); in
        shard-parallel replay only the shard owning node 0 sets it, so
        merged traces carry each global event once.
        """
        self._hosts = tuple(hosts)
        self.record_global = record_global
        self._last = {node_id: self._snapshot(result, stats) for node_id, result, stats in self._hosts}
        self._last_latency = {
            node_id: dict(getattr(result, "latency_buckets", None) or {})
            for node_id, result, _ in self._hosts
        }

    def run_start(self, time: float = 0.0, **meta: Any) -> None:
        self._meta.update(meta)
        if self.record_global:
            self.event(time, "run-start", **meta)

    def add_totals(self, extras: Mapping[str, Any]) -> None:
        """Fold scenario-owned result fields into the run totals.

        Scenarios that own fleet-level results (the autoscaler's elasticity
        gap, for instance) report them here so SLO rules can gate them via
        ``counter_ceiling`` like any other total.  Repeated calls accumulate.
        """
        for field, value in extras.items():
            if value:
                self._extra_totals[field] = self._extra_totals.get(field, 0) + value

    def finish(self, end_time: float, **meta: Any) -> None:
        """Close the open window, record totals, and emit the run-end event."""
        self._flush_window()
        totals: Dict[str, float] = dict(self._extra_totals)
        for node_id, result, stats in self._hosts:
            for field, value in self._snapshot(result, stats).items():
                if value:
                    totals[field] = totals.get(field, 0) + value
        for field in sorted(totals):
            self.registry.counter(f"total_{field}").value = totals[field]
        for node_id, result, stats in self._hosts:
            buckets = getattr(result, "latency_buckets", None)
            if not buckets:
                continue
            # Fold each host's run-level latency buckets into one exported
            # histogram; exact bucket addition, same as a shard merge.
            total = self.registry.histogram("read_latency")
            for index, count in buckets.items():
                total.counts[index] = total.counts.get(index, 0) + count
            total.count += getattr(result, "latency_count", 0)
            total.sum += getattr(result, "latency_sum", 0.0)
        self.registry.gauge("end_time").set(end_time)
        self._meta.update(meta)
        self._meta["end_time"] = end_time
        self._meta["totals"] = totals
        if self.record_global:
            self.event(end_time, "run-end")

    # -- windowed sampling ---------------------------------------------------

    def _snapshot(self, result: Any, stats: Any) -> Dict[str, float]:
        values = {field: getattr(result, field, 0) for field in _RESULT_FIELDS}
        if stats is not None:
            for field in _CACHE_FIELDS:
                values[field] = getattr(stats, field, 0)
        return values

    def _flush_window(self) -> None:
        """Attribute deltas since the last snapshot to the open window."""
        index = self._window_index
        boundary = (index + 1) * self.config.window
        for node_id, result, stats in self._hosts:
            current = self._snapshot(result, stats)
            last = self._last[node_id]
            deltas = {
                field: current[field] - last.get(field, 0)
                for field in current
                if current[field] != last.get(field, 0)
            }
            latency = self._latency_deltas(node_id, result)
            if latency is not None:
                deltas["read_latency_p50"] = latency.percentile(0.50)
                deltas["read_latency_p99"] = latency.percentile(0.99)
                deltas["read_latency_p999"] = latency.percentile(0.999)
            if not deltas:
                continue
            self.windows.add(index, node_id, deltas)
            evicted = deltas.get("evictions", 0)
            if evicted:
                self.event(boundary, "eviction", node=node_id, count=evicted)
            switched = deltas.get("hot_decisions", 0)
            if switched:
                self.event(boundary, "hot-key-switch", node=node_id, count=switched)
            self._last[node_id] = current

    def _latency_deltas(self, node_id: str, result: Any) -> Optional[Histogram]:
        """This window's read-latency samples as a throwaway histogram.

        ``latency_buckets`` is the host's *live* bucket dict (populated only
        when the in-flight fetch model is on); the diff against the previous
        snapshot isolates the window.  Returns ``None`` — emitting no window
        fields, keeping concurrency-off payloads byte-identical — when the
        host recorded nothing new.
        """
        buckets = getattr(result, "latency_buckets", None)
        if not buckets:
            return None
        last = self._last_latency.get(node_id, {})
        window = Histogram("window_read_latency")
        for index, count in buckets.items():
            delta = count - last.get(index, 0)
            if delta:
                window.counts[index] = delta
                window.count += delta
        if window.count == 0:
            return None
        self._last_latency[node_id] = dict(buckets)
        return window

    def roll(self, now: float) -> None:
        """Close the open window and open the one containing ``now``.

        Engines call this when a request (or vectorized span) starts at or
        past ``next_boundary``; empty windows in between stay sparse.
        """
        self._flush_window()
        self._window_index = int(now // self.config.window)
        self.next_boundary = (self._window_index + 1) * self.config.window

    # -- per-request hooks (enabled mode only) -------------------------------

    def span_due(self) -> bool:
        """Deterministic every-N-th sampling decision (no RNG consulted)."""
        if self._span_countdown == 0:
            return False
        self._span_countdown -= 1
        if self._span_countdown == 0:
            self._span_countdown = self.config.span_every
            return True
        return False

    def _cost_now(self) -> float:
        total = 0.0
        for _, result, _ in self._hosts:
            total += getattr(result, "freshness_cost", 0) + getattr(result, "cold_miss_cost", 0)
        return total

    def _span_snapshot(self) -> Optional[List[Tuple[str, float, Dict[str, float]]]]:
        """Pre-request snapshot for span diffing (None when not sampled)."""
        if not self.span_due():
            return None
        return [
            (node_id, getattr(result, "reads", 0) + getattr(result, "writes", 0),
             self._snapshot(result, stats))
            for node_id, result, stats in self._hosts
        ]

    def read_begin(self) -> Tuple[float, Optional[List[Tuple[str, float, Dict[str, float]]]]]:
        return self._cost_now(), self._span_snapshot()

    def read_end(
        self,
        time: float,
        key: Any,
        token: Tuple[float, Optional[List[Tuple[str, float, Dict[str, float]]]]],
    ) -> None:
        cost_before, span = token
        self.registry.histogram("read_cost").observe(self._cost_now() - cost_before)
        if span is not None:
            self.record_read_span(time, key, span)

    def write_begin(self) -> Optional[List[Tuple[str, float, Dict[str, float]]]]:
        return self._span_snapshot()

    def write_end(
        self,
        time: float,
        key: Any,
        span: Optional[List[Tuple[str, float, Dict[str, float]]]],
    ) -> None:
        if span is not None:
            self.record_write_span(time, key, span)

    def record_read_span(
        self, time: float, key: Any, before: List[Tuple[str, float, Dict[str, float]]]
    ) -> None:
        node, deltas = self._span_deltas(before)
        if deltas.get("l1_hits"):
            outcome, phases = "l1_hit", ["route", "l1_lookup"]
        elif deltas.get("hits"):
            outcome, phases = "hit", ["route", "tier_lookup"]
        elif deltas.get("stale_misses"):
            outcome, phases = "stale_miss", ["route", "tier_lookup", "backend_fetch"]
        elif deltas.get("cold_misses"):
            outcome, phases = "cold_miss", ["route", "tier_lookup", "backend_fetch"]
        elif deltas.get("failed_fetches"):
            outcome, phases = "unreachable", ["route", "tier_lookup"]
        else:
            outcome, phases = "other", ["route"]
        cost = deltas.get("freshness_cost", 0) + deltas.get("cold_miss_cost", 0)
        self.trace.append(
            {
                "type": "span",
                "time": time,
                "op": "read",
                "key": key,
                "node": node,
                "outcome": outcome,
                "cost": cost,
                "stale": bool(deltas.get("staleness_violations")),
                "phases": phases,
            }
        )

    def record_write_span(
        self, time: float, key: Any, before: List[Tuple[str, float, Dict[str, float]]]
    ) -> None:
        node, deltas = self._span_deltas(before)
        sent = deltas.get("invalidates_sent", 0) + deltas.get("updates_sent", 0)
        # Fanout is buffered by the owning node's policy and flushed later;
        # the flushed messages show up in the window counters instead.
        phases = ["route", "backend_write", "fanout" if sent else "buffer_fanout"]
        self.trace.append(
            {
                "type": "span",
                "time": time,
                "op": "write",
                "key": key,
                "node": node,
                "outcome": "applied",
                "messages": sent,
                "buffered": not sent,
                "phases": phases,
            }
        )

    def _span_deltas(
        self, before: List[Tuple[str, float, Dict[str, float]]]
    ) -> Tuple[str, Dict[str, float]]:
        """Locate the host that served the request and diff its counters."""
        serving = None
        combined: Dict[str, float] = {}
        for (node_id, requests, snapshot), (_, result, stats) in zip(before, self._hosts):
            now_requests = getattr(result, "reads", 0) + getattr(result, "writes", 0)
            if now_requests == requests:
                continue
            current = self._snapshot(result, stats)
            if serving is None:
                serving = node_id
            for field, value in current.items():
                delta = value - snapshot.get(field, 0)
                if delta:
                    combined[field] = combined.get(field, 0) + delta
        return serving or "?", combined

    # -- events and store timings -------------------------------------------

    def event(self, time: float, kind: str, **fields: Any) -> None:
        record: Dict[str, Any] = {"type": "event", "time": time, "kind": kind}
        record.update(fields)
        self.trace.append(record)
        self.registry.counter(f"events_{kind}").inc()

    def observe_store(self, metric: str, seconds: float) -> None:
        """Fold a wall-clock store timing (WAL sync, snapshot) into a histogram."""
        self.registry.histogram(metric).observe(seconds)

    # -- payload -------------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The JSON-serializable record of everything observed."""
        return {
            "kind": PAYLOAD_KIND,
            "version": PAYLOAD_VERSION,
            "config": self.config.as_dict(),
            "meta": dict(self._meta),
            "metrics": self.registry.as_dict(),
            "windows": self.windows.as_dict(),
            "trace": list(self.trace.records),
            "trace_dropped": self.trace.dropped,
        }


def merge_payloads(base: Mapping[str, Any], other: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge two recorder payloads from shards observing disjoint nodes.

    Windows union (they stay per-node until export), histograms bucket-add,
    counters add, traces interleave on a deterministic sort key.  ``meta``
    comes from ``base`` (the globally-recording shard) with totals re-summed.
    """
    for field in ("kind", "version", "config"):
        if base.get(field) != other.get(field):
            raise ValueError(
                f"cannot merge obs payloads with mismatched {field}: "
                f"{base.get(field)!r} vs {other.get(field)!r}"
            )
    meta = dict(base.get("meta", {}))
    totals = dict(meta.get("totals", {}))
    for field, value in other.get("meta", {}).get("totals", {}).items():
        totals[field] = totals.get(field, 0) + value
    meta["totals"] = totals
    return {
        "kind": base.get("kind", PAYLOAD_KIND),
        "version": base.get("version", PAYLOAD_VERSION),
        "config": dict(base.get("config", {})),
        "meta": meta,
        "metrics": merge_metric_dicts(base.get("metrics"), other.get("metrics")),
        "windows": merge_window_dicts(base.get("windows", {}), other.get("windows", {})),
        "trace": merge_trace_records(base.get("trace", []), other.get("trace", [])),
        "trace_dropped": base.get("trace_dropped", 0) + other.get("trace_dropped", 0),
    }
