"""Self-contained HTML run reports: sparklines, anomalies, SLO verdicts.

:func:`render_report` turns a recorder payload (plus optional analysis
artifacts) into a single HTML string with no external assets — inline CSS
and inline SVG sparklines — so the file can be attached to a CI run or
mailed around and still render.  Rendering is read-only and deterministic:
the same inputs always produce the same bytes.
"""

from __future__ import annotations

import html
import json
from typing import Any, Iterable, List, Mapping, Optional, Sequence

from repro.obs.analyze import dense_rows, lifecycle_events

__all__ = ["render_report"]

_SPARK_FIELDS = (
    ("hit_rate", "fleet hit ratio"),
    ("stale_misses", "stale misses"),
    ("staleness_violations", "staleness violations"),
    ("miss_cost", "miss cost"),
)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 2rem;
       color: #1b1f24; max-width: 70rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; font-size: 0.85rem; }
th, td { border: 1px solid #d0d7de; padding: 0.25rem 0.6rem; text-align: left; }
th { background: #f6f8fa; }
.ok { color: #1a7f37; font-weight: 600; } .bad { color: #cf222e; font-weight: 600; }
.spark { vertical-align: middle; }
.meta { color: #57606a; font-size: 0.85rem; }
code { background: #f6f8fa; padding: 0.1rem 0.3rem; border-radius: 3px; }
"""


def _sparkline(
    values: Sequence[float], *, width: int = 240, height: int = 36, color: str = "#0969da"
) -> str:
    """An inline SVG polyline sparkline for a window series."""
    if not values:
        return "<span class='meta'>no windows</span>"
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    step = width / max(len(values) - 1, 1)
    points = " ".join(
        f"{index * step:.1f},{height - 3 - (value - low) / span * (height - 6):.1f}"
        for index, value in enumerate(values)
    )
    return (
        f"<svg class='spark' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}' role='img'>"
        f"<polyline fill='none' stroke='{color}' stroke-width='1.5' "
        f"points='{points}'/></svg>"
    )


def _fmt(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:g}"
    return html.escape(str(value))


def _event_cell(record: Mapping[str, Any]) -> str:
    event = record.get("event")
    if not event:
        return "—"
    label = event.get("label") or ""
    return html.escape(f"{event.get('kind')}:{label}@t={event.get('time'):g}")


def _rows_html(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    head = "".join(f"<th>{html.escape(column)}</th>" for column in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>" for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def render_report(
    payload: Mapping[str, Any],
    *,
    anomalies: Optional[Sequence[Mapping[str, Any]]] = None,
    slo: Optional[Mapping[str, Any]] = None,
    diff: Optional[Mapping[str, Any]] = None,
    title: str = "repro obs report",
) -> str:
    """Render a recorder payload (plus optional analysis) to HTML.

    Args:
        payload: A recorder payload (live or loaded from ``OBS_RUN.json``).
        anomalies: Output of :func:`~repro.obs.analyze.detect_anomalies`.
        slo: Output of :func:`~repro.obs.slo.evaluate_slo`.
        diff: Output of :func:`~repro.obs.analyze.diff_payloads`.
        title: Page title.

    Returns:
        A self-contained HTML document string (inline CSS, inline SVG
        sparklines, no external assets).
    """
    meta = payload.get("meta", {})
    rows = dense_rows(payload)
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html lang='en'><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<p class='meta'>"
        + html.escape(
            f"policy={meta.get('policy')} workload={meta.get('workload')} "
            f"engine={meta.get('engine')} nodes={meta.get('nodes')} "
            f"end_time={meta.get('end_time')} windows={len(rows)}"
        )
        + "</p>",
    ]

    # Fleet sparklines.
    fleet_rows = []
    for field, label in _SPARK_FIELDS:
        series = [float(row.get(field, 0)) for row in rows]
        fleet_rows.append(
            (
                html.escape(label),
                _fmt(series[-1] if series else None),
                _fmt(max(series) if series else None),
                _sparkline(series),
            )
        )
    parts.append("<h2>Fleet series</h2>")
    parts.append(_rows_html(("series", "last", "max", "trend"), fleet_rows))

    # Per-node load sparklines.
    node_ids = sorted(
        {node_id for row in rows for node_id in row.get("node_load", {})}
    )
    if node_ids:
        node_rows = []
        for node_id in node_ids:
            series = [float(row.get("node_load", {}).get(node_id, 0)) for row in rows]
            node_rows.append(
                (
                    html.escape(node_id),
                    _fmt(sum(series)),
                    _sparkline(series, color="#8250df"),
                )
            )
        parts.append("<h2>Per-node load</h2>")
        parts.append(_rows_html(("node", "total ops", "trend"), node_rows))

    # Lifecycle events.
    events = lifecycle_events(payload)
    if events:
        parts.append("<h2>Lifecycle events</h2>")
        parts.append(
            _rows_html(
                ("time", "kind", "label", "node"),
                (
                    (
                        _fmt(event.get("time")),
                        _fmt(event.get("kind")),
                        _fmt(event.get("label") or event.get("action")),
                        _fmt(event.get("node")),
                    )
                    for event in events
                ),
            )
        )

    # Anomalies.
    parts.append("<h2>Anomalies</h2>")
    if anomalies:
        parts.append(
            _rows_html(
                ("type", "field", "window", "value", "expected", "score", "phase", "nearest event"),
                (
                    (
                        _fmt(record["type"]),
                        _fmt(record["field"]),
                        f"t=[{record['start']:g}, {record['end']:g})",
                        _fmt(record["value"]),
                        _fmt(record["expected"]),
                        f"{record['score']:.1f}",
                        _fmt(record.get("phase")),
                        _event_cell(record),
                    )
                    for record in anomalies
                ),
            )
        )
    else:
        parts.append("<p class='meta'>none detected (or detection not run)</p>")

    # SLO verdicts.
    if slo is not None:
        passed = bool(slo.get("passed"))
        verdict = "PASS" if passed else "FAIL"
        css = "ok" if passed else "bad"
        parts.append(f"<h2>SLO verdicts — <span class='{css}'>{verdict}</span></h2>")
        parts.append(
            _rows_html(
                ("rule", "type", "ok", "observed", "threshold", "detail"),
                (
                    (
                        _fmt(row["name"]),
                        _fmt(row["type"]),
                        "<span class='ok'>pass</span>"
                        if row["ok"]
                        else "<span class='bad'>FAIL</span>",
                        _fmt(row["observed"]),
                        _fmt(row["threshold"]),
                        _fmt(row["detail"]),
                    )
                    for row in slo.get("verdicts", [])
                ),
            )
        )

    # Diff regressions.
    if diff is not None:
        count = diff.get("regression_count", 0)
        css = "ok" if not count else "bad"
        parts.append(
            f"<h2>Diff vs baseline — <span class='{css}'>"
            f"{count} regression{'s' if count != 1 else ''}</span></h2>"
        )
        regressions = diff.get("regressions", [])
        if regressions:
            parts.append(
                _rows_html(
                    ("field", "window", "base", "run", "severity", "node", "phase", "nearest event"),
                    (
                        (
                            _fmt(record["field"]),
                            f"t=[{record['start']:g}, {record['end']:g})",
                            _fmt(record["base"]),
                            _fmt(record["other"]),
                            _fmt(record["severity"]),
                            _fmt(record.get("node")),
                            _fmt(record.get("phase")),
                            _event_cell(record),
                        )
                        for record in regressions
                    ),
                )
            )
        totals = diff.get("totals", {})
        if totals:
            parts.append("<h3>Totals deltas</h3>")
            parts.append(
                _rows_html(
                    ("field", "base", "run", "delta"),
                    (
                        (
                            _fmt(field),
                            _fmt(entry["base"]),
                            _fmt(entry["other"]),
                            _fmt(entry["delta"]),
                        )
                        for field, entry in totals.items()
                    ),
                )
            )

    # Totals footer (raw, for grepping).
    parts.append("<h2>Run totals</h2>")
    totals = meta.get("totals", {})
    parts.append(
        _rows_html(
            ("field", "value"),
            ((_fmt(field), _fmt(totals[field])) for field in sorted(totals)),
        )
    )
    parts.append(
        "<p class='meta'>generated by <code>python -m repro obs report</code>; "
        "config: " + html.escape(json.dumps(payload.get("config", {}), sort_keys=True))
        + "</p>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)
