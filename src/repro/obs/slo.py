"""Declarative SLO rules evaluated post-run against recorder payloads.

Rules live in a JSON file (or inline list) and are checked against a single
OBS payload after the run finishes — never during it, so enabling SLO
evaluation cannot perturb results.  Evaluation is deterministic: the same
payload and rules always produce the same verdict object, which is what lets
:class:`~repro.experiments.spec.ExperimentSpec` attach verdicts to sweep
rows byte-identically across any ``--processes`` count.

Rule types (each a JSON object with a ``type`` key):

``hit_ratio_floor``
    ``{"type": "hit_ratio_floor", "min": 0.5, "scope": "total"|"window",
    "warmup": 2}`` — total hit ratio (or every window's, after skipping
    ``warmup`` windows) must be at least ``min``.
``staleness_rate_ceiling``
    ``{"type": "staleness_rate_ceiling", "max": 0.01}`` — total staleness
    violations per read must not exceed ``max``.
``counter_ceiling``
    ``{"type": "counter_ceiling", "field": "messages_dropped", "max": 0}``
    — a totals field must not exceed ``max``.
``histogram_quantile_ceiling``
    ``{"type": "histogram_quantile_ceiling", "metric": "wal_sync_seconds",
    "quantile": 0.99, "max": 0.05, "allow_missing": false}`` — a histogram
    percentile must not exceed ``max``; a missing histogram is itself a
    violation unless ``allow_missing``.
``latency_quantile_ceiling``
    ``{"type": "latency_quantile_ceiling", "quantile": 0.99, "max": 2.0,
    "allow_missing": true}`` — a percentile of the per-read latency
    histogram (``read_latency``, exported when the in-flight fetch model is
    on) must not exceed ``max`` simulated seconds.  Runs without the
    concurrency model export no latency histogram, so gate files shared
    across modes should set ``allow_missing``.
``max_anomalies``
    ``{"type": "max_anomalies", "max": 0, "fields": [...], "types": [...],
    "threshold": 3.0}`` — the anomaly detector must flag at most ``max``
    anomalies (optionally filtered by field/type).

Every rule accepts an optional ``name`` (defaults to a readable slug).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.analyze import detect_anomalies
from repro.obs.metrics import Histogram
from repro.obs.recorder import PAYLOAD_KIND
from repro.obs.windows import window_rows

__all__ = [
    "RULES_KIND",
    "SLO_KIND",
    "canonical_rules",
    "evaluate_slo",
    "load_rules",
    "validate_rules",
]

RULES_KIND = "repro-obs-slo-rules"
SLO_KIND = "repro-obs-slo"
SLO_VERSION = 1

_RULE_TYPES = (
    "hit_ratio_floor",
    "staleness_rate_ceiling",
    "counter_ceiling",
    "histogram_quantile_ceiling",
    "latency_quantile_ceiling",
    "max_anomalies",
)

#: The histogram a ``latency_quantile_ceiling`` rule reads — exported by the
#: recorder when the in-flight fetch model records per-read latency.
LATENCY_METRIC = "read_latency"


def _require_number(rule: Mapping[str, Any], key: str, rule_name: str) -> float:
    value = rule.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"SLO rule {rule_name!r}: {key!r} must be a number, got {value!r}")
    return float(value)


def validate_rules(rules: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Normalize and validate a rules list.

    Fills in default ``name`` slugs, checks every rule has a known ``type``
    and the parameters that type requires, and returns plain-dict copies in
    input order.

    Raises:
        ValueError: On an unknown rule type, a missing/mistyped parameter,
            or a duplicate rule name.
    """
    if isinstance(rules, (str, bytes, Mapping)):
        raise ValueError("rules must be a sequence of rule objects")
    normalized: List[Dict[str, Any]] = []
    seen_names = set()
    for position, rule in enumerate(rules):
        if not isinstance(rule, Mapping):
            raise ValueError(f"SLO rule #{position} must be an object, got {rule!r}")
        rule_type = rule.get("type")
        if rule_type not in _RULE_TYPES:
            raise ValueError(
                f"SLO rule #{position}: unknown type {rule_type!r} "
                f"(expected one of {', '.join(_RULE_TYPES)})"
            )
        out = {str(key): rule[key] for key in rule}
        name = out.get("name")
        if name is None:
            if rule_type == "counter_ceiling":
                name = f"{rule_type}:{out.get('field')}"
            elif rule_type == "histogram_quantile_ceiling":
                name = f"{rule_type}:{out.get('metric')}:p{out.get('quantile')}"
            elif rule_type == "latency_quantile_ceiling":
                name = f"{rule_type}:p{out.get('quantile')}"
            else:
                name = rule_type
            out["name"] = name
        if name in seen_names:
            raise ValueError(f"duplicate SLO rule name {name!r}")
        seen_names.add(name)

        if rule_type == "hit_ratio_floor":
            minimum = _require_number(out, "min", name)
            if not 0.0 <= minimum <= 1.0:
                raise ValueError(f"SLO rule {name!r}: min must be in [0, 1], got {minimum}")
            scope = out.setdefault("scope", "total")
            if scope not in ("total", "window"):
                raise ValueError(
                    f"SLO rule {name!r}: scope must be 'total' or 'window', got {scope!r}"
                )
            warmup = out.setdefault("warmup", 0)
            if not isinstance(warmup, int) or warmup < 0:
                raise ValueError(
                    f"SLO rule {name!r}: warmup must be a non-negative int, got {warmup!r}"
                )
        elif rule_type == "staleness_rate_ceiling":
            maximum = _require_number(out, "max", name)
            if maximum < 0:
                raise ValueError(f"SLO rule {name!r}: max must be >= 0, got {maximum}")
        elif rule_type == "counter_ceiling":
            field = out.get("field")
            if not isinstance(field, str) or not field:
                raise ValueError(f"SLO rule {name!r}: 'field' must be a non-empty string")
            _require_number(out, "max", name)
        elif rule_type == "histogram_quantile_ceiling":
            metric = out.get("metric")
            if not isinstance(metric, str) or not metric:
                raise ValueError(f"SLO rule {name!r}: 'metric' must be a non-empty string")
            quantile = _require_number(out, "quantile", name)
            if not 0.0 <= quantile <= 1.0:
                raise ValueError(
                    f"SLO rule {name!r}: quantile must be in [0, 1], got {quantile}"
                )
            _require_number(out, "max", name)
            out.setdefault("allow_missing", False)
        elif rule_type == "latency_quantile_ceiling":
            quantile = _require_number(out, "quantile", name)
            if not 0.0 <= quantile <= 1.0:
                raise ValueError(
                    f"SLO rule {name!r}: quantile must be in [0, 1], got {quantile}"
                )
            _require_number(out, "max", name)
            out.setdefault("allow_missing", False)
        elif rule_type == "max_anomalies":
            maximum = _require_number(out, "max", name)
            if maximum < 0:
                raise ValueError(f"SLO rule {name!r}: max must be >= 0, got {maximum}")
            for key in ("fields", "types"):
                value = out.get(key)
                if value is not None and (
                    isinstance(value, (str, bytes))
                    or not all(isinstance(item, str) for item in value)
                ):
                    raise ValueError(
                        f"SLO rule {name!r}: {key!r} must be a list of strings"
                    )
        normalized.append(out)
    return normalized


def load_rules(path: str) -> List[Dict[str, Any]]:
    """Load and validate an SLO rules file.

    Accepts either a bare JSON list of rules or a wrapper object
    ``{"kind": "repro-obs-slo-rules", "rules": [...]}``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, Mapping):
        if data.get("kind") not in (None, RULES_KIND):
            raise ValueError(
                f"{path}: expected kind {RULES_KIND!r}, got {data.get('kind')!r}"
            )
        data = data.get("rules", [])
    return validate_rules(data)


def canonical_rules(rules: Sequence[Mapping[str, Any]]) -> str:
    """A canonical JSON encoding of a (validated) rules list.

    Sorted keys, no whitespace — a stable hashable string suitable for a
    frozen :class:`~repro.experiments.spec.RunCell` field.
    """
    return json.dumps(validate_rules(rules), sort_keys=True, separators=(",", ":"))


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def evaluate_slo(
    payload: Mapping[str, Any],
    rules: Sequence[Mapping[str, Any]],
    *,
    anomalies: Optional[Sequence[Mapping[str, Any]]] = None,
) -> Dict[str, Any]:
    """Evaluate SLO rules against a recorder payload.

    Strictly post-hoc and deterministic: the payload is read, never mutated.
    Anomalies are computed lazily — only when a ``max_anomalies`` rule is
    present and ``anomalies`` was not supplied.

    Args:
        payload: A recorder payload (live or loaded from ``OBS_RUN.json``).
        rules: Rules as accepted by :func:`validate_rules`.
        anomalies: Pre-computed :func:`~repro.obs.analyze.detect_anomalies`
            output, to avoid recomputing when the caller already has it.

    Returns:
        A JSON-serializable verdict object: ``{"kind": "repro-obs-slo",
        "version": 1, "passed": bool, "violations": [names...],
        "verdicts": [{name, type, ok, observed, threshold, detail}, ...]}``.
    """
    if payload.get("kind") != PAYLOAD_KIND:
        raise ValueError(
            f"payload is not a {PAYLOAD_KIND} payload (kind={payload.get('kind')!r})"
        )
    normalized = validate_rules(rules)
    totals = payload.get("meta", {}).get("totals", {})
    verdicts: List[Dict[str, Any]] = []

    for rule in normalized:
        rule_type = rule["type"]
        name = rule["name"]
        ok = True
        observed: Any = None
        threshold: Any = None
        detail = ""

        if rule_type == "hit_ratio_floor":
            threshold = float(rule["min"])
            if rule["scope"] == "total":
                reads = float(totals.get("reads", 0))
                observed = _ratio(float(totals.get("hits", 0)), reads)
                ok = observed >= threshold or reads == 0
                detail = f"total hit ratio {observed:.4f} (floor {threshold})"
            else:
                rows = window_rows(payload.get("windows", {}), ("reads", "hits"))
                worst: Optional[Mapping[str, Any]] = None
                observed = None
                for row in rows[int(rule["warmup"]):]:
                    if not row.get("reads"):
                        continue
                    rate = float(row["hit_rate"])
                    if observed is None or rate < observed:
                        observed, worst = rate, row
                if observed is None:
                    detail = "no windows with reads after warmup"
                else:
                    ok = observed >= threshold
                    detail = (
                        f"worst window hit ratio {observed:.4f} at "
                        f"t=[{worst['start']:g}, {worst['end']:g}) (floor {threshold})"
                    )
        elif rule_type == "staleness_rate_ceiling":
            threshold = float(rule["max"])
            reads = float(totals.get("reads", 0))
            observed = _ratio(float(totals.get("staleness_violations", 0)), reads)
            ok = observed <= threshold
            detail = f"staleness violations per read {observed:.6f} (ceiling {threshold})"
        elif rule_type == "counter_ceiling":
            threshold = float(rule["max"])
            field = rule["field"]
            observed = float(totals.get(field, 0))
            ok = observed <= threshold
            detail = f"totals[{field}] = {observed:g} (ceiling {threshold:g})"
        elif rule_type == "histogram_quantile_ceiling":
            threshold = float(rule["max"])
            metric = rule["metric"]
            data = payload.get("metrics", {}).get("histograms", {}).get(metric)
            if data is None:
                observed = None
                ok = bool(rule["allow_missing"])
                detail = f"histogram {metric!r} not present in payload"
            else:
                quantile = float(rule["quantile"])
                observed = Histogram.from_dict(metric, data).percentile(quantile)
                ok = observed <= threshold
                detail = f"{metric} p{quantile * 100:g} = {observed:g} (ceiling {threshold:g})"
        elif rule_type == "latency_quantile_ceiling":
            threshold = float(rule["max"])
            data = payload.get("metrics", {}).get("histograms", {}).get(LATENCY_METRIC)
            if data is None:
                observed = None
                ok = bool(rule["allow_missing"])
                detail = (
                    f"histogram {LATENCY_METRIC!r} not present in payload "
                    "(run without the in-flight fetch model?)"
                )
            else:
                quantile = float(rule["quantile"])
                observed = Histogram.from_dict(LATENCY_METRIC, data).percentile(quantile)
                ok = observed <= threshold
                detail = (
                    f"read latency p{quantile * 100:g} = {observed:g}s "
                    f"(ceiling {threshold:g}s)"
                )
        elif rule_type == "max_anomalies":
            threshold = float(rule["max"])
            if anomalies is None:
                anomalies = detect_anomalies(
                    payload, threshold=float(rule.get("threshold", 3.0))
                )
            matched = [
                record
                for record in anomalies
                if (rule.get("fields") is None or record["field"] in rule["fields"])
                and (rule.get("types") is None or record["type"] in rule["types"])
            ]
            observed = len(matched)
            ok = observed <= threshold
            worst = matched[0] if matched else None
            detail = f"{observed} anomalies (budget {threshold:g})" + (
                f"; worst: {worst['type']} in {worst['field']} at "
                f"t=[{worst['start']:g}, {worst['end']:g})"
                if worst
                else ""
            )

        verdicts.append(
            {
                "name": name,
                "type": rule_type,
                "ok": bool(ok),
                "observed": observed,
                "threshold": threshold,
                "detail": detail,
            }
        )

    violations = [verdict["name"] for verdict in verdicts if not verdict["ok"]]
    return {
        "kind": SLO_KIND,
        "version": SLO_VERSION,
        "passed": not violations,
        "violations": violations,
        "verdicts": verdicts,
    }
