"""Counters, gauges, and log-bucketed percentile histograms.

The histogram uses an HDR-style *fixed* bucket layout: one bucket for exact
zeros, ``SUB_BUCKETS`` linear sub-buckets per power-of-two octave across a
fixed exponent range, and one overflow bucket.  Because the layout never
depends on the observed data, merging two histograms — e.g. from
shard-parallel workers — is an exact integer addition of bucket counts, and
percentile estimates are identical whether samples were recorded in one
process or merged from many.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_metric_dicts"]

# Fixed bucket geometry.  Octaves cover 2**-20 (~1e-6, sub-microsecond
# timings) through 2**30 (~1e9, large cost totals); values outside land in
# the zero/overflow buckets.  4 sub-buckets per octave bounds the relative
# quantile error at ~12.5%.
MIN_EXPONENT = -20
MAX_EXPONENT = 30
SUB_BUCKETS = 4

_ZERO_BUCKET = 0
_FIRST_BUCKET = 1
_NUM_OCTAVES = MAX_EXPONENT - MIN_EXPONENT
_OVERFLOW_BUCKET = _FIRST_BUCKET + _NUM_OCTAVES * SUB_BUCKETS
NUM_BUCKETS = _OVERFLOW_BUCKET + 1


def bucket_index(value: float) -> int:
    """Map a non-negative sample to its fixed bucket index."""
    if value <= 0.0:
        return _ZERO_BUCKET
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent, mantissa in [0.5, 1)
    octave = exponent - 1 - MIN_EXPONENT
    if octave < 0:
        return _ZERO_BUCKET
    if octave >= _NUM_OCTAVES:
        return _OVERFLOW_BUCKET
    sub = int((mantissa * 2.0 - 1.0) * SUB_BUCKETS)
    if sub >= SUB_BUCKETS:  # mantissa rounding at the octave edge
        sub = SUB_BUCKETS - 1
    return _FIRST_BUCKET + octave * SUB_BUCKETS + sub


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of a bucket (``inf`` for the overflow bucket)."""
    if index <= _ZERO_BUCKET:
        return 0.0
    if index >= _OVERFLOW_BUCKET:
        return math.inf
    offset = index - _FIRST_BUCKET
    octave, sub = divmod(offset, SUB_BUCKETS)
    low = math.ldexp(1.0, MIN_EXPONENT + octave)  # octave covers [low, 2*low)
    return low * (1.0 + (sub + 1) / SUB_BUCKETS)


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def as_dict(self) -> float:
        return self.value


class Gauge:
    """A named value that can be set arbitrarily (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> float:
        return self.value


class Histogram:
    """Log-bucketed histogram with exact merges and percentile estimates.

    Bucket counts are stored sparsely (``{index: count}``); ``sum`` and
    ``count`` are tracked alongside so Prometheus ``_sum``/``_count`` series
    and mean values are exact even though individual samples are quantized.
    """

    __slots__ = ("name", "counts", "count", "sum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        index = bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.sum += value

    def percentile(self, quantile: float) -> float:
        """Upper bound of the bucket containing the given quantile (0..1).

        Edge cases are pinned:

        * **Empty histogram** — returns ``0.0`` for every quantile (there is
          no sample to bound; callers that must distinguish "no data" from
          "all zeros" should check :attr:`count` first).
        * **``quantile=0.0``** — the rank floors at 1, so this returns the
          bucket bound of the *smallest* recorded sample, not 0.
        * **``quantile=1.0``** — the bucket bound of the largest recorded
          sample (``inf`` only if a sample overflowed the bucket range).
        * **Single sample** — every quantile in ``[0, 1]`` returns that
          sample's bucket bound.
        * Quantiles outside ``[0, 1]`` raise :class:`ValueError`.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(quantile * self.count))
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                return bucket_upper_bound(index)
        return bucket_upper_bound(_OVERFLOW_BUCKET)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.sum += other.sum

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counts": {str(index): self.counts[index] for index in sorted(self.counts)},
            "count": self.count,
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]) -> "Histogram":
        histogram = cls(name)
        histogram.counts = {int(index): int(n) for index, n in data.get("counts", {}).items()}
        histogram.count = int(data.get("count", 0))
        histogram.sum = float(data.get("sum", 0.0))
        return histogram


class MetricsRegistry:
    """Ordered collection of named counters, gauges, and histograms.

    Metrics are created on first access (``counter(name)`` etc.) and
    serialized in insertion order so registry dumps are deterministic.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def histograms(self) -> Iterable[Histogram]:
        return self._histograms.values()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": {name: metric.value for name, metric in self._counters.items()},
            "gauges": {name: metric.value for name, metric in self._gauges.items()},
            "histograms": {name: metric.as_dict() for name, metric in self._histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).value = value
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).value = value
        for name, payload in data.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_dict(name, payload)
        return registry


def merge_metric_dicts(
    base: Optional[Mapping[str, Any]], other: Optional[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Merge two ``MetricsRegistry.as_dict`` payloads (exact, order-stable).

    Counters and histogram buckets add; gauges take the ``other`` value when
    present (last writer wins, matching single-process semantics).
    """
    merged = MetricsRegistry.from_dict(base or {})
    for name, value in (other or {}).get("counters", {}).items():
        merged.counter(name).value += value
    for name, value in (other or {}).get("gauges", {}).items():
        merged.gauge(name).set(value)
    for name, payload in (other or {}).get("histograms", {}).items():
        merged.histogram(name).merge(Histogram.from_dict(name, payload))
    return merged.as_dict()
