"""Windowed time-series storage with deterministic parallel merges.

The sampler stores, per time window, the *per-node* counter deltas observed
in that window — never pre-summed fleet totals.  Fleet-level values are
derived at export time by summing nodes in sorted ``node_id`` order, so the
exported series is byte-identical whether the run executed in one process or
was merged from shard-parallel workers (each worker contributes a disjoint
set of nodes; a merge is a plain union).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

__all__ = ["WindowSampler", "merge_window_dicts"]


class WindowSampler:
    """Sparse per-window, per-node counter-delta store."""

    __slots__ = ("window", "_data")

    def __init__(self, window: float) -> None:
        if not window > 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        # window index -> node_id -> {field: delta}; zero deltas are skipped.
        self._data: Dict[int, Dict[str, Dict[str, float]]] = {}

    def add(self, index: int, node_id: str, deltas: Mapping[str, float]) -> None:
        """Accumulate one node's counter deltas into a window (zeros skipped)."""
        compact = {field: value for field, value in deltas.items() if value}
        if not compact:
            return
        nodes = self._data.get(index)
        if nodes is None:
            nodes = self._data[index] = {}
        cell = nodes.get(node_id)
        if cell is None:
            nodes[node_id] = dict(compact)
            return
        for field, value in compact.items():
            cell[field] = cell.get(field, 0) + value

    def __len__(self) -> int:
        return len(self._data)

    def as_dict(self) -> Dict[str, Any]:
        rows = []
        for index in sorted(self._data):
            nodes = self._data[index]
            rows.append(
                {
                    "index": index,
                    "start": index * self.window,
                    "end": (index + 1) * self.window,
                    "nodes": {node_id: dict(nodes[node_id]) for node_id in sorted(nodes)},
                }
            )
        return {"window": self.window, "rows": rows}


def merge_window_dicts(
    base: Mapping[str, Any], other: Mapping[str, Any]
) -> Dict[str, Any]:
    """Merge two ``WindowSampler.as_dict`` payloads (union of node maps)."""
    if base.get("window") != other.get("window"):
        raise ValueError(
            f"cannot merge window series with different widths: "
            f"{base.get('window')} vs {other.get('window')}"
        )
    sampler = WindowSampler(float(base["window"]))
    for payload in (base, other):
        for row in payload.get("rows", []):
            index = int(row["index"])
            for node_id, deltas in row.get("nodes", {}).items():
                sampler.add(index, node_id, deltas)
    return sampler.as_dict()


def window_rows(payload: Mapping[str, Any], fields: tuple) -> List[Dict[str, Any]]:
    """Derive fleet-level rows (sorted-node summation) from a windows payload.

    Each output row carries the fleet sum of every field in ``fields``, the
    derived ratios (``hit_rate``, ``miss_cost``, ``l1_share``), and a
    ``node_load`` map of per-node request counts.
    """
    rows: List[Dict[str, Any]] = []
    for raw in payload.get("rows", []):
        nodes = raw.get("nodes", {})
        totals: Dict[str, float] = {field: 0 for field in fields}
        node_load: Dict[str, float] = {}
        for node_id in sorted(nodes):
            deltas = nodes[node_id]
            for field in fields:
                value = deltas.get(field)
                if value:
                    totals[field] += value
            node_load[node_id] = deltas.get("reads", 0) + deltas.get("writes", 0)
        reads = totals.get("reads", 0)
        hits = totals.get("hits", 0)
        row: Dict[str, Any] = {
            "index": raw["index"],
            "start": raw["start"],
            "end": raw["end"],
        }
        row.update(totals)
        row["hit_rate"] = hits / reads if reads else 0.0
        row["miss_cost"] = totals.get("freshness_cost", 0) + totals.get("cold_miss_cost", 0)
        row["l1_share"] = totals.get("l1_hits", 0) / hits if hits else 0.0
        row["node_load"] = node_load
        rows.append(row)
    return rows
