"""Backend data-store substrate.

The backend is the ground truth: every write lands here, each key carries a
monotonically increasing version number, and the full write history is kept so
that the simulator can decide — for any read time and staleness bound — whether
a cached version satisfies bounded staleness.  The backend also hosts the
machinery that the paper's write-reactive policies need: a per-interval write
buffer (Figure 4), a tracker of already-invalidated keys (§3.1), and a message
channel to the cache that can model delay, loss, and reordering (§5).
"""

from repro.backend.datastore import DataStore, KeyHistory
from repro.backend.buffer import WriteBuffer
from repro.backend.messages import InvalidateMessage, Message, UpdateMessage
from repro.backend.channel import Channel, DeliveryRecord
from repro.backend.invalidation_tracker import InvalidationTracker

__all__ = [
    "Channel",
    "DataStore",
    "DeliveryRecord",
    "InvalidateMessage",
    "InvalidationTracker",
    "KeyHistory",
    "Message",
    "UpdateMessage",
    "WriteBuffer",
]
