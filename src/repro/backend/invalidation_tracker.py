"""Tracking of keys the backend has already invalidated.

Section 3.1 of the paper assumes the backend can remember which keys it has
invalidated so it does not send a second invalidate before the cache re-fetches
the key.  Tracking is cheap because only keys (not values) are stored; the
paper also suggests tracking only hot keys, which this implementation supports
via an optional capacity bound with LRU-style forgetting (a forgotten key may
receive a redundant invalidate, which is safe but slightly wasteful — exactly
the trade-off the paper describes).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigurationError


class InvalidationTracker:
    """Remembers keys whose cached copy is known to be invalidated.

    Args:
        capacity: Maximum number of keys remembered; ``None`` means unbounded
            (exact tracking).  When the bound is hit, the least recently
            touched key is forgotten.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._invalidated: OrderedDict[str, float] = OrderedDict()
        self.forgotten = 0

    def __len__(self) -> int:
        return len(self._invalidated)

    def __contains__(self, key: str) -> bool:
        return key in self._invalidated

    def is_invalidated(self, key: str) -> bool:
        """Whether the backend believes ``key`` is currently invalidated."""
        if key in self._invalidated:
            self._invalidated.move_to_end(key)
            return True
        return False

    def mark_invalidated(self, key: str, time: float) -> None:
        """Record that an invalidate for ``key`` was sent at ``time``."""
        self._invalidated[key] = time
        self._invalidated.move_to_end(key)
        if self.capacity is not None:
            while len(self._invalidated) > self.capacity:
                self._invalidated.popitem(last=False)
                self.forgotten += 1

    def mark_refetched(self, key: str) -> None:
        """Record that the cache re-fetched ``key`` (it is valid again)."""
        self._invalidated.pop(key, None)

    def clear(self) -> None:
        """Forget every tracked key."""
        self._invalidated.clear()
