"""Messages exchanged between the backend data store and the cache.

The write-reactive policies of the paper communicate with the cache through
two message types: *updates* (push the new value; a no-op if the object is not
cached) and *invalidates* (mark the cached object stale so the next read
misses).  Messages carry enough metadata for the cost model to charge them by
size when the network is the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MessageKind(Enum):
    """Kind of a backend-to-cache freshness message."""

    INVALIDATE = "invalidate"
    UPDATE = "update"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for backend-to-cache messages.

    Attributes:
        key: Object key the message refers to.
        sent_at: Simulation time at which the backend emitted the message.
        key_size: Key size in bytes (an invalidate carries only the key).
        value_size: Value size in bytes (zero for invalidates).
        version: Backend version the message reflects.
    """

    key: str
    sent_at: float
    key_size: int = 16
    value_size: int = 0
    version: int = 0

    kind: MessageKind = MessageKind.INVALIDATE

    @property
    def wire_size(self) -> int:
        """Bytes the message occupies on the wire."""
        return self.key_size + self.value_size


@dataclass(frozen=True, slots=True)
class InvalidateMessage(Message):
    """Mark a cached object stale; the next read misses and re-fetches."""

    kind: MessageKind = MessageKind.INVALIDATE


@dataclass(frozen=True, slots=True)
class UpdateMessage(Message):
    """Push the latest value for a key; ignored if the key is not cached."""

    kind: MessageKind = MessageKind.UPDATE
