"""Backend-to-cache message channel with optional delay, loss, and reordering.

The paper's §5 highlights guaranteed delivery of updates and invalidates as an
open problem: a lost invalidate can leave a cached object stale forever.  The
default channel is ideal (instantaneous, reliable) so the main experiments
match the paper's simulation; the loss/delay knobs exist for the ablation
benchmarks that demonstrate the open problem quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.backend.messages import Message
from repro.errors import ConfigurationError


@dataclass(slots=True)
class DeliveryRecord:
    """Outcome of pushing one message through the channel."""

    message: Message
    delivered: bool
    deliver_at: float


class Channel:
    """Models the path between the backend and the cache.

    Args:
        loss_probability: Probability that a message is silently dropped.
        delay: Constant propagation delay in seconds added to every delivered
            message.
        jitter: Standard deviation of additional (non-negative) random delay;
            with jitter, messages can be reordered.
        seed: Seed for the loss/jitter random generator.
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        delay: float = 0.0,
        jitter: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        if delay < 0 or jitter < 0:
            raise ConfigurationError("delay and jitter must be non-negative")
        self.loss_probability = float(loss_probability)
        self.delay = float(delay)
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(seed)
        self.sent = 0
        self.dropped = 0
        self.delivered = 0
        #: While ``True`` every message is dropped, regardless of
        #: ``loss_probability``.  Cluster scenarios toggle this to model a
        #: node that is partitioned from the backend (total outage) without
        #: disturbing the channel's random state.
        self.outage = False

    @property
    def is_ideal(self) -> bool:
        """Whether the channel is lossless and instantaneous."""
        return self.loss_probability == 0.0 and self.delay == 0.0 and self.jitter == 0.0

    def send(self, message: Message) -> DeliveryRecord:
        """Send one message, returning whether and when it is delivered."""
        self.sent += 1
        if self.outage:
            self.dropped += 1
            return DeliveryRecord(message=message, delivered=False, deliver_at=float("inf"))
        if self.loss_probability > 0.0 and self._rng.random() < self.loss_probability:
            self.dropped += 1
            return DeliveryRecord(message=message, delivered=False, deliver_at=float("inf"))
        extra = abs(float(self._rng.normal(0.0, self.jitter))) if self.jitter > 0 else 0.0
        self.delivered += 1
        return DeliveryRecord(
            message=message,
            delivered=True,
            deliver_at=message.sent_at + self.delay + extra,
        )

    def send_batch(self, messages: List[Message]) -> List[DeliveryRecord]:
        """Send a batch of messages, preserving input order of the records."""
        return [self.send(message) for message in messages]

    @property
    def loss_ratio(self) -> float:
        """Observed fraction of sent messages that were dropped."""
        return self.dropped / self.sent if self.sent else 0.0
