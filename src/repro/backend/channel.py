"""Backend-to-cache message channel with optional delay, loss, and reordering.

The paper's §5 highlights guaranteed delivery of updates and invalidates as an
open problem: a lost invalidate can leave a cached object stale forever.  The
default channel is ideal (instantaneous, reliable) so the main experiments
match the paper's simulation; the loss/delay knobs exist for the ablation
benchmarks that demonstrate the open problem quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.backend.messages import Message
from repro.errors import ConfigurationError


@dataclass(slots=True)
class DeliveryRecord:
    """Outcome of pushing one message through the channel."""

    message: Message
    delivered: bool
    deliver_at: float


class Channel:
    """Models the path between the backend and the cache.

    Args:
        loss_probability: Probability that a message is silently dropped.
        delay: Constant propagation delay in seconds added to every delivered
            message.
        jitter: Standard deviation of additional (non-negative) random delay;
            with jitter, messages can be reordered.
        seed: Seed for the loss/jitter random generator.
        retries: How many times the sender re-attempts a message lost to
            *probabilistic* loss (not outage: a partitioned link has nobody to
            time out against, so retries during ``outage`` are skipped without
            touching the random stream).
        retry_timeout: Seconds the sender waits before declaring an attempt
            lost and retrying.
        retry_backoff: Base of the exponential backoff added on top of the
            timeout: retry ``k`` waits ``retry_timeout + retry_backoff *
            2**(k-1)`` seconds after the previous attempt.
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        delay: float = 0.0,
        jitter: float = 0.0,
        seed: Optional[int] = None,
        retries: int = 0,
        retry_timeout: float = 0.0,
        retry_backoff: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        if delay < 0 or jitter < 0:
            raise ConfigurationError("delay and jitter must be non-negative")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if retry_timeout < 0 or retry_backoff < 0:
            raise ConfigurationError(
                "retry_timeout and retry_backoff must be non-negative"
            )
        self.loss_probability = float(loss_probability)
        self.delay = float(delay)
        self.jitter = float(jitter)
        self.retries = int(retries)
        self.retry_timeout = float(retry_timeout)
        self.retry_backoff = float(retry_backoff)
        self._rng = np.random.default_rng(seed)
        self.sent = 0
        self.dropped = 0
        self.delivered = 0
        self.retried = 0
        self.recovered = 0
        #: While ``True`` every message is dropped, regardless of
        #: ``loss_probability``.  Cluster scenarios toggle this to model a
        #: node that is partitioned from the backend (total outage) without
        #: disturbing the channel's random state.
        self.outage = False
        #: Degraded-but-alive overlay (gray links): extra loss, a constant
        #: extra delay, and extra per-message seeded jitter layered on top of
        #: the base configuration.  Off by default so the base random stream
        #: is untouched; scenarios toggle it for their degradation windows.
        self.degraded = False
        self._degraded_loss = 0.0
        self._degraded_delay = 0.0
        self._degraded_jitter = 0.0

    @property
    def is_ideal(self) -> bool:
        """Whether the channel is lossless and instantaneous."""
        return self.loss_probability == 0.0 and self.delay == 0.0 and self.jitter == 0.0

    def set_degraded(
        self, loss: float = 0.0, delay: float = 0.0, jitter: float = 0.0
    ) -> None:
        """Enter degraded mode: partial loss and extra delay on a live link.

        Effective loss composes independently with the base probability
        (``1 - (1-base)(1-loss)``); ``delay`` is added to every delivered
        message and ``jitter`` draws additional non-negative seeded delay per
        message.  Unlike ``outage`` the link stays alive, so retries still
        apply.
        """
        if not 0.0 <= loss <= 1.0:
            raise ConfigurationError(f"degraded loss must be in [0, 1], got {loss}")
        if delay < 0 or jitter < 0:
            raise ConfigurationError(
                "degraded delay and jitter must be non-negative"
            )
        self.degraded = True
        self._degraded_loss = float(loss)
        self._degraded_delay = float(delay)
        self._degraded_jitter = float(jitter)

    def clear_degraded(self) -> None:
        """Leave degraded mode, restoring the base channel configuration."""
        self.degraded = False
        self._degraded_loss = 0.0
        self._degraded_delay = 0.0
        self._degraded_jitter = 0.0

    def _effective_loss(self) -> float:
        if not self.degraded:
            return self.loss_probability
        return 1.0 - (1.0 - self.loss_probability) * (1.0 - self._degraded_loss)

    def send(self, message: Message) -> DeliveryRecord:
        """Send one message, returning whether and when it is delivered."""
        self.sent += 1
        if self.outage:
            self.dropped += 1
            return DeliveryRecord(message=message, delivered=False, deliver_at=float("inf"))
        loss = self._effective_loss()
        retry_penalty = 0.0
        if loss > 0.0 and self._rng.random() < loss:
            # Lost in flight: walk the retry schedule.  Each retry waits out
            # the timeout plus exponential backoff, then redraws the loss.
            recovered = False
            for attempt in range(1, self.retries + 1):
                self.retried += 1
                retry_penalty += (
                    self.retry_timeout + self.retry_backoff * 2 ** (attempt - 1)
                )
                if self._rng.random() >= loss:
                    recovered = True
                    break
            if not recovered:
                self.dropped += 1
                return DeliveryRecord(
                    message=message, delivered=False, deliver_at=float("inf")
                )
            self.recovered += 1
        extra = abs(float(self._rng.normal(0.0, self.jitter))) if self.jitter > 0 else 0.0
        if self.degraded:
            extra += self._degraded_delay
            if self._degraded_jitter > 0:
                extra += abs(float(self._rng.normal(0.0, self._degraded_jitter)))
        self.delivered += 1
        return DeliveryRecord(
            message=message,
            delivered=True,
            deliver_at=message.sent_at + self.delay + extra + retry_penalty,
        )

    def send_batch(self, messages: List[Message]) -> List[DeliveryRecord]:
        """Send a batch of messages, preserving input order of the records."""
        return [self.send(message) for message in messages]

    @property
    def loss_ratio(self) -> float:
        """Observed fraction of sent messages that were dropped."""
        return self.dropped / self.sent if self.sent else 0.0
