"""Versioned backend key-value store.

The data store records every write with its commit time and assigns each key a
monotonically increasing version number.  That history is what allows the
simulator to answer the central freshness question of the paper: *does the
version a cache entry holds reflect every write committed at least T seconds
before the read?* (the bounded-staleness definition from §1/§2.2).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(slots=True)
class KeyHistory:
    """Write history of a single key.

    ``write_times[i]`` is the commit time of version ``i + 1``; version 0 is
    the state before any write (every key logically exists with an initial
    value, matching a cache-aside deployment where reads can always be served
    by the backend).
    """

    key: str
    write_times: List[float] = field(default_factory=list)
    value_size: int = 128

    @property
    def latest_version(self) -> int:
        """The current (highest) version number."""
        return len(self.write_times)

    def version_at(self, time: float) -> int:
        """Return the version visible at ``time`` (writes at exactly ``time`` included)."""
        return bisect_right(self.write_times, time)

    def writes_between(self, start: float, end: float) -> int:
        """Count writes committed in the half-open interval ``(start, end]``."""
        if end < start:
            return 0
        return bisect_right(self.write_times, end) - bisect_right(self.write_times, start)


class DataStore:
    """The backend store holding the authoritative copy of every object.

    Args:
        default_value_size: Value size assumed for keys that have never been
            written (reads can still populate the cache with them).
    """

    def __init__(self, default_value_size: int = 128) -> None:
        self.default_value_size = int(default_value_size)
        self._histories: Dict[str, KeyHistory] = {}
        self.total_writes = 0
        self.total_reads = 0

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def write(self, key: str, time: float, value_size: Optional[int] = None) -> int:
        """Commit a write to ``key`` at ``time`` and return the new version."""
        history = self._histories.get(key)
        if history is None:
            history = KeyHistory(key=key, value_size=self.default_value_size)
            self._histories[key] = history
        if history.write_times and time < history.write_times[-1]:
            # The store is driven by a time-ordered simulator; tolerate exact
            # ties but never allow the history to become unsorted.
            time = history.write_times[-1]
        history.write_times.append(float(time))
        if value_size is not None:
            history.value_size = int(value_size)
        self.total_writes += 1
        return history.latest_version

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def read(self, key: str, time: float) -> tuple[int, int]:
        """Read ``key`` at ``time``.

        Returns:
            ``(version, value_size)`` of the freshest committed state.
        """
        self.total_reads += 1
        history = self._histories.get(key)
        if history is None:
            return 0, self.default_value_size
        return history.version_at(time), history.value_size

    # ------------------------------------------------------------------ #
    # Freshness queries
    # ------------------------------------------------------------------ #
    def latest_version(self, key: str) -> int:
        """Return the current version of ``key`` (0 if never written)."""
        history = self._histories.get(key)
        return history.latest_version if history is not None else 0

    def version_at(self, key: str, time: float) -> int:
        """Return the version of ``key`` visible at ``time``."""
        history = self._histories.get(key)
        return history.version_at(time) if history is not None else 0

    def writes_between(self, key: str, start: float, end: float) -> int:
        """Count writes to ``key`` committed in ``(start, end]``."""
        history = self._histories.get(key)
        return history.writes_between(start, end) if history is not None else 0

    def is_fresh(self, key: str, cached_as_of: float, read_time: float, bound: float) -> bool:
        """Check bounded staleness for a cached copy of ``key``.

        A cached object that reflects the backend as of ``cached_as_of``
        satisfies a staleness bound of ``bound`` at ``read_time`` iff no write
        was committed in ``(cached_as_of, read_time - bound]`` — i.e. the copy
        reflects the backend state at some point within the last ``bound``
        seconds.
        """
        horizon = read_time - bound
        if horizon <= cached_as_of:
            return True
        return self.writes_between(key, cached_as_of, horizon) == 0

    def value_size(self, key: str) -> int:
        """Return the value size of ``key`` in bytes."""
        history = self._histories.get(key)
        return history.value_size if history is not None else self.default_value_size

    def known_keys(self) -> List[str]:
        """Return every key that has ever been written."""
        return list(self._histories)

    def history(self, key: str) -> Optional[KeyHistory]:
        """Return the write history of ``key`` (``None`` if never written)."""
        return self._histories.get(key)
