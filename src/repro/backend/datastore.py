"""Versioned backend key-value store.

The data store records every write with its commit time and assigns each key a
monotonically increasing version number.  That history is what allows the
simulator to answer the central freshness question of the paper: *does the
version a cache entry holds reflect every write committed at least T seconds
before the read?* (the bounded-staleness definition from §1/§2.2).

Two optional extensions keep long runs practical:

* a **journal hook** (:mod:`repro.store`) mirrors every committed write into
  an append-only write-ahead log so the store can be rebuilt byte-for-byte
  after a crash, and
* a **retention watermark** prunes per-key write history below
  ``now - retention``; version numbers stay exact (a pruned-count offset is
  retained), and ``version_at`` / ``writes_between`` stay exact for any
  query time at or above the watermark, so a retention comfortably larger
  than the staleness bound plus the longest cache residency keeps multi-hour
  runs flat-RSS without perturbing a single freshness decision.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.wal import Journal


@dataclass(slots=True)
class KeyHistory:
    """Write history of a single key.

    ``write_times[i]`` is the commit time of version ``pruned + i + 1``;
    version 0 is the state before any write (every key logically exists with
    an initial value, matching a cache-aside deployment where reads can
    always be served by the backend).  ``pruned`` counts writes dropped below
    the retention watermark; they still count toward version numbers, so
    pruning never renumbers anything.
    """

    key: str
    write_times: List[float] = field(default_factory=list)
    value_size: int = 128
    pruned: int = 0

    @property
    def latest_version(self) -> int:
        """The current (highest) version number (exact under pruning)."""
        return self.pruned + len(self.write_times)

    def version_at(self, time: float) -> int:
        """Return the version visible at ``time`` (writes at exactly ``time`` included).

        Exact for any ``time`` at or above the retention watermark; below it,
        pruned writes are all counted as visible (an upper bound).
        """
        return self.pruned + bisect_right(self.write_times, time)

    def writes_between(self, start: float, end: float) -> int:
        """Count writes committed in the half-open interval ``(start, end]``.

        Exact whenever ``start`` is at or above the retention watermark (the
        pruned-count offsets cancel).
        """
        if end < start:
            return 0
        return bisect_right(self.write_times, end) - bisect_right(self.write_times, start)

    def prune_before(self, watermark: float) -> int:
        """Drop write times at or below ``watermark``; return how many."""
        index = bisect_right(self.write_times, watermark)
        if index:
            del self.write_times[:index]
            self.pruned += index
        return index


class DataStore:
    """The backend store holding the authoritative copy of every object.

    Args:
        default_value_size: Value size assumed for keys that have never been
            written (reads can still populate the cache with them).
        retention: Optional history-retention window in seconds.  On each
            write, history older than ``time - retention`` is pruned (the
            version counter stays exact).  Must comfortably exceed the
            staleness bound plus the longest time an entry can sit in a cache
            unrefreshed, or freshness queries start touching the watermark.
    """

    def __init__(
        self, default_value_size: int = 128, retention: Optional[float] = None
    ) -> None:
        if retention is not None and retention <= 0:
            raise ConfigurationError(f"retention must be positive, got {retention}")
        self.default_value_size = int(default_value_size)
        self.retention = float(retention) if retention is not None else None
        self._histories: Dict[str, KeyHistory] = {}
        self.total_writes = 0
        self.total_reads = 0
        self.pruned_writes = 0
        #: Optional write-ahead-log hook (see :mod:`repro.store`); ``None``
        #: keeps the store purely in-memory.
        self.journal: Optional["Journal"] = None

    def attach_journal(self, journal: "Journal") -> None:
        """Start mirroring writes and read counts into ``journal``."""
        self.journal = journal

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def write(self, key: str, time: float, value_size: Optional[int] = None) -> int:
        """Commit a write to ``key`` at ``time`` and return the new version."""
        history = self._histories.get(key)
        if history is None:
            history = KeyHistory(key=key, value_size=self.default_value_size)
            self._histories[key] = history
        if history.write_times and time < history.write_times[-1]:
            # The store is driven by a time-ordered simulator; tolerate exact
            # ties but never allow the history to become unsorted.
            time = history.write_times[-1]
        history.write_times.append(float(time))
        if value_size is not None:
            history.value_size = int(value_size)
        self.total_writes += 1
        if self.journal is not None:
            self.journal.log_write(key, float(time), history.value_size)
        if self.retention is not None:
            watermark = time - self.retention
            if history.write_times[0] <= watermark:
                self.pruned_writes += history.prune_before(watermark)
        return history.latest_version

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def read(self, key: str, time: float) -> tuple[int, int]:
        """Read ``key`` at ``time``.

        Returns:
            ``(version, value_size)`` of the freshest committed state.
        """
        self.total_reads += 1
        if self.journal is not None:
            self.journal.note_read()
        history = self._histories.get(key)
        if history is None:
            return 0, self.default_value_size
        return history.version_at(time), history.value_size

    # ------------------------------------------------------------------ #
    # Freshness queries
    # ------------------------------------------------------------------ #
    def latest_version(self, key: str) -> int:
        """Return the current version of ``key`` (0 if never written)."""
        history = self._histories.get(key)
        return history.latest_version if history is not None else 0

    def version_at(self, key: str, time: float) -> int:
        """Return the version of ``key`` visible at ``time``."""
        history = self._histories.get(key)
        return history.version_at(time) if history is not None else 0

    def writes_between(self, key: str, start: float, end: float) -> int:
        """Count writes to ``key`` committed in ``(start, end]``."""
        history = self._histories.get(key)
        return history.writes_between(start, end) if history is not None else 0

    def is_fresh(self, key: str, cached_as_of: float, read_time: float, bound: float) -> bool:
        """Check bounded staleness for a cached copy of ``key``.

        A cached object that reflects the backend as of ``cached_as_of``
        satisfies a staleness bound of ``bound`` at ``read_time`` iff no write
        was committed in ``(cached_as_of, read_time - bound]`` — i.e. the copy
        reflects the backend state at some point within the last ``bound``
        seconds.
        """
        horizon = read_time - bound
        if horizon <= cached_as_of:
            return True
        return self.writes_between(key, cached_as_of, horizon) == 0

    def value_size(self, key: str) -> int:
        """Return the value size of ``key`` in bytes."""
        history = self._histories.get(key)
        return history.value_size if history is not None else self.default_value_size

    def known_keys(self) -> List[str]:
        """Return every key that has ever been written."""
        return list(self._histories)

    def history(self, key: str) -> Optional[KeyHistory]:
        """Return the write history of ``key`` (``None`` if never written)."""
        return self._histories.get(key)

    def retained_write_times(self) -> int:
        """Total write timestamps currently held (the pruning target)."""
        return sum(len(history.write_times) for history in self._histories.values())
