"""Per-interval write buffer (Figure 4 of the paper).

The backend does not react to each write immediately: writes arriving during a
staleness interval ``T`` are buffered, and at the end of the interval the
policy decides — per dirty key — whether to send an invalidate, an update, or
nothing.  Buffering is what keeps the number of freshness messages bounded by
one per key per interval while still honouring the staleness bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(slots=True)
class BufferedWrite:
    """Aggregated information about writes to one key within one interval."""

    key: str
    first_write_time: float
    last_write_time: float
    write_count: int = 1
    key_size: int = 16
    value_size: int = 128


@dataclass(slots=True)
class WriteBuffer:
    """Accumulates writes between interval flushes."""

    _pending: Dict[str, BufferedWrite] = field(default_factory=dict)
    total_buffered: int = 0

    def record_write(
        self,
        key: str,
        time: float,
        key_size: int = 16,
        value_size: int = 128,
    ) -> None:
        """Record a write to ``key`` at ``time``."""
        entry = self._pending.get(key)
        if entry is None:
            self._pending[key] = BufferedWrite(
                key=key,
                first_write_time=time,
                last_write_time=time,
                key_size=key_size,
                value_size=value_size,
            )
        else:
            entry.last_write_time = time
            entry.write_count += 1
            entry.value_size = value_size
        self.total_buffered += 1

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, key: str) -> bool:
        return key in self._pending

    def peek(self) -> List[BufferedWrite]:
        """Return the buffered writes without clearing the buffer."""
        return list(self._pending.values())

    def drain(self) -> List[BufferedWrite]:
        """Return and clear the buffered writes (called at interval flush)."""
        drained = list(self._pending.values())
        self._pending.clear()
        return drained

    def discard(self, key: str) -> None:
        """Drop the buffered write for ``key`` (used when a key is re-fetched)."""
        self._pending.pop(key, None)
