"""Configuration for the concurrent-fetch model.

A :class:`ConcurrencyConfig` switches the engines from the classic
instant-fetch model (every miss fills the cache in zero simulated time) to a
model where backend fetches *occupy* the backend for a sampled service time,
subject to a finite slot capacity with FIFO queueing.  The config is a frozen,
picklable value object — the same discipline as
:class:`~repro.obs.recorder.ObsConfig` — so it can ride inside experiment
cells across worker processes.

``None`` (the default everywhere a config is accepted) keeps the instant-fetch
engine byte-identical to previous releases; that invariant is test-pinned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ConfigurationError

#: Supported backend service-time distributions.
SERVICE_TIME_DISTRIBUTIONS = ("deterministic", "exponential", "lognormal")

#: Supported stampede-mitigation policies (see :mod:`repro.concurrency`).
STAMPEDE_POLICIES = (
    "none",
    "single-flight",
    "stale-while-revalidate",
    "dogpile-lock",
    "early-expiry",
)


@dataclass(frozen=True, slots=True)
class ConcurrencyConfig:
    """Parameters of the in-flight fetch model.

    Attributes:
        service_time: Service-time distribution of a backend fetch —
            ``"deterministic"`` (every fetch takes exactly ``mean``),
            ``"exponential"`` (memoryless with the given mean), or
            ``"lognormal"`` (heavy-tailed; ``sigma`` sets the shape, the
            distribution is re-parameterised so its mean stays ``mean``).
        mean: Mean service time of one backend fetch, in simulated seconds.
        sigma: Log-space standard deviation for ``"lognormal"``.
        capacity: Concurrent fetch slots at the backend.  Fetches beyond the
            capacity queue FIFO and start when a slot frees.
        policy: Stampede-mitigation policy applied on cache misses; one of
            :data:`STAMPEDE_POLICIES`.
        beta: Aggressiveness of probabilistic early expiration (the XFetch
            ``beta``); only used by the ``"early-expiry"`` policy.
        seed: Base seed for the service-time sampler and the early-expiry
            coin.  Hosts derive their sampler streams from this seed with
            the same XOR-constant discipline as channel/detector/tier seeds,
            so results are reproducible across processes.
    """

    service_time: str = "deterministic"
    mean: float = 0.05
    sigma: float = 0.5
    capacity: int = 4
    policy: str = "none"
    beta: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.service_time not in SERVICE_TIME_DISTRIBUTIONS:
            raise ConfigurationError(
                f"service_time must be one of {SERVICE_TIME_DISTRIBUTIONS}, "
                f"got {self.service_time!r}"
            )
        if self.policy not in STAMPEDE_POLICIES:
            raise ConfigurationError(
                f"stampede policy must be one of {STAMPEDE_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.mean <= 0:
            raise ConfigurationError(f"mean service time must be positive, got {self.mean}")
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {self.sigma}")
        if self.capacity < 1:
            raise ConfigurationError(f"backend capacity must be >= 1, got {self.capacity}")
        if self.beta <= 0:
            raise ConfigurationError(f"beta must be positive, got {self.beta}")

    def as_dict(self) -> Dict[str, Any]:
        """Flatten to primitives for result rows and logs (seed excluded —
        it is derived from the cell, not a user-facing coordinate)."""
        return {
            "service_time": self.service_time,
            "mean": self.mean,
            "sigma": self.sigma,
            "capacity": self.capacity,
            "policy": self.policy,
            "beta": self.beta,
        }


def as_concurrency(obj: Any) -> "ConcurrencyConfig | None":
    """Normalise a constructor argument to a config or ``None`` (disabled)."""
    if obj is None:
        return None
    if isinstance(obj, ConcurrencyConfig):
        return obj
    raise TypeError(
        f"concurrency must be a ConcurrencyConfig or None, got {type(obj).__name__}"
    )
