"""Finite-capacity backend with FIFO queueing.

The backend models the origin datastore as ``capacity`` identical servers.
A fetch that arrives while a slot is free starts immediately; otherwise it
queues FIFO and starts when the earliest busy slot frees.  Because fetches
are admitted in arrival order and the simulator presents arrivals in
nondecreasing time, a min-heap of slot busy-until times implements the exact
M/G/c-style FIFO discipline without an explicit queue structure.

One :class:`BackendServer` is shared by every node of a fleet — the whole
point of the ``backend-saturation`` scenario is that nodes contend for the
same origin capacity.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.errors import ConfigurationError


class BackendServer:
    """``capacity`` fetch slots with FIFO admission in arrival order."""

    __slots__ = ("capacity", "_busy")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"backend capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._busy: List[float] = []  # heap of slot busy-until times

    def schedule(self, now: float, service: float) -> Tuple[float, float]:
        """Admit one fetch arriving at ``now``; return ``(start, done)``.

        The fetch starts immediately when a slot is free, else when the
        earliest busy slot frees.  When the capacity was squeezed below the
        number of busy slots (``backend-saturation``), the surplus slots are
        retired as they drain: the fetch waits for enough completions that
        the live slot count fits the new capacity.
        """
        busy = self._busy
        start = now
        while len(busy) >= self.capacity:
            freed = heapq.heappop(busy)
            if freed > start:
                start = freed
        done = start + service
        heapq.heappush(busy, done)
        return start, done

    def set_capacity(self, capacity: int) -> None:
        """Resize the slot pool (scenario hook); takes effect on admission."""
        if capacity < 1:
            raise ConfigurationError(f"backend capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)

    @property
    def busy_slots(self) -> int:
        """Number of slots currently tracked as busy (monitoring only)."""
        return len(self._busy)
