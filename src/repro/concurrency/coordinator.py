"""Per-host in-flight fetch tables and stampede-mitigation policies.

A :class:`FetchCoordinator` sits between a read path and the shared
:class:`~repro.concurrency.backend.BackendServer`.  It tracks which keys have
a backend fetch in flight, orders fetch completions deterministically, and
implements the classic cache-stampede mitigations as data (flags consulted by
the host's concurrent read path):

* ``none`` — every miss issues its own fetch and waits for it; concurrent
  misses on the same key dogpile the backend.
* ``single-flight`` — concurrent misses on a key coalesce onto the one
  in-flight fetch (the leader); followers wait for the same completion and
  the backend sees exactly one fetch.
* ``stale-while-revalidate`` — like single-flight, but when an expired or
  invalidated copy is still resident, both the leader and the followers
  serve it immediately (zero latency, staleness counted honestly) while the
  refresh completes in the background.
* ``dogpile-lock`` — the leader takes the lock and waits for the fresh
  value; followers serve the stale copy when one is resident, else they
  wait on the leader's fetch.
* ``early-expiry`` — single-flight coalescing plus probabilistic early
  refresh on *hits* (XFetch): as an entry's freshness budget runs out, a
  seeded coin increasingly often triggers a background refresh before the
  entry goes stale, spreading refreshes out instead of letting a popular
  key expire under a thundering herd.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Dict, Iterator, List, Optional

from repro.concurrency.backend import BackendServer
from repro.concurrency.config import ConcurrencyConfig
from repro.concurrency.service import ServiceTimeSampler
from repro.sim.events import FetchCompletion

#: XOR'd into a host's seed for its service-time sampler stream, following
#: the detector/tier seed discipline (`node_seed ^ constant`).
SERVICE_SEED_SALT = 0x5EEDF17C

#: XOR'd into a host's seed for the early-expiry (XFetch) coin stream.
XFETCH_SEED_SALT = 0x2B7E1516


class InFlightFetch:
    """One outstanding backend fetch: what was read and when it lands."""

    __slots__ = ("key", "issued_at", "start", "done", "version", "value_size", "key_size")

    def __init__(
        self,
        key: str,
        issued_at: float,
        start: float,
        done: float,
        version: int,
        value_size: int,
        key_size: int,
    ) -> None:
        self.key = key
        self.issued_at = issued_at
        self.start = start
        self.done = done
        self.version = version
        self.value_size = value_size
        self.key_size = key_size


class FetchCoordinator:
    """In-flight fetch table, completion ordering, and policy flags."""

    __slots__ = (
        "config",
        "server",
        "coalesces",
        "followers_serve_stale",
        "leader_serves_stale",
        "early_expiry",
        "slowdown",
        "_sampler",
        "_xfetch",
        "_inflight",
        "_completions",
        "_seq",
    )

    def __init__(self, config: ConcurrencyConfig, server: BackendServer, seed: int) -> None:
        self.config = config
        self.server = server
        policy = config.policy
        self.coalesces = policy != "none"
        self.followers_serve_stale = policy in ("stale-while-revalidate", "dogpile-lock")
        self.leader_serves_stale = policy == "stale-while-revalidate"
        self.early_expiry = policy == "early-expiry"
        #: Multiplier on every sampled service time.  1.0 is the healthy
        #: host; gray-failure scenarios raise it mid-run to model a
        #: slow-but-alive node without touching the sampler's random stream
        #: (the underlying draw sequence is unchanged, so a window that is
        #: never entered leaves replays byte-identical).
        self.slowdown = 1.0
        self._sampler = ServiceTimeSampler(config, (seed ^ SERVICE_SEED_SALT) % 2**32)
        self._xfetch = random.Random((seed ^ XFETCH_SEED_SALT) % 2**32)
        self._inflight: Dict[str, InFlightFetch] = {}
        self._completions: List[FetchCompletion] = []
        self._seq = 0

    def lookup(self, key: str) -> Optional[InFlightFetch]:
        """The in-flight fetch for ``key``, if the policy coalesces."""
        return self._inflight.get(key)

    def issue(
        self,
        key: str,
        issued_at: float,
        version: int,
        value_size: int,
        key_size: int,
    ) -> InFlightFetch:
        """Admit a fetch for ``key`` to the backend and track its completion.

        The caller has already read ``version``/``value_size`` from the
        datastore at issue time (the backend snapshot the fetch will carry);
        the coordinator only models *when* that value lands in the cache.
        """
        start, done = self.server.schedule(
            issued_at, self._sampler.sample() * self.slowdown
        )
        fetch = InFlightFetch(
            key=key,
            issued_at=issued_at,
            start=start,
            done=done,
            version=version,
            value_size=value_size,
            key_size=key_size,
        )
        self._seq += 1
        heapq.heappush(self._completions, FetchCompletion(done=done, seq=self._seq, fetch=fetch))
        if self.coalesces:
            self._inflight[key] = fetch
        return fetch

    @property
    def next_done(self) -> float:
        """Completion time of the earliest outstanding fetch (inf if none)."""
        return self._completions[0].done if self._completions else math.inf

    @property
    def pending(self) -> int:
        """Number of outstanding fetches (monitoring only)."""
        return len(self._completions)

    def drain(self, until: float) -> Iterator[InFlightFetch]:
        """Yield fetches completing at or before ``until``, in (done, seq) order."""
        completions = self._completions
        while completions and completions[0].done <= until:
            fetch = heapq.heappop(completions).fetch
            if self._inflight.get(fetch.key) is fetch:
                del self._inflight[fetch.key]
            yield fetch

    def discard_pending(self) -> None:
        """Drop every outstanding completion (host lost its volatile state).

        The restarted process has no record of the requests that issued the
        fetches, so their responses are discarded on arrival.  The backend
        slots they occupy stay busy — that work was already admitted.
        """
        self._completions.clear()
        self._inflight.clear()

    def should_refresh_early(self, now: float, as_of: float, bound: float) -> bool:
        """XFetch coin: refresh a *hit* early as its freshness budget drains.

        Triggers when the remaining budget ``(as_of + bound) - now`` drops
        below ``beta * mean_service_time * Exp(1)`` — rare while the entry is
        fresh, increasingly likely as expiry nears, guaranteed once overdue.
        The coin stream is seeded per host, so replays are deterministic.
        """
        gap = (as_of + bound) - now
        if gap <= 0.0:
            return True
        draw = -math.log(1.0 - self._xfetch.random())
        return gap <= self.config.beta * self.config.mean * draw
