"""Seeded service-time samplers for backend fetches.

Each host (the single-cache simulation, or one cache node in a fleet) owns an
independent sampler stream derived from its deterministic seed, so adding or
removing nodes never perturbs another node's draws — the same per-node stream
discipline the channels and failure detectors already follow.
"""

from __future__ import annotations

import math
import random

from repro.concurrency.config import ConcurrencyConfig


class ServiceTimeSampler:
    """Draw backend service times from the configured distribution.

    ``sample`` is bound to the distribution-specific method at construction
    so the hot path pays no dispatch; the deterministic distribution never
    even builds an RNG.
    """

    __slots__ = ("sample", "_mean", "_mu", "_sigma", "_rng")

    def __init__(self, config: ConcurrencyConfig, seed: int) -> None:
        self._mean = config.mean
        kind = config.service_time
        if kind == "deterministic":
            self.sample = self._deterministic
        elif kind == "exponential":
            self._rng = random.Random(seed)
            self.sample = self._exponential
        else:  # lognormal, re-parameterised so the mean stays config.mean
            self._rng = random.Random(seed)
            self._sigma = config.sigma
            self._mu = math.log(config.mean) - 0.5 * config.sigma * config.sigma
            self.sample = self._lognormal

    def _deterministic(self) -> float:
        return self._mean

    def _exponential(self) -> float:
        return self._rng.expovariate(1.0 / self._mean)

    def _lognormal(self) -> float:
        return self._rng.lognormvariate(self._mu, self._sigma)
