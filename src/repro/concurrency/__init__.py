"""Concurrency realism: in-flight backend fetches and stampede mitigations.

This package models what the instant-fetch engines abstract away: a cache
miss *occupies* the backend for a sampled service time, the backend has a
finite number of fetch slots with FIFO queueing, and overlapping misses on
the same key either dogpile the backend or coalesce, depending on the
configured stampede-mitigation policy.  Read latency (0 for hits and stale
serves, queueing + service time for misses that wait) lands in per-run
p50/p99/p999 percentiles via the :mod:`repro.obs` histogram machinery.

Enable it by passing a :class:`ConcurrencyConfig` to the simulation, cluster,
experiment grid, or CLI; the default (``None``) keeps every engine
byte-identical to the classic instant-fetch model — that invariant is
test-pinned across the scalar, vector, and shard-parallel pipelines.
"""

from repro.concurrency.backend import BackendServer
from repro.concurrency.config import (
    SERVICE_TIME_DISTRIBUTIONS,
    STAMPEDE_POLICIES,
    ConcurrencyConfig,
    as_concurrency,
)
from repro.concurrency.coordinator import FetchCoordinator, InFlightFetch
from repro.concurrency.service import ServiceTimeSampler

__all__ = [
    "BackendServer",
    "ConcurrencyConfig",
    "FetchCoordinator",
    "InFlightFetch",
    "SERVICE_TIME_DISTRIBUTIONS",
    "STAMPEDE_POLICIES",
    "ServiceTimeSampler",
    "as_concurrency",
]
