"""The freshness cost model: ``c_m``, ``c_i``, ``c_u`` and the Table 1 breakdown.

The paper measures the throughput overhead of a freshness mechanism in units
of three per-operation costs:

* ``c_m`` — the cost of servicing a miss (the cache asks the data store for a
  fresh copy),
* ``c_i`` — the cost of an invalidation message (key only), and
* ``c_u`` — the cost of an update message (key plus value).

Table 1 breaks each cost into serialisation/deserialisation and store
operations at the cache and the data store, for a deployment where CPU is the
bottleneck.  :class:`CostBreakdown` implements that breakdown (optionally
scaled by key/value sizes, which also covers the network-bottleneck case where
message bytes dominate); :class:`CostModel` is the runtime interface used by
policies and the simulator, either with fixed costs or backed by a breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class CostBreakdown:
    """Primitive operation costs used to derive ``c_m``, ``c_i``, and ``c_u``.

    All values are in arbitrary cost units (e.g. microseconds of CPU time or
    bytes on the wire).  Per-byte terms model serialisation and
    deserialisation work proportional to message size; per-operation terms
    model fixed store work (lookups, updates, deletes).

    The composition follows Table 1 of the paper:

    ====================  =====================================================
    Cost                  Breakdown
    ====================  =====================================================
    ``c_m`` (miss)        cache: ser(K) + deser(K+V) + update;
                          store: deser(K) + read + ser(K+V)
    ``c_i`` (invalidate)  cache: deser(K) + delete;  store: ser(K)
    ``c_u`` (update)      cache: deser(K+V) + update;  store: ser(K+V)
    ====================  =====================================================
    """

    serialize_per_byte: float = 0.002
    deserialize_per_byte: float = 0.002
    read_op: float = 0.2
    update_op: float = 0.2
    delete_op: float = 0.05
    #: Fixed store work to stage one WAL record in the commit batch.
    append_op: float = 0.02
    #: Fixed cost of one fsync-style group commit of the WAL batch.
    fsync_op: float = 0.5
    #: Fixed cost of an in-process L1 lookup (no serialisation, no network).
    l1_lookup_op: float = 0.02
    #: Fixed cost of installing one entry into the in-process L1.
    l1_insert_op: float = 0.05
    #: Per-byte cost of copying an object between tiers inside one process
    #: (a memcpy, not a serialise — an order of magnitude below the wire).
    copy_per_byte: float = 0.0005

    def _ser(self, size: int) -> float:
        return self.serialize_per_byte * size

    def _deser(self, size: int) -> float:
        return self.deserialize_per_byte * size

    def miss_cost(self, key_size: int, value_size: int) -> float:
        """Cost of servicing a miss for an object of the given sizes."""
        cache_side = self._ser(key_size) + self._deser(key_size + value_size) + self.update_op
        store_side = self._deser(key_size) + self.read_op + self._ser(key_size + value_size)
        return cache_side + store_side

    def invalidate_cost(self, key_size: int) -> float:
        """Cost of an invalidation message (carries only the key)."""
        cache_side = self._deser(key_size) + self.delete_op
        store_side = self._ser(key_size)
        return cache_side + store_side

    def update_cost(self, key_size: int, value_size: int) -> float:
        """Cost of an update message (carries the key and the new value)."""
        cache_side = self._deser(key_size + value_size) + self.update_op
        store_side = self._ser(key_size + value_size)
        return cache_side + store_side

    def serve_cost(self, key_size: int, value_size: int) -> float:
        """Useful work to serve one read (used to normalise ``C_F``).

        Serving a read requires deserialising the request key, a store/cache
        lookup, and serialising the response — the same work as the
        store-side half of a miss.
        """
        return self._deser(key_size) + self.read_op + self._ser(key_size + value_size)

    def wal_append_cost(self, record_size: int) -> float:
        """Cost of serialising and staging one WAL record of ``record_size`` bytes."""
        return self._ser(record_size) + self.append_op

    def wal_flush_cost(self) -> float:
        """Cost of one group commit (fsync) of the staged WAL batch."""
        return self.fsync_op

    def l1_hit_cost(self, key_size: int) -> float:
        """Cost of serving a read from the in-process L1 (a hash lookup)."""
        return self.l1_lookup_op

    def l1_insert_cost(self, key_size: int, value_size: int) -> float:
        """Cost of copying one object into the L1 (promotion or fill)."""
        return self.l1_insert_op + self.copy_per_byte * (key_size + value_size)

    def writeback_flush_cost(self, key_size: int, value_size: int) -> float:
        """Cost of flushing one dirty L1 entry down into the shared L2 tier.

        The entry is copied out of the L1 and installed into the L2 store,
        so the charge is the copy plus the store-side update.
        """
        return (
            self.l1_insert_op
            + self.copy_per_byte * (key_size + value_size)
            + self.update_op
        )


class CostModel:
    """Runtime cost oracle used by policies and the simulator.

    Two modes are supported:

    * **Fixed costs** (default): ``c_m``, ``c_i``, ``c_u`` and the read-serving
      cost are constants, independent of object size.  This matches the
      analytical model of §2–§3.
    * **Breakdown-backed**: costs are derived from a :class:`CostBreakdown`
      and scale with the key/value sizes of each object, matching §3.3's
      guidance that costs "should be scaled by the sizes of the actual keys
      and values".

    Args:
        miss: Fixed ``c_m`` (ignored when ``breakdown`` is given).
        invalidate: Fixed ``c_i``.
        update: Fixed ``c_u``.
        serve: Fixed cost of serving one read, used as the normalisation
            denominator for :math:`C'_F`.  Defaults to ``miss``.
        wal_append: Fixed cost of staging one write-ahead-log record
            (persistence layer; charged per backend write when journaling is
            enabled).
        wal_flush: Fixed cost of one fsync-style group commit of the WAL
            batch; batching ``flush_every`` records amortises this.
        l1_hit: Fixed cost of serving a read from the in-process L1 tier
            (orders of magnitude below ``miss``: no message is exchanged).
        l1_insert: Fixed cost of copying one object into the L1 (admission,
            promotion, or write-back fill).
        writeback_flush: Fixed cost of flushing one dirty L1 entry down into
            the shared L2 tier (write-back mode only).
        breakdown: Optional :class:`CostBreakdown`; when given, all costs are
            computed from it using per-request sizes.

    Example — fixed costs are size-independent, breakdown-backed costs scale:

        >>> fixed = CostModel(miss=1.0, invalidate=0.1, update=0.6)
        >>> fixed.as_tuple()
        (1.0, 0.1, 0.6)
        >>> fixed.miss_cost(value_size=4096) == fixed.miss_cost(value_size=64)
        True
        >>> scaled = CostModel.cpu_bottleneck()
        >>> scaled.miss_cost(value_size=4096) > scaled.miss_cost(value_size=64)
        True
        >>> fixed.l1_hit_cost() < fixed.miss_cost()
        True
    """

    def __init__(
        self,
        miss: float = 1.0,
        invalidate: float = 0.1,
        update: float = 0.6,
        serve: Optional[float] = None,
        wal_append: float = 0.05,
        wal_flush: float = 0.5,
        l1_hit: float = 0.02,
        l1_insert: float = 0.05,
        writeback_flush: float = 0.25,
        breakdown: Optional[CostBreakdown] = None,
    ) -> None:
        if min(miss, invalidate, update) < 0:
            raise ConfigurationError("costs must be non-negative")
        if min(wal_append, wal_flush) < 0:
            raise ConfigurationError("WAL costs must be non-negative")
        if min(l1_hit, l1_insert, writeback_flush) < 0:
            raise ConfigurationError("tier costs must be non-negative")
        if serve is not None and serve <= 0:
            raise ConfigurationError(f"serve cost must be positive, got {serve}")
        self._miss = float(miss)
        self._invalidate = float(invalidate)
        self._update = float(update)
        self._serve = float(serve) if serve is not None else float(miss)
        self._wal_append = float(wal_append)
        self._wal_flush = float(wal_flush)
        self._l1_hit = float(l1_hit)
        self._l1_insert = float(l1_insert)
        self._writeback_flush = float(writeback_flush)
        self.breakdown = breakdown

    # ------------------------------------------------------------------ #
    # Constructors for common bottleneck scenarios
    # ------------------------------------------------------------------ #
    @classmethod
    def cpu_bottleneck(
        cls, key_size: int = 16, value_size: int = 128, breakdown: Optional[CostBreakdown] = None
    ) -> "CostModel":
        """Cost model for a CPU-bottlenecked deployment (Table 1).

        The returned model is breakdown-backed, so per-request sizes are
        honoured; the ``key_size``/``value_size`` arguments only seed the
        fixed fallback values.
        """
        breakdown = breakdown or CostBreakdown()
        return cls(
            miss=breakdown.miss_cost(key_size, value_size),
            invalidate=breakdown.invalidate_cost(key_size),
            update=breakdown.update_cost(key_size, value_size),
            serve=breakdown.serve_cost(key_size, value_size),
            breakdown=breakdown,
        )

    @classmethod
    def network_bottleneck(
        cls, key_size: int = 16, value_size: int = 128, cost_per_byte: float = 0.01
    ) -> "CostModel":
        """Cost model where message bytes on the wire dominate.

        A miss moves the key to the store and the value back; an invalidate
        moves only the key; an update moves the key and the value.
        """
        breakdown = CostBreakdown(
            serialize_per_byte=cost_per_byte / 2.0,
            deserialize_per_byte=cost_per_byte / 2.0,
            read_op=0.0,
            update_op=0.0,
            delete_op=0.0,
        )
        return cls(
            miss=breakdown.miss_cost(key_size, value_size),
            invalidate=breakdown.invalidate_cost(key_size),
            update=breakdown.update_cost(key_size, value_size),
            serve=breakdown.serve_cost(key_size, value_size),
            breakdown=breakdown,
        )

    @classmethod
    def latency_priority(cls, miss: float = 1.0, update: float = 0.6) -> "CostModel":
        """Cost model for deployments that always prefer updates (§3.3).

        Setting ``c_m`` effectively to infinity makes every decision rule pick
        updates, matching the paper's "user prioritises read latency or always
        overprovisions" scenario.
        """
        return cls(miss=float("inf"), invalidate=0.0, update=update, serve=miss)

    # ------------------------------------------------------------------ #
    # Cost queries
    # ------------------------------------------------------------------ #
    def miss_cost(self, key_size: int = 16, value_size: int = 128) -> float:
        """Return ``c_m`` for an object of the given sizes."""
        if self.breakdown is not None:
            return self.breakdown.miss_cost(key_size, value_size)
        return self._miss

    def invalidate_cost(self, key_size: int = 16) -> float:
        """Return ``c_i`` for an object of the given key size."""
        if self.breakdown is not None:
            return self.breakdown.invalidate_cost(key_size)
        return self._invalidate

    def update_cost(self, key_size: int = 16, value_size: int = 128) -> float:
        """Return ``c_u`` for an object of the given sizes."""
        if self.breakdown is not None:
            return self.breakdown.update_cost(key_size, value_size)
        return self._update

    def serve_cost(self, key_size: int = 16, value_size: int = 128) -> float:
        """Return the useful work to serve one read (normalisation unit)."""
        if self.breakdown is not None:
            return self.breakdown.serve_cost(key_size, value_size)
        return self._serve

    def wal_append_cost(self, record_size: int = 64) -> float:
        """Return the cost of staging one WAL record of ``record_size`` bytes."""
        if self.breakdown is not None:
            return self.breakdown.wal_append_cost(record_size)
        return self._wal_append

    def wal_flush_cost(self) -> float:
        """Return the cost of one group commit of the staged WAL batch."""
        if self.breakdown is not None:
            return self.breakdown.wal_flush_cost()
        return self._wal_flush

    def l1_hit_cost(self, key_size: int = 16) -> float:
        """Return the cost of serving one read from the in-process L1."""
        if self.breakdown is not None:
            return self.breakdown.l1_hit_cost(key_size)
        return self._l1_hit

    def l1_insert_cost(self, key_size: int = 16, value_size: int = 128) -> float:
        """Return the cost of copying one object into the L1."""
        if self.breakdown is not None:
            return self.breakdown.l1_insert_cost(key_size, value_size)
        return self._l1_insert

    def writeback_flush_cost(self, key_size: int = 16, value_size: int = 128) -> float:
        """Return the cost of flushing one dirty L1 entry down to the L2."""
        if self.breakdown is not None:
            return self.breakdown.writeback_flush_cost(key_size, value_size)
        return self._writeback_flush

    def as_tuple(self, key_size: int = 16, value_size: int = 128) -> tuple[float, float, float]:
        """Return ``(c_m, c_i, c_u)`` for the given sizes."""
        return (
            self.miss_cost(key_size, value_size),
            self.invalidate_cost(key_size),
            self.update_cost(key_size, value_size),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c_m, c_i, c_u = self.as_tuple()
        return f"CostModel(c_m={c_m:.4g}, c_i={c_i:.4g}, c_u={c_u:.4g})"
