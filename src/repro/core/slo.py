"""Staleness SLO helpers (§3.2, "Maximizing throughput for a latency SLO").

Latency SLOs are implementation-specific, so the paper uses the stale-read
miss ratio :math:`C'_S` as a proxy: the operator specifies a bound ``C`` and
the policy must keep the fraction of reads that miss due to staleness below
it.  :class:`StalenessSLO` packages that bound together with compliance
checking against simulation results, and exposes the closed-form prediction
of whether an invalidation-based policy can meet the bound for a key with a
given read ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.model.arrivals import p_read, p_write


@dataclass(frozen=True, slots=True)
class StalenessSLO:
    """A bound ``C`` on the stale-read miss ratio :math:`C'_S`.

    Args:
        max_stale_miss_ratio: The largest acceptable fraction of reads that
            miss because the cached object was stale (``0`` means "never serve
            a stale-induced miss", which forces updates everywhere).

    Example — a 5% budget tolerates read-heavy keys under invalidation:

        >>> slo = StalenessSLO(max_stale_miss_ratio=0.05)
        >>> slo.is_met(0.03)
        True
        >>> slo.invalidation_feasible_small_t(read_ratio=0.99)
        True
        >>> slo.invalidation_feasible_small_t(read_ratio=0.5)
        False
    """

    max_stale_miss_ratio: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_stale_miss_ratio <= 1.0:
            raise ConfigurationError(
                f"max_stale_miss_ratio must be in [0, 1], got {self.max_stale_miss_ratio}"
            )

    def is_met(self, stale_miss_ratio: float) -> bool:
        """Whether an observed stale-read miss ratio complies with the SLO."""
        return stale_miss_ratio <= self.max_stale_miss_ratio + 1e-12

    def invalidation_feasible(
        self, rate: float, read_ratio: float, staleness_bound: float
    ) -> bool:
        """Whether always-invalidate can meet the SLO for a Poisson key.

        Uses the closed form :math:`C'_S = \\frac{1}{\\lambda r T}
        \\frac{P_R P_W}{P_R + P_W}` from §3.2; as ``T -> 0`` this tends to
        ``1 - r``.
        """
        if rate <= 0 or staleness_bound <= 0:
            return True
        reads = p_read(rate, read_ratio, staleness_bound)
        writes = p_write(rate, read_ratio, staleness_bound)
        if reads == 0.0:
            return True
        denominator = rate * read_ratio * staleness_bound
        predicted = (reads * writes / (reads + writes)) / denominator if denominator > 0 else 1.0 - read_ratio
        return predicted <= self.max_stale_miss_ratio + 1e-12

    def invalidation_feasible_small_t(self, read_ratio: float) -> bool:
        """The ``T -> 0`` limit: invalidation meets the SLO iff ``1 - r <= C``."""
        if not 0.0 <= read_ratio <= 1.0:
            raise ConfigurationError(f"read_ratio must be in [0, 1], got {read_ratio}")
        return (1.0 - read_ratio) <= self.max_stale_miss_ratio + 1e-12
