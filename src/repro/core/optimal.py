"""The omniscient optimal policy ("Opt." in Figure 5).

This hypothetical baseline knows both the current cache contents and the full
future request stream.  At every interval flush it therefore makes the
throughput-optimal choice for each dirty key:

* if the key is not cached (or already invalidated), no message is needed —
  the eventual miss will fetch fresh data anyway;
* if the key is cached and the next request to it is a read, refresh it with
  the cheaper of an update (``c_u``) or an invalidate-then-miss
  (``c_i + c_m``);
* if the next request to it is a write (or there are no more requests), defer:
  nothing needs to be sent until a read is actually coming, and the key will
  re-enter the dirty set at its next write.

No deployable system can implement this policy; it exists to lower-bound the
achievable freshness cost in Figure 5.
"""

from __future__ import annotations

from repro.core.policy import Action, FreshnessPolicy


class OptimalPolicy(FreshnessPolicy):
    """Omniscient lower bound on freshness cost."""

    name = "optimal"
    reacts_to_writes = True
    knows_cache_state = True
    needs_future = True

    def decide(self, key: str, time: float) -> Action:
        """Make the throughput-optimal per-key choice using future knowledge."""
        context = self.context
        entry = context.cache.peek(key)
        if entry is None or not entry.is_valid:
            # Nothing useful to refresh: a future read will pay the miss that
            # the pending invalidation (or absence) already implies.
            return Action.NOTHING
        future = context.future
        next_read = future.next_read_after(key, time) if future is not None else None
        next_write = future.next_write_after(key, time) if future is not None else None
        if next_read is None:
            # Never read again: any message would be pure waste.
            return Action.NOTHING
        if next_write is not None and next_write < next_read:
            # The value will change again before anyone reads it; deciding now
            # would pay for a refresh that is immediately obsolete.  The key
            # re-enters the dirty buffer at that write.
            return Action.NOTHING
        value_size = context.datastore.value_size(key)
        update_cost = context.costs.update_cost(value_size=value_size)
        invalidate_then_miss = context.costs.invalidate_cost() + context.costs.miss_cost(
            value_size=value_size
        )
        if update_cost <= invalidate_then_miss:
            return Action.UPDATE
        return Action.INVALIDATE
