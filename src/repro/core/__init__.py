"""Freshness policies and the cost model — the paper's primary contribution.

This package contains:

* the cost model (``c_m``, ``c_i``, ``c_u`` and the Table 1 breakdown),
* the policy interface shared by every freshness mechanism,
* the two TTL baselines (TTL-expiry and TTL-polling, §2.2),
* the two write-reactive baselines (always-invalidate and always-update, §3.1),
* the update-vs-invalidate decision rules (§3.2) and their SLO-constrained
  variant,
* the adaptive per-key policy driven by E[W] sketches (§3.3), with and
  without cache-state knowledge, and
* the omniscient optimal policy used as the upper bound in Figure 5.
"""

from repro.core.cost_model import CostBreakdown, CostModel
from repro.core.policy import Action, FreshnessPolicy, PolicyContext
from repro.core.decision import (
    DecisionRule,
    decide_with_slo,
    ew_decision,
    optimal_update_probability,
    update_preferred,
)
from repro.core.ttl import TTLExpiryPolicy, TTLPollingPolicy
from repro.core.write_reactive import AlwaysInvalidatePolicy, AlwaysUpdatePolicy
from repro.core.adaptive import AdaptivePolicy, CacheStateAdaptivePolicy
from repro.core.optimal import OptimalPolicy
from repro.core.slo import StalenessSLO

__all__ = [
    "Action",
    "AdaptivePolicy",
    "AlwaysInvalidatePolicy",
    "AlwaysUpdatePolicy",
    "CacheStateAdaptivePolicy",
    "CostBreakdown",
    "CostModel",
    "DecisionRule",
    "FreshnessPolicy",
    "OptimalPolicy",
    "PolicyContext",
    "StalenessSLO",
    "TTLExpiryPolicy",
    "TTLPollingPolicy",
    "decide_with_slo",
    "ew_decision",
    "optimal_update_probability",
    "update_preferred",
]
