"""The non-adaptive write-reactive baselines (§3.1 of the paper).

Both policies react to writes rather than timers: writes are buffered at the
backend and, at the end of every staleness interval ``T``, one message per
dirty key is emitted.

* **Always-invalidate** ("Inv." in Figure 5): send an invalidate for every
  dirty key.  The backend's invalidation tracker suppresses redundant
  invalidates for keys that are already invalidated and have not been
  re-fetched.
* **Always-update** ("Up." in Figure 5): send an update (key plus fresh value)
  for every dirty key, keeping cached copies always valid at the price of a
  larger message for every write interval — even for keys nobody reads.

Example:

    >>> from repro.core.write_reactive import AlwaysInvalidatePolicy, AlwaysUpdatePolicy
    >>> AlwaysInvalidatePolicy().decide("any-key", time=1.0).value
    'invalidate'
    >>> AlwaysUpdatePolicy().decide("any-key", time=1.0).value
    'update'
"""

from __future__ import annotations

from repro.core.policy import Action, FreshnessPolicy


class AlwaysInvalidatePolicy(FreshnessPolicy):
    """Send an invalidate for every key written during the interval."""

    name = "invalidate"
    reacts_to_writes = True

    def decide(self, key: str, time: float) -> Action:
        """Always invalidate (duplicate suppression happens in the backend)."""
        return Action.INVALIDATE


class AlwaysUpdatePolicy(FreshnessPolicy):
    """Send an update for every key written during the interval."""

    name = "update"
    reacts_to_writes = True

    def decide(self, key: str, time: float) -> Action:
        """Always push the fresh value."""
        return Action.UPDATE
