"""Update-vs-invalidate decision rules (§3.2 and §3.3 of the paper).

Three related rules are implemented:

* :func:`update_preferred` — the throughput-optimal rule derived from the
  online-gap formulation: send updates when
  ``c_u < P_R(T) / (P_R(T) + P_W(T)) * (c_m + c_i)``, which reduces to
  ``c_u < r * (c_m + c_i)`` as ``T -> 0``.
* :func:`ew_decision` — the pragmatic per-key approximation that uses
  ``E[W]``, the expected number of writes between reads: a run of ``E[W]``
  writes followed by a read costs ``E[W] * c_u`` under updates versus
  ``c_i + c_m`` under invalidation, so updates are preferred when
  ``E[W] * c_u < c_i + c_m``.

  .. note::
     The paper's prose states the comparison the other way around ("pick
     invalidate if E[W] c_u < c_m + c_i"); the cost argument in the same
     paragraph (E[W] updates vs. one invalidate plus one miss) implies the
     inequality selects *updates*, which is what this implementation does.
* :func:`decide_with_slo` — the throughput rule augmented with a staleness
  SLO: updates are chosen either when they are cheaper or when invalidation
  would violate the allowed stale-read ratio (``1 - r > C`` as ``T -> 0``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import Action
from repro.errors import ConfigurationError


def update_preferred(
    p_read: float,
    p_write: float,
    miss_cost: float,
    invalidate_cost: float,
    update_cost: float,
) -> bool:
    """Return whether updates minimise throughput overhead (§3.2).

    Args:
        p_read: ``P_R(T)``, probability of at least one read in an interval.
        p_write: ``P_W(T)``, probability of at least one write in an interval.
        miss_cost: ``c_m``.
        invalidate_cost: ``c_i``.
        update_cost: ``c_u``.

    Returns:
        ``True`` when ``c_u < P_R / (P_R + P_W) * (c_m + c_i)``.  If both
        probabilities are zero (no traffic), invalidation is (vacuously)
        preferred since an update can never pay off.

    Example — read-heavy keys prefer updates, write-heavy keys do not:

        >>> update_preferred(0.9, 0.1, miss_cost=1.0, invalidate_cost=0.1, update_cost=0.6)
        True
        >>> update_preferred(0.1, 0.9, miss_cost=1.0, invalidate_cost=0.1, update_cost=0.6)
        False
    """
    for name, value in (("p_read", p_read), ("p_write", p_write)):
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    total = p_read + p_write
    if total == 0.0:
        return False
    threshold = p_read / total * (miss_cost + invalidate_cost)
    return update_cost < threshold


def update_preferred_small_t(
    read_ratio: float, miss_cost: float, invalidate_cost: float, update_cost: float
) -> bool:
    """The ``T -> 0`` limit of :func:`update_preferred`: ``c_u < r (c_m + c_i)``."""
    if not 0.0 <= read_ratio <= 1.0:
        raise ConfigurationError(f"read_ratio must be in [0, 1], got {read_ratio}")
    return update_cost < read_ratio * (miss_cost + invalidate_cost)


def ew_decision(
    expected_writes_between_reads: float,
    miss_cost: float,
    invalidate_cost: float,
    update_cost: float,
) -> Action:
    """Pick update or invalidate from an ``E[W]`` estimate (§3.3).

    A run of ``E[W]`` writes followed by a read costs ``E[W] * c_u`` under an
    update policy versus ``c_i + c_m`` under invalidation (one invalidate, one
    miss), so updates win when ``E[W] * c_u < c_i + c_m``.

    Args:
        expected_writes_between_reads: The ``E[W]`` estimate (>= 0).
        miss_cost: ``c_m``.
        invalidate_cost: ``c_i``.
        update_cost: ``c_u``.

    Returns:
        :attr:`Action.UPDATE` or :attr:`Action.INVALIDATE`.

    Example — a rarely-written key takes updates, a write-storm key does not:

        >>> ew_decision(0.5, miss_cost=1.0, invalidate_cost=0.1, update_cost=0.6).value
        'update'
        >>> ew_decision(10.0, miss_cost=1.0, invalidate_cost=0.1, update_cost=0.6).value
        'invalidate'
    """
    if expected_writes_between_reads < 0:
        raise ConfigurationError(
            f"E[W] must be non-negative, got {expected_writes_between_reads}"
        )
    update_run_cost = expected_writes_between_reads * update_cost
    invalidate_run_cost = invalidate_cost + miss_cost
    if update_run_cost < invalidate_run_cost:
        return Action.UPDATE
    return Action.INVALIDATE


def decide_with_slo(
    read_ratio: float,
    miss_cost: float,
    invalidate_cost: float,
    update_cost: float,
    staleness_slo: float,
) -> Action:
    """Throughput decision constrained by a staleness SLO (§3.2, ``T -> 0``).

    The backend chooses updates if either

    * updates are cheaper anyway (``(c_i + c_m) * r > c_u``), or
    * invalidation would exceed the allowed stale-read ratio
      (``1 - r > C`` where ``C`` is the user's bound on :math:`C'_S`),

    and chooses invalidates otherwise.

    Args:
        read_ratio: Per-key read probability ``r``.
        miss_cost: ``c_m``.
        invalidate_cost: ``c_i``.
        update_cost: ``c_u``.
        staleness_slo: Maximum tolerated stale-read miss ratio ``C``.

    Returns:
        :attr:`Action.UPDATE` or :attr:`Action.INVALIDATE`.
    """
    if not 0.0 <= read_ratio <= 1.0:
        raise ConfigurationError(f"read_ratio must be in [0, 1], got {read_ratio}")
    if staleness_slo < 0:
        raise ConfigurationError(f"staleness_slo must be >= 0, got {staleness_slo}")
    cheaper_to_update = (invalidate_cost + miss_cost) * read_ratio > update_cost
    slo_requires_update = (1.0 - read_ratio) > staleness_slo
    if cheaper_to_update or slo_requires_update:
        return Action.UPDATE
    return Action.INVALIDATE


def optimal_update_probability(
    p_read: float,
    p_write: float,
    miss_cost: float,
    invalidate_cost: float,
    update_cost: float,
) -> float:
    """Return the gap-minimising update probability ``k`` (§3.2).

    The expected gap ``G`` is linear in ``k``, so the optimum is at an
    endpoint: ``k = 1`` (always update) when the coefficient of ``k`` is
    negative, ``k = 0`` (always invalidate) otherwise.
    """
    return 1.0 if update_preferred(p_read, p_write, miss_cost, invalidate_cost, update_cost) else 0.0


@dataclass(frozen=True, slots=True)
class DecisionRule:
    """A reusable, cost-parameterised decision rule.

    Bundles the cost parameters so call sites only supply the per-key
    statistics.  Used by the adaptive policies and by the experiments that
    check sketch decision accuracy (Figure 6b).

    Example:

        >>> rule = DecisionRule(miss_cost=1.0, invalidate_cost=0.1, update_cost=0.6)
        >>> rule.from_ew(0.5).value
        'update'
        >>> DecisionRule(1.0, 0.1, 0.6, staleness_slo=0.0).from_ew(10.0).value
        'update'
    """

    miss_cost: float
    invalidate_cost: float
    update_cost: float
    staleness_slo: float | None = None

    def from_ew(self, expected_writes_between_reads: float) -> Action:
        """Decide from an ``E[W]`` estimate, honouring the SLO if configured."""
        if self.staleness_slo is not None:
            # E[W] = (1 - r) / r  =>  r = 1 / (1 + E[W]).
            read_ratio = 1.0 / (1.0 + max(expected_writes_between_reads, 0.0))
            return decide_with_slo(
                read_ratio=read_ratio,
                miss_cost=self.miss_cost,
                invalidate_cost=self.invalidate_cost,
                update_cost=self.update_cost,
                staleness_slo=self.staleness_slo,
            )
        return ew_decision(
            expected_writes_between_reads,
            miss_cost=self.miss_cost,
            invalidate_cost=self.invalidate_cost,
            update_cost=self.update_cost,
        )

    def from_probabilities(self, p_read: float, p_write: float) -> Action:
        """Decide from interval read/write probabilities (§3.2 rule)."""
        if update_preferred(
            p_read, p_write, self.miss_cost, self.invalidate_cost, self.update_cost
        ):
            return Action.UPDATE
        return Action.INVALIDATE
