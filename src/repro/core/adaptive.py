"""The adaptive per-key freshness policy (§3.2–§3.3, "Adpt." in Figure 5).

The policy reacts to writes and, for every dirty key at an interval flush,
chooses between sending an update and an invalidate using the pragmatic
``E[W]`` rule: updates are cheaper when ``E[W] * c_u < c_i + c_m``, where
``E[W]`` — the expected number of writes between reads — is estimated per key
by a pluggable sketch (:mod:`repro.sketch`).

Decisions are made strictly per key, with no state shared across keys, which
is what makes the policy cheap to implement at the backend or at a proxy.

:class:`CacheStateAdaptivePolicy` ("Adpt. + C.S.") is the hypothetical variant
that additionally knows which keys are currently cached and therefore never
wastes a message on an uncached key; the paper uses it to quantify how much
the per-object independence assumption costs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.decision import DecisionRule
from repro.core.policy import Action, FreshnessPolicy, PolicyContext
from repro.sketch.base import EWEstimator
from repro.sketch.exact import ExactEWTracker


class AdaptivePolicy(FreshnessPolicy):
    """Per-key adaptive choice between updates and invalidates.

    Args:
        estimator: The ``E[W]`` estimator fed with every read and write.
            Defaults to exact per-key tracking; pass a
            :class:`~repro.sketch.countmin.CountMinEWSketch` or
            :class:`~repro.sketch.topk.TopKEWSketch` to trade accuracy for
            memory (Figure 6).
        staleness_slo: Optional bound on the stale-read miss ratio
            (:math:`C'_S \\le C`).  When set, the SLO-constrained rule of
            §3.2 is used instead of the pure throughput rule ("Adpt." vs the
            SLO scenario discussed in the paper).

    Example — the estimator learns E[W] from the observed stream:

        >>> policy = AdaptivePolicy()
        >>> for _ in range(4):
        ...     policy.observe_write("k", time=0.0)
        >>> policy.observe_read("k", time=1.0)
        >>> policy.estimator.estimate("k")
        4.0
    """

    name = "adaptive"
    reacts_to_writes = True

    def __init__(
        self,
        estimator: Optional[EWEstimator] = None,
        staleness_slo: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.estimator = estimator if estimator is not None else ExactEWTracker()
        self.staleness_slo = staleness_slo
        self._rule: Optional[DecisionRule] = None
        self.decisions_update = 0
        self.decisions_invalidate = 0

    def bind(self, context: PolicyContext) -> None:
        """Attach to a run and pre-build the decision rule from default sizes."""
        super().bind(context)
        self.decisions_update = 0
        self.decisions_invalidate = 0

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe_read(self, key: str, time: float) -> None:
        """Feed the read into the E[W] estimator."""
        self.estimator.observe_read(key)

    def observe_write(self, key: str, time: float) -> None:
        """Feed the write into the E[W] estimator."""
        self.estimator.observe_write(key)

    # ------------------------------------------------------------------ #
    # Decision
    # ------------------------------------------------------------------ #
    def _decision_rule_for(self, key: str) -> DecisionRule:
        """Build the decision rule for ``key`` using its object sizes."""
        costs = self.context.costs
        datastore = self.context.datastore
        value_size = datastore.value_size(key)
        return DecisionRule(
            miss_cost=costs.miss_cost(value_size=value_size),
            invalidate_cost=costs.invalidate_cost(),
            update_cost=costs.update_cost(value_size=value_size),
            staleness_slo=self.staleness_slo,
        )

    def decide(self, key: str, time: float) -> Action:
        """Pick update or invalidate for ``key`` from its E[W] estimate."""
        rule = self._decision_rule_for(key)
        action = rule.from_ew(self.estimator.estimate(key))
        if action is Action.UPDATE:
            self.decisions_update += 1
        else:
            self.decisions_invalidate += 1
        return action


class CacheStateAdaptivePolicy(AdaptivePolicy):
    """Adaptive policy that also knows which keys are currently cached.

    Identical to :class:`AdaptivePolicy` except that dirty keys not present in
    the cache receive no message at all — the backend "knows" the message
    would be wasted.  Comparing the two quantifies the cost of the paper's
    per-object independence assumption (Figure 5, "Adpt. + C.S.").
    """

    name = "adaptive+cs"
    knows_cache_state = True

    def decide(self, key: str, time: float) -> Action:
        """Skip uncached keys, otherwise decide exactly like the base policy."""
        if not self.context.cache.contains_valid(key):
            # A key that is cached but already invalidated also needs no
            # further message: the pending miss will re-fetch it.
            if self.context.cache.peek(key) is None or not self.context.cache.peek(key).is_valid:
                return Action.NOTHING
        return super().decide(key, time)
