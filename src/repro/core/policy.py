"""The freshness-policy interface.

A freshness policy decides how cached data is kept within the staleness bound
``T``.  Policies fall into two families:

* **TTL-based** (``ttl_mode`` set): decisions are driven by a timer local to
  the cache; the backend is never consulted.
* **Write-reactive** (``reacts_to_writes`` set): writes are buffered at the
  backend and, at the end of every interval of length ``T``, the policy
  chooses an :class:`Action` per dirty key — send an update, send an
  invalidate, or do nothing.

The simulator (:mod:`repro.sim.simulation`) binds the policy to a
:class:`PolicyContext` carrying the cost model, the staleness bound, and the
components the policy is allowed to inspect.  Policies that claim cache-state
knowledge or future knowledge (the hypothetical baselines in Figure 5) access
those through the context; the plain adaptive policy does not touch them.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.backend.datastore import DataStore
    from repro.backend.invalidation_tracker import InvalidationTracker
    from repro.cache.cache import Cache
    from repro.core.cost_model import CostModel
    from repro.workload.base import Request


class Action(Enum):
    """Per-key decision taken at an interval flush.

    Example:

        >>> Action("update") is Action.UPDATE
        True
        >>> str(Action.INVALIDATE)
        'invalidate'
    """

    UPDATE = "update"
    INVALIDATE = "invalidate"
    NOTHING = "nothing"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(slots=True)
class FutureIndex:
    """Per-key index of future requests, available to omniscient policies.

    ``reads[key]`` and ``writes[key]`` are sorted lists of request times.  The
    omniscient optimal policy uses this to know whether the next request to a
    key is a read or a write.

    Example:

        >>> from repro.workload.base import OpType, Request
        >>> index = FutureIndex.from_requests([
        ...     Request(time=1.0, key="k", op=OpType.READ),
        ...     Request(time=2.0, key="k", op=OpType.WRITE),
        ... ])
        >>> index.next_write_after("k", 1.0)
        2.0
        >>> index.next_read_after("k", 1.0) is None
        True
    """

    reads: Dict[str, List[float]] = field(default_factory=dict)
    writes: Dict[str, List[float]] = field(default_factory=dict)

    @classmethod
    def from_requests(cls, requests: List["Request"]) -> "FutureIndex":
        """Build the index from a time-ordered request stream."""
        index = cls()
        for request in requests:
            target = index.reads if request.is_read else index.writes
            target.setdefault(request.key, []).append(request.time)
        return index

    def next_read_after(self, key: str, time: float) -> Optional[float]:
        """Return the time of the first read of ``key`` strictly after ``time``."""
        return _first_after(self.reads.get(key), time)

    def next_write_after(self, key: str, time: float) -> Optional[float]:
        """Return the time of the first write of ``key`` strictly after ``time``."""
        return _first_after(self.writes.get(key), time)


def _first_after(times: Optional[List[float]], time: float) -> Optional[float]:
    """Return the first element of a sorted list strictly greater than ``time``."""
    if not times:
        return None
    from bisect import bisect_right

    index = bisect_right(times, time)
    if index >= len(times):
        return None
    return times[index]


@dataclass(slots=True)
class PolicyContext:
    """Everything a policy may consult when making decisions.

    Attributes:
        costs: The cost model (``c_m``, ``c_i``, ``c_u``).
        staleness_bound: The target staleness bound ``T`` in seconds.
        cache: The cache (only policies with ``knows_cache_state`` should
            inspect it).
        datastore: The backend store.
        tracker: The backend's invalidated-keys tracker.
        future: Per-key future request index (only for ``needs_future``
            policies, i.e. the omniscient optimal baseline).
    """

    costs: "CostModel"
    staleness_bound: float
    cache: "Cache"
    datastore: "DataStore"
    tracker: "InvalidationTracker"
    future: Optional[FutureIndex] = None


class FreshnessPolicy(ABC):
    """Base class for all freshness policies.

    Subclasses set the class attributes that tell the simulator which
    machinery to engage (TTL timers vs. write buffering) and override the
    observation/decision hooks they need.
    """

    #: Human-readable name used in experiment reports.
    name: str = "policy"
    #: ``"expiry"``, ``"polling"``, or ``None`` for non-TTL policies.
    ttl_mode: Optional[str] = None
    #: Whether the backend should buffer writes and call :meth:`decide` at
    #: every interval flush.
    reacts_to_writes: bool = False
    #: Whether the policy may inspect ``context.cache`` (the "C.S." baselines).
    knows_cache_state: bool = False
    #: Whether the policy needs the future request index (the "Opt." baseline).
    needs_future: bool = False

    def __init__(self) -> None:
        self.context: Optional[PolicyContext] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def bind(self, context: PolicyContext) -> None:
        """Attach the policy to a simulation run."""
        self.context = context

    def reset(self) -> None:
        """Clear any per-run state (called between simulation runs)."""
        self.context = None

    # ------------------------------------------------------------------ #
    # Observation hooks (called for every request, in time order)
    # ------------------------------------------------------------------ #
    def observe_read(self, key: str, time: float) -> None:
        """Observe a read request (before the cache lookup)."""

    def observe_write(self, key: str, time: float) -> None:
        """Observe a write request (after it is applied to the backend)."""

    # ------------------------------------------------------------------ #
    # Decision hook (write-reactive policies only)
    # ------------------------------------------------------------------ #
    def decide(self, key: str, time: float) -> Action:
        """Choose the action for a dirty key at an interval flush.

        Only called when ``reacts_to_writes`` is true.  ``time`` is the flush
        time (the end of the interval during which the key was written).
        """
        return Action.NOTHING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
