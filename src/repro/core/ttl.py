"""TTL-based freshness policies (§2.2 of the paper).

Both policies attach a timer of duration ``T`` (the staleness bound, unless
overridden) to every object brought into the cache:

* **TTL-expiry**: when the timer fires, the object is expired; the next read
  misses and re-fetches it.  Staleness cost is paid on every such miss; the
  freshness cost is the re-fetch (``c_m``) for those misses.
* **TTL-polling**: when the timer fires, the object is re-fetched from the
  backend immediately, so cached data is never stale (``C_S = 0``) but a
  ``c_m`` is paid every interval for every cached object.

Neither policy requires any coordination with the backend, which is why TTLs
are easy to deploy — and why their overhead explodes as ``T`` shrinks to
real-time scales.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import FreshnessPolicy
from repro.errors import ConfigurationError


class _TTLPolicy(FreshnessPolicy):
    """Shared plumbing for the two TTL variants."""

    def __init__(self, ttl: Optional[float] = None) -> None:
        super().__init__()
        if ttl is not None and ttl <= 0:
            raise ConfigurationError(f"ttl must be positive, got {ttl}")
        self._ttl_override = ttl

    @property
    def ttl(self) -> float:
        """The timer duration: the explicit override or the staleness bound."""
        if self._ttl_override is not None:
            return self._ttl_override
        if self.context is None:
            raise ConfigurationError(
                "TTL policy is not bound to a simulation and has no explicit ttl"
            )
        return self.context.staleness_bound

    def expiry_time(self, fetched_at: float) -> float:
        """Time at which an object fetched at ``fetched_at`` expires."""
        return fetched_at + self.ttl


class TTLExpiryPolicy(_TTLPolicy):
    """Expire cached objects when their TTL lapses.

    Args:
        ttl: Timer duration in seconds.  Defaults to the simulation's
            staleness bound, which is the largest value that still satisfies
            the bound.
    """

    name = "ttl-expiry"
    ttl_mode = "expiry"

    def is_expired(self, fetched_at: float, now: float) -> bool:
        """Whether an object fetched at ``fetched_at`` has expired by ``now``.

        Example:

            >>> policy = TTLExpiryPolicy(ttl=1.0)
            >>> policy.is_expired(fetched_at=0.0, now=0.5)
            False
            >>> policy.is_expired(fetched_at=0.0, now=1.0)
            True
        """
        return now >= self.expiry_time(fetched_at)


class TTLPollingPolicy(_TTLPolicy):
    """Re-fetch cached objects from the backend every TTL interval.

    Args:
        ttl: Timer duration in seconds.  Defaults to the simulation's
            staleness bound.
    """

    name = "ttl-polling"
    ttl_mode = "polling"

    def polls_between(self, anchor: float, accounted_until: float, now: float) -> int:
        """Number of polls for an entry between two accounting points.

        Polls occur at ``anchor + k * ttl`` for ``k = 1, 2, ...``.  The
        simulator accounts for them lazily (there is no need to simulate each
        poll as an event since polling cost does not depend on the request
        stream), so this returns how many polls fall in
        ``(accounted_until, now]``.

        Example — three polls in the first 3.5 seconds, none of them re-counted:

            >>> policy = TTLPollingPolicy(ttl=1.0)
            >>> policy.polls_between(anchor=0.0, accounted_until=0.0, now=3.5)
            3
            >>> policy.polls_between(anchor=0.0, accounted_until=3.5, now=4.5)
            1
        """
        if now <= anchor:
            return 0
        ttl = self.ttl
        total_by_now = int((now - anchor) / ttl)
        total_by_accounted = int(max(accounted_until - anchor, 0.0) / ttl) if accounted_until > anchor else 0
        return max(total_by_now - total_by_accounted, 0)

    def last_poll_at_or_before(self, anchor: float, now: float) -> float:
        """Time of the most recent poll at or before ``now`` (or the anchor)."""
        if now <= anchor:
            return anchor
        ttl = self.ttl
        k = int((now - anchor) / ttl)
        return anchor + k * ttl


def account_entry_polls(
    entry, now: float, ttl: float, result, costs, miss_const
) -> Optional[float]:
    """Settle one entry's lazily-accounted polls (the replay hot path).

    The single shared implementation of the arithmetic in
    :meth:`TTLPollingPolicy.polls_between` and
    :meth:`TTLPollingPolicy.last_poll_at_or_before`, specialised for a TTL
    resolved once at bind time — both the single-cache simulator and every
    cluster node call this once per read under TTL-polling, so it avoids the
    ``ttl`` property and ``isinstance`` checks of the policy methods.  The
    equivalence with those methods is pinned by the tests.

    Args:
        entry: The cache entry being settled (mutated in place).
        now: The settling instant.
        ttl: The poll interval resolved at bind time.
        result: Counter sink with ``polls`` / ``freshness_cost`` fields.
        costs: The run's cost model.
        miss_const: Precomputed fixed-preset miss cost, or ``None`` to charge
            per-entry sizes through ``costs.miss_cost``.

    Returns:
        The most recent poll time when polls were charged, else ``None`` —
        the caller refreshes the entry's backend version for that instant.
    """
    anchor = entry.fetched_at
    if now <= anchor:
        return None
    accounted = entry.last_poll_accounted
    k_now = int((now - anchor) / ttl)
    polls = k_now - (int((accounted - anchor) / ttl) if accounted > anchor else 0)
    if polls <= 0:
        return None
    result.polls += polls
    miss = miss_const
    if miss is None:
        miss = costs.miss_cost(entry.key_size, entry.value_size)
    result.freshness_cost += polls * miss
    # Each poll refreshes the cached copy, so the entry now reflects the
    # backend as of the most recent poll.
    last_poll = anchor + k_now * ttl
    entry.last_poll_accounted = last_poll
    if last_poll > entry.as_of:
        entry.as_of = last_poll
    return last_poll
