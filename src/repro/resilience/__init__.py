"""Fleet resilience: elastic scaling, gray failures, and chaos injection.

This package closes ROADMAP item 5 on top of the cluster substrate:

* :mod:`repro.resilience.autoscale` — a deterministic autoscaler scenario
  that grows/shrinks the fleet mid-run from load and hot-key pressure,
  measured against the ideal-elasticity baseline (instant, free scaling).
* :mod:`repro.resilience.scenarios` — the richer failure taxonomy:
  ``gray-failure`` (slow-but-alive nodes), ``zone-outage`` (correlated loss
  of a failure domain), ``flapping`` (membership churn faster than
  detection).
* :mod:`repro.resilience.chaos` — seeded, composable fault plans (delay,
  drop, slow-node, crash) injected alongside any scenario, plus the
  retry/timeout/backoff knobs on :class:`~repro.backend.channel.Channel`.

Everything is a pure function of (workload, config, seed): fault plans draw
from their own seeded stream, scenarios script timed events, and replays are
byte-identical across engines and worker counts (shard-parallel replay
refuses — rather than approximates — the one scenario that cannot shard,
the autoscaler, whose decisions need the full fleet's signals).
"""

from repro.resilience.autoscale import AutoscaleScenario
from repro.resilience.chaos import ChaosPlan, ChaosSpec, as_chaos_plan
from repro.resilience.scenarios import (
    RESILIENCE_SCENARIOS,
    FlappingScenario,
    GrayFailureScenario,
    ZoneOutageScenario,
)

__all__ = [
    "AutoscaleScenario",
    "ChaosPlan",
    "ChaosSpec",
    "FlappingScenario",
    "GrayFailureScenario",
    "RESILIENCE_SCENARIOS",
    "ZoneOutageScenario",
    "as_chaos_plan",
]
