"""Deterministic chaos injection: seeded fault plans over the fleet.

A :class:`ChaosSpec` is a small frozen description — seed, fault budget,
which fault kinds to draw from, and the per-kind severity knobs.  Binding it
against a concrete run (duration, fleet size) expands it into a
:class:`ChaosPlan`: a fixed schedule of timed faults drawn from a dedicated
``random.Random(seed ^ salt)`` stream, entirely decoupled from the channels'
and samplers' streams, so the same spec produces the same faults on every
engine and worker count.

Fault kinds:

* ``delay`` — a target node's freshness channel gains extra constant delay
  for a window (degraded-but-alive link).
* ``drop`` — the channel gains partial message loss for a window.
* ``slow-node`` — the target's backend fetches slow down by a factor for a
  window (requires the in-flight fetch model, which is what models service
  time at all).
* ``crash`` — the target node loses its volatile state at an instant
  (crash + immediate restart, cache cold).

Plans compose with any scenario: the cluster merges the scenario's events
and the plan's events into one timed schedule.  Note that freshness traffic
is batched at flush boundaries (every ``staleness_bound`` seconds), so a
``delay``/``drop`` window only affects messages when it spans a boundary —
short windows between two flushes are no-ops by construction, exactly as a
real blip between two propagation rounds would be.  Every fault is applied in
every shard of a shard-parallel replay, so membership and channel state stay
in lockstep and rows remain byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.scenarios import ScenarioEvent
from repro.errors import ClusterError

#: XOR'd into the spec seed for the plan's draw stream, decorrelating it
#: from the per-node channel/detector/sampler streams derived from the cell
#: seed.
CHAOS_SEED_SALT = 0xC4A05AA1

_KINDS = ("delay", "drop", "slow-node", "crash")


@dataclass(frozen=True, slots=True)
class ChaosSpec:
    """Seeded fault-plan description (hashable, picklable).

    Args:
        seed: Seed of the plan's own draw stream.
        faults: How many faults to inject.
        kinds: Fault kinds to draw from (uniformly).
        window: Fraction of the run each windowed fault (delay/drop/slow)
            lasts.
        start / end: Fractions of the run bounding the injection window.
        delay: Extra channel delay of a ``delay`` fault, in seconds.
        loss: Partial loss rate of a ``drop`` fault.
        slowdown: Service-time multiplier of a ``slow-node`` fault.
    """

    seed: int = 0
    faults: int = 4
    kinds: Tuple[str, ...] = _KINDS
    window: float = 0.1
    start: float = 0.1
    end: float = 0.9
    delay: float = 0.5
    loss: float = 0.5
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.faults < 1:
            raise ClusterError(f"chaos faults must be >= 1, got {self.faults}")
        if not self.kinds:
            raise ClusterError("chaos kinds must name at least one fault kind")
        for kind in self.kinds:
            if kind not in _KINDS:
                raise ClusterError(
                    f"unknown chaos fault kind {kind!r}; expected one of {_KINDS}"
                )
        if not 0.0 <= self.start < self.end <= 1.0:
            raise ClusterError(
                f"chaos window must satisfy 0 <= start < end <= 1, got "
                f"[{self.start}, {self.end}]"
            )
        if not 0.0 < self.window <= 1.0:
            raise ClusterError(f"chaos window must be in (0, 1], got {self.window}")
        if not 0.0 <= self.loss <= 1.0:
            raise ClusterError(f"chaos loss must be in [0, 1], got {self.loss}")
        if self.delay < 0:
            raise ClusterError(f"chaos delay must be >= 0, got {self.delay}")
        if self.slowdown < 1.0:
            raise ClusterError(f"chaos slowdown must be >= 1, got {self.slowdown}")

    def describe(self) -> Dict[str, Any]:
        """Spec coordinates recorded next to the results."""
        return {
            "seed": self.seed,
            "faults": self.faults,
            "kinds": list(self.kinds),
            "window": self.window,
            "start": self.start,
            "end": self.end,
            "delay": self.delay,
            "loss": self.loss,
            "slowdown": self.slowdown,
        }


@dataclass(slots=True)
class _Fault:
    """One drawn fault: kind, target node index, and its time window."""

    kind: str
    node_index: int
    at: float
    until: float

    def label(self) -> str:
        return f"chaos-{self.kind}:{self.node_index}"


class ChaosPlan:
    """A bound fault schedule, re-expandable against any run horizon."""

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self.faults: List[_Fault] = []
        self._bound = False

    @property
    def needs_concurrency(self) -> bool:
        """Whether the *spec* may draw slow-node faults.

        Checked before binding: the refusal is on the spec, not the draw, so
        a plan never silently degrades when the dice happen to avoid
        ``slow-node``.
        """
        return "slow-node" in self.spec.kinds

    def bind(self, duration: float, num_nodes: int) -> None:
        """Draw the fault schedule against a concrete run.

        Re-binding re-draws from scratch (same seed, same faults), so the
        same plan object can drive sequential shard replays.
        """
        spec = self.spec
        rng = random.Random((spec.seed ^ CHAOS_SEED_SALT) % 2**32)
        lo = spec.start * duration
        hi = spec.end * duration
        window = spec.window * duration
        self.faults = []
        for _ in range(spec.faults):
            kind = spec.kinds[rng.randrange(len(spec.kinds))]
            node_index = rng.randrange(num_nodes)
            at = lo + rng.random() * (hi - lo)
            self.faults.append(
                _Fault(kind=kind, node_index=node_index, at=at, until=at + window)
            )
        # Deterministic application order at equal times.
        self.faults.sort(key=lambda fault: (fault.at, fault.node_index, fault.kind))
        self._bound = True

    def events(self) -> List[ScenarioEvent]:
        """Expand the drawn faults into timed cluster events.

        Windowed faults that overlap on one node *compose* rather than
        clobber: at every window boundary the event re-applies the overlay of
        all faults still active there — losses compose independently, delays
        add, and a slowdown holds until the last overlapping slow window
        closes — so a short fault ending inside a longer one never clears the
        longer one early.
        """
        if not self._bound:
            raise ClusterError("ChaosPlan.events() called before bind()")
        events: List[ScenarioEvent] = []
        channel_faults: Dict[int, List[_Fault]] = {}
        slow_faults: Dict[int, List[_Fault]] = {}
        for fault in self.faults:
            if fault.kind in ("delay", "drop"):
                channel_faults.setdefault(fault.node_index, []).append(fault)
            elif fault.kind == "slow-node":
                slow_faults.setdefault(fault.node_index, []).append(fault)
            else:  # crash
                events.append(
                    ScenarioEvent(
                        time=fault.at,
                        label=fault.label(),
                        apply=_crash_apply(fault.node_index),
                    )
                )
        for index, faults in sorted(channel_faults.items()):
            events.extend(self._channel_boundary_events(index, faults))
        for index, faults in sorted(slow_faults.items()):
            events.extend(self._slow_boundary_events(index, faults))
        return events

    def _channel_boundary_events(
        self, index: int, faults: List[_Fault]
    ) -> List[ScenarioEvent]:
        events: List[ScenarioEvent] = []
        for boundary_fault, time, ending in _boundaries(faults):
            loss_keep = 1.0
            delay = 0.0
            for fault in faults:
                if fault.at <= time < fault.until:
                    if fault.kind == "drop":
                        loss_keep *= 1.0 - self.spec.loss
                    else:
                        delay += self.spec.delay
            loss = 1.0 - loss_keep
            label = boundary_fault.label() + (":end" if ending else "")
            events.append(
                ScenarioEvent(
                    time=time,
                    label=label,
                    apply=_channel_overlay_apply(index, loss, delay),
                )
            )
        return events

    def _slow_boundary_events(
        self, index: int, faults: List[_Fault]
    ) -> List[ScenarioEvent]:
        events: List[ScenarioEvent] = []
        for boundary_fault, time, ending in _boundaries(faults):
            active = any(fault.at <= time < fault.until for fault in faults)
            slowdown = self.spec.slowdown if active else 1.0
            label = boundary_fault.label() + (":end" if ending else "")
            events.append(
                ScenarioEvent(
                    time=time,
                    label=label,
                    apply=_slowdown_apply(index, slowdown),
                )
            )
        return events

    def describe(self) -> Dict[str, Any]:
        """Spec coordinates (the drawn schedule is implied by them)."""
        return self.spec.describe()


def _boundaries(faults: List[_Fault]) -> List[Tuple[_Fault, float, bool]]:
    """Window start/end boundaries in application order.

    Each entry is ``(fault, time, is_end)``; sorted by time with starts
    before ends at ties so a window opening exactly when another closes
    keeps the overlay alive across the seam.
    """
    edges = [(fault.at, 0, fault, False) for fault in faults]
    edges += [(fault.until, 1, fault, True) for fault in faults]
    edges.sort(key=lambda edge: (edge[0], edge[1], edge[2].node_index, edge[2].kind))
    return [(fault, time, ending) for time, _, fault, ending in edges]


def _channel_overlay_apply(index: int, loss: float, delay: float) -> Any:
    def apply(cluster: Any, time: float) -> None:
        channel = cluster.node_at(index).channel
        if loss == 0.0 and delay == 0.0:
            channel.clear_degraded()
        else:
            channel.set_degraded(loss=loss, delay=delay)

    return apply


def _slowdown_apply(index: int, slowdown: float) -> Any:
    def apply(cluster: Any, time: float) -> None:
        cluster.node_at(index).fetches.slowdown = slowdown

    return apply


def _crash_apply(index: int) -> Any:
    def crash(cluster: Any, time: float) -> None:
        cluster.node_at(index).crash(time)

    return crash


def as_chaos_plan(chaos: Optional[Any]) -> Optional[ChaosPlan]:
    """Normalize ``None`` / :class:`ChaosSpec` / :class:`ChaosPlan`."""
    if chaos is None:
        return None
    if isinstance(chaos, ChaosPlan):
        return chaos
    if isinstance(chaos, ChaosSpec):
        return ChaosPlan(chaos)
    raise ClusterError(
        f"chaos must be a ChaosSpec or ChaosPlan, got {type(chaos).__name__}"
    )
