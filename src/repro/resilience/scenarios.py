"""The richer failure taxonomy: gray failures, zone outages, flapping.

These scenarios extend the clean fail-silent taxonomy of
:mod:`repro.cluster.scenarios` with the degraded regimes that dominate real
availability:

* ``gray-failure`` — nodes that are slow but alive: their backend fetches
  run ``slowdown`` times longer (via the in-flight fetch model) and their
  freshness channel turns partially lossy, so they keep answering reads —
  increasingly stale, past the bound — while every health signal that only
  checks liveness stays green.
* ``zone-outage`` — every node labeled with one failure-domain ``zone``
  fails together, is detected together, and rejoins together: correlated
  loss, the case replication factors are chosen against.
* ``flapping`` — one node repeatedly fails and recovers faster than
  detection converges (``mode="silent"``), or repeatedly leaves and rejoins
  the ring (``mode="ring"``), coming back each time behind a degraded link.

All three are pure timed-event scripts over seeded state, so they replay
byte-identically on every engine (the vector planner falls back to the
scalar loop for any scenario subclass) and at any shard-parallel worker
count (events are applied in every shard).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.cluster.scenarios import Scenario, ScenarioEvent
from repro.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import ClusterSimulation


class GrayFailureScenario(Scenario):
    """Slow-but-alive nodes serving stale past the bound.

    Between ``degrade_at`` and ``recover_at`` each affected node's backend
    fetches take ``slowdown`` times their sampled service time and its
    freshness channel drops messages with probability ``loss`` (plus
    ``delay`` seconds of extra latency).  The node never leaves the ring:
    reads keep landing on it, stale-serving policies keep answering from the
    aging cache, and missed invalidates push those serves past the bound —
    the defining signature of a gray failure versus a detected fail-silent
    one.

    Args:
        node_indices: Indices of the gray nodes (default: node 0).
        degrade_at: Window start (default ``0.3 * duration``).
        recover_at: Window end (default ``0.85 * duration``).
        slowdown: Service-time multiplier inside the window (>= 1).
        loss: Freshness-message loss rate inside the window.
        delay: Extra freshness-message delay inside the window, seconds.
    """

    name = "gray-failure"

    def __init__(
        self,
        node_indices: Sequence[int] = (0,),
        degrade_at: Optional[float] = None,
        recover_at: Optional[float] = None,
        slowdown: float = 8.0,
        loss: float = 0.5,
        delay: float = 0.0,
    ) -> None:
        super().__init__()
        if not node_indices:
            raise ClusterError("gray-failure needs at least one node index")
        if slowdown < 1.0:
            raise ClusterError(f"slowdown must be >= 1, got {slowdown}")
        if not 0.0 <= loss <= 1.0:
            raise ClusterError(f"loss must be in [0, 1], got {loss}")
        if delay < 0:
            raise ClusterError(f"delay must be >= 0, got {delay}")
        self.node_indices = tuple(int(index) for index in node_indices)
        self._degrade_at_arg = degrade_at
        self._recover_at_arg = recover_at
        self.degrade_at: float = 0.0
        self.recover_at: float = 0.0
        self.slowdown = float(slowdown)
        self.loss = float(loss)
        self.delay = float(delay)

    @property
    def requires_concurrency(self) -> bool:
        # Slowness is service time, and service time only exists under the
        # in-flight fetch model.
        return True

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        for index in self.node_indices:
            if not 0 <= index < num_nodes:
                raise ClusterError(
                    f"node index {index} out of range for {num_nodes} nodes"
                )
        self.degrade_at = (
            0.3 * duration if self._degrade_at_arg is None else self._degrade_at_arg
        )
        self.recover_at = (
            0.85 * duration if self._recover_at_arg is None else self._recover_at_arg
        )
        if not self.degrade_at < self.recover_at:
            raise ClusterError("gray-failure recover_at must be after degrade_at")

    def events(self) -> List[ScenarioEvent]:
        indices = self.node_indices

        def degrade(cluster: "ClusterSimulation", time: float) -> None:
            for index in indices:
                node = cluster.node_at(index)
                node.fetches.slowdown = self.slowdown
                node.channel.set_degraded(loss=self.loss, delay=self.delay)

        def recover(cluster: "ClusterSimulation", time: float) -> None:
            for index in indices:
                node = cluster.node_at(index)
                node.fetches.slowdown = 1.0
                node.channel.clear_degraded()

        return [
            ScenarioEvent(time=self.degrade_at, label="gray-start", apply=degrade),
            ScenarioEvent(time=self.recover_at, label="gray-end", apply=recover),
        ]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "node_indices": list(self.node_indices),
            "degrade_at": self.degrade_at,
            "recover_at": self.recover_at,
            "slowdown": self.slowdown,
            "loss": self.loss,
            "delay": self.delay,
        }


class ZoneOutageScenario(Scenario):
    """Correlated failure of every node in one failure domain.

    The fleet must be constructed with ``zones >= 2`` (nodes are labeled
    ``zone-{index % zones}`` on the ring).  At ``fail_at`` every member of
    ``zone`` fails silently; at ``detect_at`` they all leave the ring (one
    correlated rebalance); at ``recover_at`` they rejoin — cold, or warm
    from their snapshots with ``rejoin="warm"``.

    Args:
        zone: Zone label (``"zone-1"``) or index (``1``) to fail.
        fail_at: Default ``0.4 * duration``.
        detect_at: Default ``fail_at + max(4 * T, 0.05 * duration)``.
        recover_at: Default ``max(0.75 * duration, detect_at + T)``;
            ``None`` keeps the zone out for good.
        rejoin: ``"cold"`` or ``"warm"`` (warm requires a configured store).
    """

    name = "zone-outage"

    _AUTO = "auto"

    def __init__(
        self,
        zone: Any = 0,
        fail_at: Optional[float] = None,
        detect_at: Optional[float] = None,
        recover_at: Optional[float] | str = _AUTO,
        rejoin: str = "cold",
    ) -> None:
        super().__init__()
        if rejoin not in ("cold", "warm"):
            raise ClusterError(f"rejoin must be 'cold' or 'warm', got {rejoin!r}")
        self.zone = f"zone-{zone}" if isinstance(zone, int) else str(zone)
        self.rejoin = rejoin
        self._fail_at_arg = fail_at
        self._detect_at_arg = detect_at
        self._recover_at_arg = recover_at
        self.fail_at: float = 0.0
        self.detect_at: float = 0.0
        self.recover_at: Optional[float] = None
        self._members: List[int] = []

    @property
    def requires_persistence(self) -> bool:
        return self.rejoin == "warm"

    @property
    def min_zones(self) -> int:
        return 2

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        self.fail_at = 0.4 * duration if self._fail_at_arg is None else self._fail_at_arg
        if self._detect_at_arg is None:
            self.detect_at = self.fail_at + max(
                4 * staleness_bound, 0.05 * duration
            )
        else:
            self.detect_at = self._detect_at_arg
        if self._recover_at_arg is self._AUTO:
            self.recover_at = max(0.75 * duration, self.detect_at + staleness_bound)
        else:
            self.recover_at = self._recover_at_arg
        if not self.fail_at < self.detect_at:
            raise ClusterError("zone-outage detect_at must be after fail_at")
        if self.recover_at is not None and not self.detect_at < self.recover_at:
            raise ClusterError("zone-outage recover_at must be after detect_at")
        self._members = []

    def check(self, cluster: "ClusterSimulation") -> None:
        ring = cluster.ring
        members = [
            index
            for index, node in enumerate(cluster.nodes())
            if ring.zone_of(node.node_id) == self.zone
        ]
        if not members:
            raise ClusterError(
                f"zone {self.zone!r} has no members; fleet zones are {ring.zones}"
            )
        if len(members) == len(cluster.nodes()):
            raise ClusterError(
                f"zone {self.zone!r} covers the whole fleet; an outage would "
                "empty the ring"
            )
        self._members = members

    def events(self) -> List[ScenarioEvent]:
        def fail(cluster: "ClusterSimulation", time: float) -> None:
            for index in self._members:
                cluster.fail_node(index)

        def detect(cluster: "ClusterSimulation", time: float) -> None:
            for index in self._members:
                cluster.remove_node(index, time)

        def recover(cluster: "ClusterSimulation", time: float) -> None:
            for index in self._members:
                cluster.rejoin_node(index, warm=self.rejoin == "warm", time=time)

        events = [
            ScenarioEvent(time=self.fail_at, label=f"zone-fail:{self.zone}", apply=fail),
            ScenarioEvent(
                time=self.detect_at, label=f"zone-detect:{self.zone}", apply=detect
            ),
        ]
        if self.recover_at is not None:
            events.append(
                ScenarioEvent(
                    time=self.recover_at,
                    label=f"zone-recover:{self.zone}",
                    apply=recover,
                )
            )
        return events

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "zone": self.zone,
            "fail_at": self.fail_at,
            "detect_at": self.detect_at,
            "recover_at": self.recover_at,
            "rejoin": self.rejoin,
        }


class FlappingScenario(Scenario):
    """A node leaving and rejoining faster than detection converges.

    Between ``start_at`` and ``end_at`` the node cycles ``flaps`` times:
    down for the first half of each cycle, back for the second half — and
    every return is behind a degraded link (``degraded_loss`` /
    ``degraded_delay``) until the flapping ends.

    Two flavors:

    * ``mode="silent"`` (default) — each down-phase is a fail-silent window
      (unreachable, still serving its aging cache, still on the ring): the
      cycles are shorter than any detection timeout, so the ring never
      converges on removing it.
    * ``mode="ring"`` — each cycle is a real departure and cold rejoin: the
      ring rebalances twice per flap, churning exactly the flapper's keys
      each time (the minimal-movement property the tests pin).

    Args:
        node_index: The flapping node (default 0).
        flaps: Number of down/up cycles (>= 1).
        start_at: Default ``0.3 * duration``.
        end_at: Default ``0.9 * duration``.
        mode: ``"silent"`` or ``"ring"``.
        degraded_loss: Freshness-message loss rate while back-but-degraded.
        degraded_delay: Extra freshness-message delay while degraded.
    """

    name = "flapping"

    def __init__(
        self,
        node_index: int = 0,
        flaps: int = 3,
        start_at: Optional[float] = None,
        end_at: Optional[float] = None,
        mode: str = "silent",
        degraded_loss: float = 0.2,
        degraded_delay: float = 0.0,
    ) -> None:
        super().__init__()
        if node_index < 0:
            raise ClusterError(f"node_index must be >= 0, got {node_index}")
        if flaps < 1:
            raise ClusterError(f"flaps must be >= 1, got {flaps}")
        if mode not in ("silent", "ring"):
            raise ClusterError(f"mode must be 'silent' or 'ring', got {mode!r}")
        if not 0.0 <= degraded_loss <= 1.0:
            raise ClusterError(
                f"degraded_loss must be in [0, 1], got {degraded_loss}"
            )
        if degraded_delay < 0:
            raise ClusterError(
                f"degraded_delay must be >= 0, got {degraded_delay}"
            )
        self.node_index = int(node_index)
        self.flaps = int(flaps)
        self.mode = mode
        self.degraded_loss = float(degraded_loss)
        self.degraded_delay = float(degraded_delay)
        self._start_at_arg = start_at
        self._end_at_arg = end_at
        self.start_at: float = 0.0
        self.end_at: float = 0.0

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        if not 0 <= self.node_index < num_nodes:
            raise ClusterError(
                f"node index {self.node_index} out of range for {num_nodes} nodes"
            )
        if self.mode == "ring" and num_nodes < 2:
            raise ClusterError(
                "flapping mode='ring' needs at least 2 nodes: the flapper "
                "cannot be the only node on the ring"
            )
        self.start_at = (
            0.3 * duration if self._start_at_arg is None else self._start_at_arg
        )
        self.end_at = 0.9 * duration if self._end_at_arg is None else self._end_at_arg
        if not self.start_at < self.end_at:
            raise ClusterError("flapping end_at must be after start_at")

    def events(self) -> List[ScenarioEvent]:
        index = self.node_index
        ring_mode = self.mode == "ring"
        cycle = (self.end_at - self.start_at) / self.flaps

        def down(cluster: "ClusterSimulation", time: float) -> None:
            node = cluster.node_at(index)
            node.channel.clear_degraded()
            if ring_mode:
                cluster.remove_node(index, time)
            else:
                cluster.fail_node(index)

        def back(cluster: "ClusterSimulation", time: float) -> None:
            node = cluster.node_at(index)
            if ring_mode:
                cluster.rejoin_node(index, warm=False, time=time)
            else:
                node.reachable = True
                node.channel.outage = False
            node.channel.set_degraded(
                loss=self.degraded_loss, delay=self.degraded_delay
            )

        def settle(cluster: "ClusterSimulation", time: float) -> None:
            cluster.node_at(index).channel.clear_degraded()

        events: List[ScenarioEvent] = []
        for flap in range(self.flaps):
            down_at = self.start_at + flap * cycle
            back_at = down_at + cycle / 2
            events.append(
                ScenarioEvent(time=down_at, label=f"flap-down:{flap}", apply=down)
            )
            events.append(
                ScenarioEvent(time=back_at, label=f"flap-back:{flap}", apply=back)
            )
        events.append(
            ScenarioEvent(time=self.end_at, label="flap-settle", apply=settle)
        )
        return events

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "node_index": self.node_index,
            "flaps": self.flaps,
            "start_at": self.start_at,
            "end_at": self.end_at,
            "mode": self.mode,
            "degraded_loss": self.degraded_loss,
            "degraded_delay": self.degraded_delay,
        }


def _make_autoscale(**kwargs: Any) -> Scenario:
    """Lazy factory for the autoscaler.

    The autoscale module also subclasses :class:`Scenario`, so importing it
    at this module's top would close an import cycle through
    ``repro.cluster.scenarios`` whichever module is imported first; deferring
    to call time breaks the cycle without ordering constraints.
    """
    from repro.resilience.autoscale import AutoscaleScenario

    return AutoscaleScenario(**kwargs)


RESILIENCE_SCENARIOS = {
    "gray-failure": GrayFailureScenario,
    "zone-outage": ZoneOutageScenario,
    "flapping": FlappingScenario,
    "autoscale": _make_autoscale,
}

# Self-registration: when this module is imported first (before
# repro.cluster.scenarios finishes), the factory table update at the bottom
# of that module cannot see RESILIENCE_SCENARIOS yet — so register here,
# against the by-now fully initialized table.  Both sides updating is
# idempotent.
from repro.cluster.scenarios import SCENARIO_FACTORIES  # noqa: E402

SCENARIO_FACTORIES.update(RESILIENCE_SCENARIOS)
