"""The autoscaler scenario: elastic fleet sizing against an ideal baseline.

The fleet is constructed at its *maximum* size; the autoscaler parks every
node past ``min_nodes`` in standby (off the ring, never joined) at t=0 and
then runs a deterministic control loop at the flush cadence: when per-node
load crosses ``high_load`` requests/second — or hot-key pressure (the
queryable :meth:`~repro.cluster.hotkey.HotKeyDetector.pressure` signal)
crosses ``pressure_high`` — a standby node joins the ring (cold, or warm
from its snapshot with ``warm=True``); when load falls below ``low_load``
the highest active node drains back out via the ring's minimal-movement
rebalance.  Every transition is a lifecycle event (cluster event log + obs
``autoscale``/``rebalance`` events).

**Ideal-elasticity baseline.**  The yardstick is an imaginary autoscaler
that reacts the instant a watermark is breached and scales for free: its
elasticity lag, scaling cost, and breach-window staleness are all exactly
zero.  The real controller's gap to that baseline is therefore measured
directly by three first-class result fields:

* ``elasticity_lag`` — seconds the fleet spent in breach of its scale-up
  watermark (detection latency + cooldown + capacity ceiling),
* ``elasticity_cost`` — ``action_cost`` charged per node activated or
  drained,
* ``elasticity_staleness`` — staleness violations accrued during breach
  windows (the under-provisioned intervals the ideal fleet never has).

The controller reads only fleet-global signals (total load, per-node
pressure), so it *cannot* be sharded: an ownership-masked shard would see a
slice of the load and scale differently.  ``requires_full_fleet`` makes
shard-parallel replay refuse the scenario instead of approximating it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.cluster.scenarios import FlashCrowdScenario, Scenario, ScenarioEvent
from repro.errors import ClusterError
from repro.workload.base import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import ClusterSimulation


class AutoscaleScenario(Scenario):
    """Grow and shrink the fleet mid-run from load and hot-key pressure.

    Args:
        min_nodes: Nodes active at t=0 and the scale-down floor; everything
            from ``min_nodes`` to the constructed fleet size starts in
            standby and is the scale-up headroom.
        high_load: Scale-up watermark in requests/second per active node
            (``None`` disables the load trigger).
        low_load: Scale-down watermark (``None`` disables scale-down).
        pressure_high: Scale-up watermark on the fleet's max per-shard
            hot-key pressure (``None`` disables; requires the cluster to run
            with hot-key detection).
        cooldown: Control intervals to wait after any scaling action before
            acting again (0 = act every interval).
        warm: Warm new nodes from the store (requires ``store=``); nodes
            without a snapshot yet join cold.
        action_cost: Cost charged per node activated or drained (the
            ``elasticity_cost`` unit).
        flash_at / flash_fraction / flash_keys: Optional embedded flash
            crowd (same semantics as the ``flash-crowd`` scenario), so the
            canonical elastic-vs-static experiment is a single scenario:
            ``flash_fraction > 0`` redirects that slice of post-``flash_at``
            traffic onto ``flash_keys`` hot keys.
    """

    name = "autoscale"

    def __init__(
        self,
        min_nodes: int = 1,
        high_load: Optional[float] = None,
        low_load: Optional[float] = None,
        pressure_high: Optional[float] = None,
        cooldown: int = 0,
        warm: bool = False,
        action_cost: float = 1.0,
        flash_at: Optional[float] = None,
        flash_fraction: float = 0.0,
        flash_keys: int = 4,
    ) -> None:
        super().__init__()
        if min_nodes < 1:
            raise ClusterError(f"min_nodes must be >= 1, got {min_nodes}")
        if high_load is None and pressure_high is None:
            raise ClusterError(
                "autoscale needs a scale-up trigger: set high_load and/or "
                "pressure_high"
            )
        if high_load is not None and high_load <= 0:
            raise ClusterError(f"high_load must be positive, got {high_load}")
        if low_load is not None and low_load <= 0:
            raise ClusterError(f"low_load must be positive, got {low_load}")
        if (
            high_load is not None
            and low_load is not None
            and low_load >= high_load
        ):
            raise ClusterError(
                f"low_load ({low_load}) must be below high_load ({high_load})"
            )
        if pressure_high is not None and not 0.0 < pressure_high <= 1.0:
            raise ClusterError(
                f"pressure_high must be in (0, 1], got {pressure_high}"
            )
        if cooldown < 0:
            raise ClusterError(f"cooldown must be >= 0, got {cooldown}")
        if action_cost < 0:
            raise ClusterError(f"action_cost must be >= 0, got {action_cost}")
        self.min_nodes = int(min_nodes)
        self.high_load = None if high_load is None else float(high_load)
        self.low_load = None if low_load is None else float(low_load)
        self.pressure_high = None if pressure_high is None else float(pressure_high)
        self.cooldown = int(cooldown)
        self.warm = bool(warm)
        self.action_cost = float(action_cost)
        self._flash: Optional[FlashCrowdScenario] = None
        if flash_fraction > 0.0:
            self._flash = FlashCrowdScenario(
                shift_at=flash_at, fraction=flash_fraction, hot_keys=flash_keys
            )
        # Controller state, reset on bind.
        self._active = 0
        self._cooldown_left = 0
        self._last_total = 0
        self._last_violations = 0
        self._scale_ups = 0
        self._scale_downs = 0
        self._lag = 0.0
        self._cost = 0.0
        self._staleness = 0

    @property
    def requires_persistence(self) -> bool:
        return self.warm

    @property
    def requires_full_fleet(self) -> bool:
        return True

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        if self.min_nodes > num_nodes:
            raise ClusterError(
                f"min_nodes ({self.min_nodes}) exceeds the constructed fleet "
                f"size ({num_nodes}); the fleet is built at maximum scale"
            )
        if self._flash is not None:
            self._flash.bind(duration, staleness_bound, num_nodes)
        self._active = self.min_nodes
        self._cooldown_left = 0
        self._last_total = 0
        self._last_violations = 0
        self._scale_ups = 0
        self._scale_downs = 0
        self._lag = 0.0
        self._cost = 0.0
        self._staleness = 0

    def check(self, cluster: "ClusterSimulation") -> None:
        if self.pressure_high is not None and cluster.node_at(0).detector is None:
            raise ClusterError(
                "autoscale pressure_high needs hot-key detection: pass "
                "hotkey=HotKeyConfig(...)"
            )

    def events(self) -> List[ScenarioEvent]:
        def standby(cluster: "ClusterSimulation", time: float) -> None:
            for index in range(self.min_nodes, self.num_nodes):
                cluster.deactivate_node(index)
            if cluster.obs is not None and cluster.obs.record_global:
                cluster.obs.event(
                    time,
                    "autoscale",
                    action="standby",
                    active=self.min_nodes,
                    standby=self.num_nodes - self.min_nodes,
                )

        return [ScenarioEvent(time=0.0, label="autoscale-standby", apply=standby)]

    def transform_request(self, request: Request) -> Request:
        if self._flash is not None:
            return self._flash.transform_request(request)
        return request

    def on_interval(self, cluster: "ClusterSimulation", time: float) -> None:
        interval = self.staleness_bound
        total = 0
        violations = 0
        for node in cluster.nodes():
            result = node.result
            total += result.reads + result.writes
            violations += result.staleness_violations
        delta = total - self._last_total
        self._last_total = total
        violations_delta = violations - self._last_violations
        self._last_violations = violations
        rate = delta / (interval * self._active) if interval > 0 else 0.0

        pressure = 0.0
        if self.pressure_high is not None:
            for node in cluster.nodes()[: self._active]:
                if node.detector is not None:
                    node_pressure = node.detector.pressure()
                    if node_pressure > pressure:
                        pressure = node_pressure

        breach = (self.high_load is not None and rate > self.high_load) or (
            self.pressure_high is not None and pressure >= self.pressure_high
        )
        if breach:
            # The ideal-elasticity baseline answered this breach instantly
            # and for free; every breached interval is lag and staleness the
            # real controller owes against it.
            self._lag += interval
            self._staleness += violations_delta

        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return

        if breach and self._active < self.num_nodes:
            index = self._active
            node_id = cluster.node_at(index).node_id
            cluster.rejoin_node(index, warm=self.warm, time=time)
            cluster.event_log.append((time, f"scale-up:{node_id}"))
            if cluster.obs is not None and cluster.obs.record_global:
                cluster.obs.event(
                    time, "autoscale", action="up", node=node_id,
                    rate=rate, pressure=pressure,
                )
            self._active += 1
            self._scale_ups += 1
            self._cost += self.action_cost
            self._cooldown_left = self.cooldown
        elif (
            not breach
            and self.low_load is not None
            and rate < self.low_load
            and self._active > self.min_nodes
        ):
            index = self._active - 1
            node_id = cluster.node_at(index).node_id
            cluster.remove_node(index, time)
            cluster.event_log.append((time, f"scale-down:{node_id}"))
            if cluster.obs is not None and cluster.obs.record_global:
                cluster.obs.event(
                    time, "autoscale", action="down", node=node_id, rate=rate
                )
            self._active -= 1
            self._scale_downs += 1
            self._cost += self.action_cost
            self._cooldown_left = self.cooldown

    def result_fields(self) -> Dict[str, Any]:
        return {
            "scale_ups": self._scale_ups,
            "scale_downs": self._scale_downs,
            "elasticity_lag": self._lag,
            "elasticity_cost": self._cost,
            "elasticity_staleness": self._staleness,
        }

    def describe(self) -> Dict[str, Any]:
        described: Dict[str, Any] = {
            "name": self.name,
            "min_nodes": self.min_nodes,
            "high_load": self.high_load,
            "low_load": self.low_load,
            "pressure_high": self.pressure_high,
            "cooldown": self.cooldown,
            "warm": self.warm,
            "action_cost": self.action_cost,
        }
        if self._flash is not None:
            described["flash"] = self._flash.describe()
        return described
