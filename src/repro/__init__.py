"""Reproduction of "Revisiting Cache Freshness for Emerging Real-Time Applications".

The package is organised around the pipeline the paper's evaluation uses:

``workload`` -> ``sim`` (driving ``cache`` + ``backend``) -> ``core`` policies
-> ``experiments``, the orchestration layer that expands declarative
policy x workload x staleness-bound grids, runs them across worker processes,
and exports the rows that regenerate the paper's figures and tables — with
the closed-form counterpart in ``model``, the ``E[W]`` sketches in
``sketch``, online bottleneck detection in ``bottleneck``, the sharded
multi-node fleet simulation (consistent hashing, replicated invalidation,
failure scenarios, hot-key detection) in ``cluster``, the two-level L1/L2
cache hierarchy (admission, promotion, write-through/write-back, degraded
serving) in ``tier``, the durable persistence layer (write-ahead log,
snapshots, crash recovery, warm node rejoin) in ``store``, and time-resolved
telemetry (windowed series, request spans, percentile histograms,
JSONL/CSV/Prometheus exporters, and post-hoc analysis: run diffing, anomaly
detection, SLO gating, and HTML reports) in ``obs``.

The pipeline streams end-to-end: workloads yield requests lazily via
``iter_requests`` and the simulator consumes the stream without copying it,
so arbitrarily long traces replay in constant memory.  The most common entry
points are re-exported here so that downstream users can write::

    from repro import Simulation, PoissonZipfWorkload, AdaptivePolicy, CostModel

    workload = PoissonZipfWorkload(num_keys=100, rate_per_key=10.0, seed=1)
    sim = Simulation(
        workload=workload.iter_requests(duration=50.0),
        policy=AdaptivePolicy(),
        staleness_bound=1.0,
        costs=CostModel(),
    )
    result = sim.run()
    print(result.normalized_freshness_cost, result.normalized_staleness_cost)

Grids and benchmarks are also available from the command line via
``python -m repro`` (``run``, ``sweep``, and ``bench`` subcommands).
"""

from repro.core.cost_model import CostBreakdown, CostModel
from repro.core.policy import Action, FreshnessPolicy
from repro.core.ttl import TTLExpiryPolicy, TTLPollingPolicy
from repro.core.write_reactive import AlwaysInvalidatePolicy, AlwaysUpdatePolicy
from repro.core.adaptive import AdaptivePolicy, CacheStateAdaptivePolicy
from repro.core.optimal import OptimalPolicy
from repro.cache.cache import Cache
from repro.cache.eviction import FIFOEviction, LFUEviction, LRUEviction
from repro.backend.datastore import DataStore
from repro.sim.simulation import Simulation
from repro.sim.results import SimulationResult
from repro.workload.base import OpType, Request
from repro.workload.poisson import PoissonZipfWorkload
from repro.workload.mixed import PoissonMixWorkload
from repro.workload.meta import MetaWorkload
from repro.workload.twitter import TwitterWorkload
from repro.sketch.exact import ExactEWTracker
from repro.sketch.countmin import CountMinEWSketch, CountMinSketch
from repro.sketch.topk import TopKEWSketch
from repro.sketch.memory import estimator_memory_bytes, storage_saving
from repro.bottleneck.detector import Bottleneck, BottleneckDetector
from repro.bottleneck.probes import ResourceProbe, UtilizationSnapshot
from repro.bottleneck.procfs import SyntheticProcFS
from repro.bottleneck.costs import cost_model_for_bottleneck
from repro.cluster.cluster import ClusterSimulation
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.hotkey import HotKeyConfig, HotKeyDetector
from repro.cluster.replication import ReplicationConfig
from repro.cluster.results import ClusterResult
from repro.cluster.scenarios import make_scenario
from repro.experiments.spec import ChannelSpec, ExperimentSpec, ScenarioSpec, WorkloadSpec
from repro.experiments.runner import run_experiment
from repro.experiments.bench import run_bench
from repro.obs.analyze import detect_anomalies, diff_payloads
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import ObsConfig, ObsRecorder
from repro.obs.report import render_report
from repro.obs.slo import evaluate_slo
from repro.resilience import AutoscaleScenario, ChaosPlan, ChaosSpec
from repro.store.wal import Journal, WriteAheadLog
from repro.store.snapshot import Snapshot, SnapshotManager, StoreConfig
from repro.store.recovery import RecoveryReport, recover_datastore, warm_state
from repro.store.runtime import StoreRuntime
from repro.tier.config import TierConfig
from repro.tier.l1 import L1Tier
from repro.tier.admission import AdmissionPolicy, make_admission

__version__ = "1.5.0"

__all__ = [
    "Action",
    "AdaptivePolicy",
    "AdmissionPolicy",
    "AutoscaleScenario",
    "Bottleneck",
    "BottleneckDetector",
    "ChannelSpec",
    "ChaosPlan",
    "ChaosSpec",
    "ClusterResult",
    "ClusterSimulation",
    "ConsistentHashRing",
    "ExperimentSpec",
    "HotKeyConfig",
    "HotKeyDetector",
    "Journal",
    "L1Tier",
    "MetricsRegistry",
    "ObsConfig",
    "ObsRecorder",
    "RecoveryReport",
    "ReplicationConfig",
    "ScenarioSpec",
    "Snapshot",
    "SnapshotManager",
    "StoreConfig",
    "StoreRuntime",
    "TierConfig",
    "WorkloadSpec",
    "WriteAheadLog",
    "cost_model_for_bottleneck",
    "detect_anomalies",
    "diff_payloads",
    "estimator_memory_bytes",
    "evaluate_slo",
    "make_admission",
    "make_scenario",
    "recover_datastore",
    "render_report",
    "run_bench",
    "run_experiment",
    "storage_saving",
    "warm_state",
    "AlwaysInvalidatePolicy",
    "AlwaysUpdatePolicy",
    "Cache",
    "CacheStateAdaptivePolicy",
    "CostBreakdown",
    "CostModel",
    "CountMinEWSketch",
    "CountMinSketch",
    "DataStore",
    "ExactEWTracker",
    "FIFOEviction",
    "FreshnessPolicy",
    "LFUEviction",
    "LRUEviction",
    "MetaWorkload",
    "OpType",
    "OptimalPolicy",
    "PoissonMixWorkload",
    "PoissonZipfWorkload",
    "Request",
    "ResourceProbe",
    "Simulation",
    "SimulationResult",
    "SyntheticProcFS",
    "TTLExpiryPolicy",
    "TTLPollingPolicy",
    "TopKEWSketch",
    "TwitterWorkload",
    "UtilizationSnapshot",
]
