"""Columnar trace compilation: request streams as parallel numpy arrays.

The scalar replay path materializes one :class:`~repro.workload.base.Request`
object per request — fine for streaming, but object construction and
per-request attribute access dominate the replay wall clock long before any
policy arithmetic does.  The vectorized engine (``repro.sim.vector``) instead
consumes a :class:`CompiledTrace`: the same stream laid out as parallel
arrays (timestamps, key ids, op flags, sizes) plus a key-id -> key-name
table.

Compilation is draw-for-draw identical to the generators: the native
compilers below replicate each workload's pinned per-chunk RNG sequence
(exponential gaps, Zipf ranks, read coin flips, ... — the exact order the
equivalence tests pin), so ``compile_workload(w, d).iter_requests()`` yields
a stream byte-identical to ``w.iter_requests(d)``.  Workloads without a
native compiler fall back to batching their object stream, which is slower
to compile but identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.workload.base import (
    STREAM_CHUNK_SIZE,
    OpType,
    Request,
    Workload,
    validate_duration,
)
from repro.workload.mixed import PoissonMixWorkload
from repro.workload.poisson import PoissonZipfWorkload
from repro.workload.twitter import TwitterWorkload


@dataclass(slots=True)
class CompiledTrace:
    """A request stream as parallel columnar arrays.

    Attributes:
        times: Arrival times, ascending (``float64``).
        key_ids: Per-request index into :attr:`key_names` (``int64``).
        is_read: ``True`` where the request is a read (``bool``).
        key_sizes: Per-request key size in bytes (``int64``).
        value_sizes: Per-request value size in bytes (``int64``).
        key_names: Key-id -> key-name table.  Ids are dense but the table may
            contain names that never occur in the trace (e.g. cold ranks of a
            Zipf population).
    """

    times: np.ndarray
    key_ids: np.ndarray
    is_read: np.ndarray
    key_sizes: np.ndarray
    value_sizes: np.ndarray
    key_names: List[str]

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def num_requests(self) -> int:
        """Number of requests in the trace."""
        return int(self.times.size)

    def iter_requests(self) -> Iterator[Request]:
        """Decompile back into the scalar :class:`Request` stream.

        The yielded stream is byte-identical to the generator stream the
        trace was compiled from: same floats, same interned key strings,
        same op objects.  Used by the scalar-fallback path of the vectorized
        engine and by the equivalence tests.
        """
        read_op, write_op, request = OpType.READ, OpType.WRITE, Request
        names = self.key_names
        total = int(self.times.size)
        for start in range(0, total, STREAM_CHUNK_SIZE):
            stop = min(start + STREAM_CHUNK_SIZE, total)
            for time, key_id, is_r, key_size, value_size in zip(
                self.times[start:stop].tolist(),
                self.key_ids[start:stop].tolist(),
                self.is_read[start:stop].tolist(),
                self.key_sizes[start:stop].tolist(),
                self.value_sizes[start:stop].tolist(),
            ):
                yield request(
                    time,
                    names[key_id],
                    read_op if is_r else write_op,
                    key_size,
                    value_size,
                )


def _concatenate(parts: List[np.ndarray], dtype: type) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate(parts)


def _compile_poisson(workload: PoissonZipfWorkload, duration: float) -> CompiledTrace:
    """Native compiler replicating :meth:`PoissonZipfWorkload._iter_requests`."""
    rng = np.random.default_rng(workload.seed)
    mean_gap = 1.0 / (workload.rate_per_key * workload.num_keys)
    sampler = workload._sampler
    time_parts: List[np.ndarray] = []
    rank_parts: List[np.ndarray] = []
    read_parts: List[np.ndarray] = []
    now = 0.0
    while now < duration:
        gaps = rng.exponential(mean_gap, size=STREAM_CHUNK_SIZE)
        times = now + np.cumsum(gaps)
        now = float(times[-1])
        ranks = sampler.sample_using(rng, STREAM_CHUNK_SIZE)
        is_read = rng.random(STREAM_CHUNK_SIZE) < workload.read_ratio
        if now >= duration:
            keep = int(np.searchsorted(times, duration, side="left"))
            times, ranks, is_read = times[:keep], ranks[:keep], is_read[:keep]
        time_parts.append(times)
        rank_parts.append(ranks)
        read_parts.append(is_read)
    times = _concatenate(time_parts, np.float64)
    count = times.size
    return CompiledTrace(
        times=times,
        key_ids=_concatenate(rank_parts, np.int64),
        is_read=_concatenate(read_parts, np.bool_),
        key_sizes=np.full(count, workload.key_size, dtype=np.int64),
        value_sizes=np.full(count, workload.value_size, dtype=np.int64),
        key_names=[workload.key_name(rank) for rank in range(workload.num_keys)],
    )


def _compile_twitter(workload: TwitterWorkload, duration: float) -> CompiledTrace:
    """Native compiler replicating :meth:`TwitterWorkload._iter_requests`."""
    rng = np.random.default_rng(workload.seed)
    peak_rate = workload.total_rate * (1.0 + workload.diurnal_amplitude)
    mean_gap = 1.0 / peak_rate
    time_parts: List[np.ndarray] = []
    rank_parts: List[np.ndarray] = []
    read_parts: List[np.ndarray] = []
    size_parts: List[np.ndarray] = []
    now = 0.0
    while now < duration:
        gaps = rng.exponential(mean_gap, size=STREAM_CHUNK_SIZE)
        candidate = now + np.cumsum(gaps)
        now = float(candidate[-1])
        envelope = 1.0 + workload.diurnal_amplitude * np.sin(
            2.0 * np.pi * candidate / workload.diurnal_period
        )
        accept = rng.random(STREAM_CHUNK_SIZE) < (workload.total_rate * envelope) / peak_rate
        if now >= duration:
            accept &= candidate < duration
        times = candidate[accept]
        count = times.size
        ranks = workload._sampler.sample_using(rng, count)
        is_read = rng.random(count) < workload._read_probabilities(ranks)
        value_sizes = np.maximum(
            8, rng.lognormal(mean=np.log(workload.value_size), sigma=0.6, size=count)
        ).astype(np.int64)
        time_parts.append(times)
        rank_parts.append(ranks)
        read_parts.append(is_read)
        size_parts.append(value_sizes)
    times = _concatenate(time_parts, np.float64)
    return CompiledTrace(
        times=times,
        key_ids=_concatenate(rank_parts, np.int64),
        is_read=_concatenate(read_parts, np.bool_),
        key_sizes=np.full(times.size, workload.key_size, dtype=np.int64),
        value_sizes=_concatenate(size_parts, np.int64),
        key_names=[workload.key_name(rank) for rank in range(workload.num_keys)],
    )


def _compile_mix(workload: PoissonMixWorkload, duration: float) -> CompiledTrace:
    """Native compiler for the two-component mixture.

    Compiles both Poisson halves natively, offsets the write-heavy key ids
    past the read-heavy table, and interleaves by time with a *stable* sort —
    which reproduces :func:`heapq.merge` tie-breaking exactly (the read-heavy
    stream is listed first, so it wins timestamp ties).
    """
    read_heavy, write_heavy = workload.components
    first = _compile_poisson(read_heavy, duration)
    second = _compile_poisson(write_heavy, duration)
    offset = len(first.key_names)
    times = np.concatenate([first.times, second.times])
    order = np.argsort(times, kind="stable")
    return CompiledTrace(
        times=times[order],
        key_ids=np.concatenate([first.key_ids, second.key_ids + offset])[order],
        is_read=np.concatenate([first.is_read, second.is_read])[order],
        key_sizes=np.concatenate([first.key_sizes, second.key_sizes])[order],
        value_sizes=np.concatenate([first.value_sizes, second.value_sizes])[order],
        key_names=first.key_names + second.key_names,
    )


def _compile_generic(workload: Workload, duration: float) -> CompiledTrace:
    """Fallback compiler: batch the scalar object stream into columns.

    Identical by construction (it consumes ``iter_requests`` itself); used
    for trace-backed and third-party workloads that have no native columnar
    path.  Key names are interned in first-appearance order.
    """
    key_ids: dict[str, int] = {}
    names: List[str] = []
    times: List[float] = []
    ids: List[int] = []
    is_read: List[bool] = []
    key_sizes: List[int] = []
    value_sizes: List[int] = []
    for request in workload.iter_requests(duration):
        key_id = key_ids.get(request.key)
        if key_id is None:
            key_id = key_ids[request.key] = len(names)
            names.append(request.key)
        times.append(request.time)
        ids.append(key_id)
        is_read.append(request.op is OpType.READ)
        key_sizes.append(request.key_size)
        value_sizes.append(request.value_size)
    return CompiledTrace(
        times=np.asarray(times, dtype=np.float64),
        key_ids=np.asarray(ids, dtype=np.int64),
        is_read=np.asarray(is_read, dtype=np.bool_),
        key_sizes=np.asarray(key_sizes, dtype=np.int64),
        value_sizes=np.asarray(value_sizes, dtype=np.int64),
        key_names=names,
    )


def compile_workload(workload: Workload, duration: float) -> CompiledTrace:
    """Compile a workload's request stream into columnar arrays.

    Dispatches to a native draw-for-draw compiler when the workload type has
    one (the synthetic Poisson, mixture, and Twitter generators), otherwise
    batches the scalar stream.  Either way the result decompiles to a stream
    byte-identical to ``workload.iter_requests(duration)``.

    Raises:
        WorkloadError: If ``duration`` is not positive and finite.
    """
    duration = validate_duration(duration)
    # Exact-type dispatch: a subclass may override ``iter_requests`` in ways
    # the native compilers would not reproduce, so only the known generator
    # classes take the fast path.
    workload_type = type(workload)
    if workload_type is PoissonZipfWorkload:
        return _compile_poisson(workload, duration)
    if workload_type is TwitterWorkload:
        return _compile_twitter(workload, duration)
    if workload_type is PoissonMixWorkload:
        return _compile_mix(workload, duration)
    return _compile_generic(workload, duration)
