"""Synthetic Poisson workload with Zipfian key popularity.

This is the "Poisson" workload from the paper's evaluation (Figures 2, 3, and
5): requests to each key arrive as a Poisson process, each request is
independently a read with probability ``r`` and a write otherwise, and the
per-key arrival rates follow a Zipf distribution across the key population
(``s = 1.3`` in the paper).

Generation is incremental: arrivals are drawn as exponential inter-arrival
gaps in vectorised chunks, so iterating a multi-hour trace holds only one
chunk (:data:`~repro.workload.base.STREAM_CHUNK_SIZE` requests) in memory at
a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.base import (
    STREAM_CHUNK_SIZE,
    OpType,
    Request,
    Workload,
    validate_duration,
)
from repro.workload.zipf import ZipfSampler


@dataclass(slots=True)
class PoissonKeyProfile:
    """Arrival characteristics of a single key in a Poisson workload."""

    key: str
    rate: float
    read_ratio: float


class PoissonZipfWorkload(Workload):
    """Poisson arrivals per key with Zipf-distributed per-key rates.

    The aggregate arrival rate is ``rate_per_key * num_keys`` and is divided
    across keys proportionally to a bounded Zipf distribution, so the hottest
    key receives far more than ``rate_per_key`` and the coldest far less.
    Setting ``zipf_exponent`` close to zero approaches a uniform split.

    Args:
        num_keys: Number of distinct keys.
        rate_per_key: Mean per-key arrival rate in requests/second.  The
            paper uses ``lambda = 10``.
        read_ratio: Probability that a request is a read (``r`` in the paper).
        zipf_exponent: Skew of the popularity distribution (``s = 1.3``).
        key_size: Key size in bytes attached to every request.
        value_size: Value size in bytes attached to every request.
        key_prefix: Prefix used when building key names.
        seed: Seed for reproducible generation.
    """

    name = "poisson"

    def __init__(
        self,
        num_keys: int = 100,
        rate_per_key: float = 10.0,
        read_ratio: float = 0.9,
        zipf_exponent: float = 1.3,
        key_size: int = 16,
        value_size: int = 128,
        key_prefix: str = "key",
        seed: int | None = None,
    ) -> None:
        if num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {num_keys}")
        if rate_per_key <= 0:
            raise ConfigurationError(f"rate_per_key must be > 0, got {rate_per_key}")
        if not 0.0 <= read_ratio <= 1.0:
            raise ConfigurationError(f"read_ratio must be in [0, 1], got {read_ratio}")
        self.num_keys = int(num_keys)
        self.rate_per_key = float(rate_per_key)
        self.read_ratio = float(read_ratio)
        self.zipf_exponent = float(zipf_exponent)
        self.key_size = int(key_size)
        self.value_size = int(value_size)
        self.key_prefix = key_prefix
        self.seed = seed
        self._sampler = ZipfSampler(num_keys=num_keys, exponent=zipf_exponent, seed=seed)
        # Lazily filled rank -> key-name table: each name is formatted once
        # per workload instead of once per request on the streaming hot path.
        self._key_names: List[str | None] = [None] * self.num_keys

    def key_name(self, rank: int) -> str:
        """Return the key name for a popularity rank (0 is the hottest key)."""
        return f"{self.key_prefix}-{rank:06d}"

    def key_profiles(self) -> List[PoissonKeyProfile]:
        """Return the per-key arrival rate and read ratio.

        These profiles feed the analytical model when overlaying theoretical
        curves on simulation results (Figures 2 and 3).
        """
        total_rate = self.rate_per_key * self.num_keys
        rates = self._sampler.expected_rates(total_rate)
        return [
            PoissonKeyProfile(key=self.key_name(rank), rate=float(rate), read_ratio=self.read_ratio)
            for rank, rate in enumerate(rates)
        ]

    def iter_requests(self, duration: float) -> Iterator[Request]:
        """Lazily yield a time-ordered request stream covering ``[0, duration)``.

        All randomness comes from a generator seeded per call, so iterating
        twice yields identical streams.  The duration is validated eagerly
        (here, not at first ``next()``), so a bad value fails at the call site.
        """
        return self._iter_requests(validate_duration(duration))

    def _iter_requests(self, duration: float) -> Iterator[Request]:
        # The per-chunk draw sequence (exponential gaps, Zipf ranks, read
        # coin flips — in that order, always STREAM_CHUNK_SIZE wide) is pinned
        # by the equivalence tests: optimizations below only change how the
        # drawn chunk is turned into Request objects, never what is drawn.
        rng = np.random.default_rng(self.seed)
        mean_gap = 1.0 / (self.rate_per_key * self.num_keys)
        sampler = self._sampler
        names = self._key_names
        key_name = self.key_name
        key_size = self.key_size
        value_size = self.value_size
        read_op, write_op, request = OpType.READ, OpType.WRITE, Request
        now = 0.0
        while now < duration:
            gaps = rng.exponential(mean_gap, size=STREAM_CHUNK_SIZE)
            times = now + np.cumsum(gaps)
            now = float(times[-1])
            ranks = sampler.sample_using(rng, STREAM_CHUNK_SIZE)
            is_read = rng.random(STREAM_CHUNK_SIZE) < self.read_ratio
            if now >= duration:
                # ``times`` ascends (gaps are non-negative), so the in-horizon
                # subset is exactly the prefix before ``duration``.
                keep = int(np.searchsorted(times, duration, side="left"))
                times, ranks, is_read = times[:keep], ranks[:keep], is_read[:keep]
            # One C-level conversion per chunk instead of three boxed numpy
            # scalar conversions per request.
            for time, rank, is_r in zip(times.tolist(), ranks.tolist(), is_read.tolist()):
                name = names[rank]
                if name is None:
                    name = names[rank] = key_name(rank)
                yield request(time, name, read_op if is_r else write_op, key_size, value_size)
