"""Workload generators and trace utilities.

The paper evaluates on four workloads: a synthetic Poisson workload with
Zipfian key popularity, a 50/50 mix of a read-heavy and a write-heavy Poisson
workload, and two production workloads from Meta and Twitter.  Production
traces are not redistributable, so :mod:`repro.workload.meta` and
:mod:`repro.workload.twitter` provide synthetic stand-ins that reproduce the
statistical properties that drive the paper's results (popularity skew,
read/write mix, and per-key request interleaving).  See ``DESIGN.md`` for the
substitution rationale.
"""

from repro.workload.base import (
    OpType,
    Request,
    Workload,
    check_sorted,
    ensure_sorted,
    merge_streams,
)
from repro.workload.zipf import ZipfSampler
from repro.workload.compiled import CompiledTrace, compile_workload
from repro.workload.poisson import PoissonZipfWorkload
from repro.workload.mixed import PoissonMixWorkload
from repro.workload.meta import MetaWorkload
from repro.workload.twitter import TwitterWorkload
from repro.workload.trace import TraceWorkload, iter_trace, read_trace, write_trace
from repro.workload.stats import WorkloadStats, characterize

__all__ = [
    "CompiledTrace",
    "MetaWorkload",
    "OpType",
    "PoissonMixWorkload",
    "PoissonZipfWorkload",
    "Request",
    "TraceWorkload",
    "TwitterWorkload",
    "Workload",
    "WorkloadStats",
    "ZipfSampler",
    "characterize",
    "check_sorted",
    "compile_workload",
    "ensure_sorted",
    "iter_trace",
    "merge_streams",
    "read_trace",
    "write_trace",
]
