"""Zipfian key-popularity sampling.

The paper's synthetic workload draws keys from a Zipfian distribution with
exponent ``s = 1.3``.  :class:`ZipfSampler` implements bounded Zipf sampling
over a fixed key population using inverse-CDF lookup, which is fast enough to
generate millions of requests and exactly reproducible for a fixed seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


class ZipfSampler:
    """Sample key indices from a bounded Zipf (zeta) distribution.

    The probability of rank ``i`` (1-indexed) is ``i**-s / H(n, s)`` where
    ``H`` is the generalised harmonic number over ``n`` keys.

    Args:
        num_keys: Size of the key population (must be >= 1).
        exponent: Zipf exponent ``s`` (must be > 0).  Larger values
            concentrate more mass on the most popular keys.
        seed: Seed for the internal random generator.  Sampling with the same
            seed and arguments yields identical sequences.
    """

    def __init__(self, num_keys: int, exponent: float, seed: int | None = None) -> None:
        if num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {num_keys}")
        if exponent <= 0:
            raise ConfigurationError(f"Zipf exponent must be > 0, got {exponent}")
        self.num_keys = int(num_keys)
        self.exponent = float(exponent)
        ranks = np.arange(1, self.num_keys + 1, dtype=np.float64)
        weights = ranks ** (-self.exponent)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)
        self._rng = np.random.default_rng(seed)

    @property
    def probabilities(self) -> np.ndarray:
        """Per-rank probabilities, most popular first (rank 0 is hottest)."""
        return self._probabilities.copy()

    def probability_of(self, rank: int) -> float:
        """Return the sampling probability of the key at ``rank`` (0-based)."""
        if not 0 <= rank < self.num_keys:
            raise ConfigurationError(
                f"rank must be in [0, {self.num_keys}), got {rank}"
            )
        return float(self._probabilities[rank])

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` key ranks (0-based) according to the distribution."""
        return self.sample_using(self._rng, count)

    def sample_using(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` key ranks (0-based) using a caller-supplied generator.

        Streaming workloads draw from a per-call generator so that two
        iterations over the same workload yield identical streams; the
        sampler's own generator (used by :meth:`sample`) is stateful across
        calls and cannot provide that guarantee.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        uniform = rng.random(count)
        # Inverse-CDF lookup against the table precomputed at construction;
        # ``copy=False`` skips the defensive copy when searchsorted already
        # returned int64 (every 64-bit platform).
        return np.searchsorted(self._cdf, uniform, side="left").astype(np.int64, copy=False)

    def sample_one(self) -> int:
        """Draw a single key rank (0-based)."""
        return int(self.sample(1)[0])

    def expected_rates(self, total_rate: float) -> np.ndarray:
        """Split an aggregate request rate across keys by popularity.

        Args:
            total_rate: Aggregate arrival rate (requests/second) over all keys.

        Returns:
            Per-key arrival rates, hottest key first.
        """
        if total_rate < 0:
            raise ConfigurationError(f"total_rate must be >= 0, got {total_rate}")
        return self._probabilities * total_rate


def zipf_probabilities(num_keys: int, exponent: float) -> Sequence[float]:
    """Return the bounded-Zipf probability vector without building a sampler."""
    sampler = ZipfSampler(num_keys=num_keys, exponent=exponent, seed=0)
    return sampler.probabilities.tolist()
