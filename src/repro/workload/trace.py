"""Reading and writing request traces as CSV files.

The simulator consumes request streams, and experiments often want to persist
a generated workload (so that every policy is evaluated on the exact same
trace) or to load externally collected traces.  The format is a simple CSV
with header ``time,key,op,key_size,value_size``.

Both directions stream: :func:`write_trace` accepts any iterable and writes
row by row, and :func:`iter_trace` yields requests as the file is read, so a
multi-gigabyte trace replays in constant memory.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence

from repro.errors import WorkloadError
from repro.workload.base import OpType, Request, Workload, check_sorted

_HEADER = ["time", "key", "op", "key_size", "value_size"]


def write_trace(requests: Iterable[Request], path: str | Path) -> int:
    """Write a request stream to ``path`` in CSV format.

    Args:
        requests: Requests to persist (any iterable; written in order).
        path: Destination file path.

    Returns:
        The number of requests written.
    """
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for request in requests:
            writer.writerow(
                [
                    f"{request.time:.9f}",
                    request.key,
                    request.op.value,
                    request.key_size,
                    request.value_size,
                ]
            )
            count += 1
    return count


def iter_trace(path: str | Path) -> Iterator[Request]:
    """Lazily yield the requests stored in a CSV trace file.

    Rows are parsed and validated (including time-ordering) as they are
    consumed, so the full trace is never materialized.

    Raises:
        WorkloadError: If the file is missing, has an unexpected header,
            contains malformed rows, or is not sorted by time.
    """
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"trace file does not exist: {path}")
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise WorkloadError(f"trace file is empty: {path}") from exc
        if header != _HEADER:
            raise WorkloadError(
                f"unexpected trace header in {path}: {header!r} (expected {_HEADER!r})"
            )
        previous = float("-inf")
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(_HEADER):
                raise WorkloadError(
                    f"malformed row at {path}:{line_number}: expected "
                    f"{len(_HEADER)} fields, got {len(row)}"
                )
            try:
                request = Request(
                    time=float(row[0]),
                    key=row[1],
                    op=OpType(row[2]),
                    key_size=int(row[3]),
                    value_size=int(row[4]),
                )
            except (ValueError, KeyError) as exc:
                raise WorkloadError(
                    f"malformed row at {path}:{line_number}: {row!r}"
                ) from exc
            if request.time < previous:
                raise WorkloadError(
                    f"trace is not sorted by time at {path}:{line_number}: "
                    f"{request.time} < {previous}"
                )
            previous = request.time
            yield request


def read_trace(path: str | Path) -> List[Request]:
    """Load a whole trace file into memory (materializing :func:`iter_trace`)."""
    return list(iter_trace(path))


class TraceWorkload(Workload):
    """A workload backed by a pre-recorded trace.

    The trace can be given either as an in-memory request list or as a path to
    a CSV trace file.  Path-backed traces stream straight from disk on every
    iteration; in-memory traces are validated once at construction.
    """

    name = "trace"

    def __init__(
        self,
        requests: Sequence[Request] | None = None,
        path: str | Path | None = None,
        name: str | None = None,
    ) -> None:
        if (requests is None) == (path is None):
            raise WorkloadError("provide exactly one of 'requests' or 'path'")
        self._path: Path | None = None
        self._requests: List[Request] | None = None
        self._count: int | None = None
        if path is not None:
            self._path = Path(path)
            if not self._path.exists():
                raise WorkloadError(f"trace file does not exist: {self._path}")
        else:
            self._requests = list(requests or [])
            check_sorted(self._requests)
        if name is not None:
            self.name = name

    def __len__(self) -> int:
        if self._requests is not None:
            return len(self._requests)
        # Path-backed traces stream; counting takes one pass over the file,
        # cached so repeated len() calls do not re-parse a huge trace.
        if self._count is None:
            self._count = sum(1 for _ in iter_trace(self._path))
        return self._count

    def iter_requests(self, duration: float | None = None) -> Iterator[Request]:
        """Lazily yield the trace, truncated to ``duration`` seconds if given."""
        if self._requests is not None:
            source: Iterable[Request] = iter(self._requests)
        else:
            source = iter_trace(self._path)
        for request in source:
            if duration is not None and request.time >= duration:
                # The stream is time-ordered, so nothing later can qualify.
                break
            yield request

    def generate(self, duration: float | None = None) -> List[Request]:
        """Return the trace, truncated to ``duration`` seconds if given."""
        return list(self.iter_requests(duration))
