"""Reading and writing request traces as CSV files.

The simulator consumes in-memory request lists, but experiments often want to
persist a generated workload (so that every policy is evaluated on the exact
same trace) or to load externally collected traces.  The format is a simple
CSV with header ``time,key,op,key_size,value_size``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence

from repro.errors import WorkloadError
from repro.workload.base import OpType, Request, Workload, check_sorted

_HEADER = ["time", "key", "op", "key_size", "value_size"]


def write_trace(requests: Iterable[Request], path: str | Path) -> int:
    """Write a request stream to ``path`` in CSV format.

    Args:
        requests: Requests to persist (any iterable; written in order).
        path: Destination file path.

    Returns:
        The number of requests written.
    """
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for request in requests:
            writer.writerow(
                [
                    f"{request.time:.9f}",
                    request.key,
                    request.op.value,
                    request.key_size,
                    request.value_size,
                ]
            )
            count += 1
    return count


def read_trace(path: str | Path) -> List[Request]:
    """Load a request stream previously written with :func:`write_trace`.

    Raises:
        WorkloadError: If the file is missing, has an unexpected header, or
            contains malformed rows.
    """
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"trace file does not exist: {path}")
    requests: List[Request] = []
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise WorkloadError(f"trace file is empty: {path}") from exc
        if header != _HEADER:
            raise WorkloadError(
                f"unexpected trace header in {path}: {header!r} (expected {_HEADER!r})"
            )
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(_HEADER):
                raise WorkloadError(
                    f"malformed row at {path}:{line_number}: expected "
                    f"{len(_HEADER)} fields, got {len(row)}"
                )
            try:
                requests.append(
                    Request(
                        time=float(row[0]),
                        key=row[1],
                        op=OpType(row[2]),
                        key_size=int(row[3]),
                        value_size=int(row[4]),
                    )
                )
            except (ValueError, KeyError) as exc:
                raise WorkloadError(
                    f"malformed row at {path}:{line_number}: {row!r}"
                ) from exc
    check_sorted(requests)
    return requests


class TraceWorkload(Workload):
    """A workload backed by a pre-recorded trace.

    The trace can be given either as an in-memory request list or as a path to
    a CSV trace file.  :meth:`generate` returns the prefix of the trace that
    falls within the requested duration.
    """

    name = "trace"

    def __init__(
        self,
        requests: Sequence[Request] | None = None,
        path: str | Path | None = None,
        name: str | None = None,
    ) -> None:
        if (requests is None) == (path is None):
            raise WorkloadError("provide exactly one of 'requests' or 'path'")
        if path is not None:
            self._requests = read_trace(path)
        else:
            self._requests = list(requests or [])
            check_sorted(self._requests)
        if name is not None:
            self.name = name

    def __len__(self) -> int:
        return len(self._requests)

    def generate(self, duration: float | None = None) -> List[Request]:
        """Return the trace, truncated to ``duration`` seconds if given."""
        if duration is None:
            return list(self._requests)
        return [request for request in self._requests if request.time < duration]
