"""Synthetic stand-in for the Twitter production cache workload.

The paper replays traces from the Twitter in-memory cache study (Yang et al.,
ATC'21).  Those traces are not redistributable, so this module generates a
synthetic workload reproducing the properties the evaluation depends on:

* Zipfian popularity with moderate skew (exponent ~0.9),
* a sizeable write fraction — the Twitter study reports many clusters that
  are write-heavy compared to classic CDN-style caches (default ``r = 0.8``),
* per-cluster heterogeneity: a fraction of the key space is write-dominated
  (e.g. counters and timelines), the rest read-dominated, and
* diurnal rate modulation (a slow sinusoidal envelope on the arrival rate).

See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.base import (
    STREAM_CHUNK_SIZE,
    OpType,
    Request,
    Workload,
    validate_duration,
)
from repro.workload.zipf import ZipfSampler


class TwitterWorkload(Workload):
    """Synthetic workload modelled on Twitter's production cache clusters.

    Args:
        num_keys: Number of distinct keys.
        total_rate: Mean aggregate request rate in requests/second.
        read_ratio: Read probability for the read-dominated part of the key
            space.
        write_heavy_read_ratio: Read probability for the write-dominated part.
        write_heavy_key_fraction: Fraction of keys that are write-dominated.
        zipf_exponent: Popularity skew (default 0.9).
        diurnal_amplitude: Relative amplitude of the sinusoidal rate envelope
            (0 disables modulation, 0.5 means the rate swings +/-50%).
        diurnal_period: Period of the rate envelope in seconds.
        key_size: Key size in bytes.
        value_size: Mean value size in bytes (Twitter objects are small).
        seed: Seed for reproducible generation.
    """

    name = "twitter"

    def __init__(
        self,
        num_keys: int = 500,
        total_rate: float = 1500.0,
        read_ratio: float = 0.9,
        write_heavy_read_ratio: float = 0.35,
        write_heavy_key_fraction: float = 0.3,
        zipf_exponent: float = 0.9,
        diurnal_amplitude: float = 0.3,
        diurnal_period: float = 60.0,
        key_size: int = 32,
        value_size: int = 64,
        seed: int | None = None,
    ) -> None:
        if num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {num_keys}")
        if total_rate <= 0:
            raise ConfigurationError(f"total_rate must be > 0, got {total_rate}")
        for name, value in (
            ("read_ratio", read_ratio),
            ("write_heavy_read_ratio", write_heavy_read_ratio),
            ("write_heavy_key_fraction", write_heavy_key_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ConfigurationError(
                f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude}"
            )
        if diurnal_period <= 0:
            raise ConfigurationError(f"diurnal_period must be > 0, got {diurnal_period}")
        self.num_keys = int(num_keys)
        self.total_rate = float(total_rate)
        self.read_ratio = float(read_ratio)
        self.write_heavy_read_ratio = float(write_heavy_read_ratio)
        self.write_heavy_key_fraction = float(write_heavy_key_fraction)
        self.zipf_exponent = float(zipf_exponent)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.diurnal_period = float(diurnal_period)
        self.key_size = int(key_size)
        self.value_size = int(value_size)
        self.seed = seed
        self._sampler = ZipfSampler(num_keys=num_keys, exponent=zipf_exponent, seed=seed)
        # Lazily filled rank -> key-name table (one format per key, not one
        # per request), mirroring :class:`~repro.workload.poisson.PoissonZipfWorkload`.
        self._key_names: list[str | None] = [None] * self.num_keys

    def key_name(self, rank: int) -> str:
        """Return the key name for a popularity rank (0 is the hottest key)."""
        return f"tw-{rank:06d}"

    @property
    def _write_heavy_stride(self) -> int | None:
        """Rank stride of the write-heavy slice (``None`` when disabled)."""
        if self.write_heavy_key_fraction <= 0.0:
            return None
        return max(1, round(1.0 / self.write_heavy_key_fraction))

    def is_write_heavy_key(self, rank: int) -> bool:
        """Return whether the key at ``rank`` belongs to the write-heavy slice.

        Write-heavy keys are spread across the popularity distribution (every
        ``1/fraction``-th rank) rather than clustered at the head or tail, so
        both hot and cold keys appear in each class.
        """
        stride = self._write_heavy_stride
        return stride is not None and rank % stride == 0

    def _read_probabilities(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorised per-request read probability (see :meth:`is_write_heavy_key`)."""
        probabilities = np.full(ranks.shape, self.read_ratio)
        stride = self._write_heavy_stride
        if stride is not None:
            probabilities[ranks % stride == 0] = self.write_heavy_read_ratio
        return probabilities

    def iter_requests(self, duration: float) -> Iterator[Request]:
        """Lazily yield a time-ordered request stream covering ``[0, duration)``.

        The diurnally-modulated process is generated by thinning: candidate
        arrivals are drawn at the peak rate chunk by chunk and accepted with
        probability proportional to the sinusoidal envelope.  All randomness
        comes from a per-call generator, so iteration is repeatable.  The
        duration is validated eagerly, so a bad value fails at the call site.
        """
        return self._iter_requests(validate_duration(duration))

    def _iter_requests(self, duration: float) -> Iterator[Request]:
        # The draw sequence (gaps, accept flips, ranks, read flips, value
        # sizes — in that order) is pinned by the equivalence tests; the
        # optimizations below only change Request materialization.
        rng = np.random.default_rng(self.seed)
        peak_rate = self.total_rate * (1.0 + self.diurnal_amplitude)
        mean_gap = 1.0 / peak_rate
        names = self._key_names
        key_name = self.key_name
        key_size = self.key_size
        read_op, write_op, request = OpType.READ, OpType.WRITE, Request
        now = 0.0
        while now < duration:
            gaps = rng.exponential(mean_gap, size=STREAM_CHUNK_SIZE)
            candidate = now + np.cumsum(gaps)
            now = float(candidate[-1])
            envelope = 1.0 + self.diurnal_amplitude * np.sin(
                2.0 * np.pi * candidate / self.diurnal_period
            )
            accept = rng.random(STREAM_CHUNK_SIZE) < (self.total_rate * envelope) / peak_rate
            if now >= duration:
                accept &= candidate < duration
            times = candidate[accept]
            count = times.size
            ranks = self._sampler.sample_using(rng, count)
            is_read = rng.random(count) < self._read_probabilities(ranks)
            value_sizes = np.maximum(
                8, rng.lognormal(mean=np.log(self.value_size), sigma=0.6, size=count)
            ).astype(np.int64)
            for time, rank, is_r, size in zip(
                times.tolist(), ranks.tolist(), is_read.tolist(), value_sizes.tolist()
            ):
                name = names[rank]
                if name is None:
                    name = names[rank] = key_name(rank)
                yield request(time, name, read_op if is_r else write_op, key_size, size)
