"""Synthetic stand-in for the Twitter production cache workload.

The paper replays traces from the Twitter in-memory cache study (Yang et al.,
ATC'21).  Those traces are not redistributable, so this module generates a
synthetic workload reproducing the properties the evaluation depends on:

* Zipfian popularity with moderate skew (exponent ~0.9),
* a sizeable write fraction — the Twitter study reports many clusters that
  are write-heavy compared to classic CDN-style caches (default ``r = 0.8``),
* per-cluster heterogeneity: a fraction of the key space is write-dominated
  (e.g. counters and timelines), the rest read-dominated, and
* diurnal rate modulation (a slow sinusoidal envelope on the arrival rate).

See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.base import OpType, Request, Workload, validate_duration
from repro.workload.zipf import ZipfSampler


class TwitterWorkload(Workload):
    """Synthetic workload modelled on Twitter's production cache clusters.

    Args:
        num_keys: Number of distinct keys.
        total_rate: Mean aggregate request rate in requests/second.
        read_ratio: Read probability for the read-dominated part of the key
            space.
        write_heavy_read_ratio: Read probability for the write-dominated part.
        write_heavy_key_fraction: Fraction of keys that are write-dominated.
        zipf_exponent: Popularity skew (default 0.9).
        diurnal_amplitude: Relative amplitude of the sinusoidal rate envelope
            (0 disables modulation, 0.5 means the rate swings +/-50%).
        diurnal_period: Period of the rate envelope in seconds.
        key_size: Key size in bytes.
        value_size: Mean value size in bytes (Twitter objects are small).
        seed: Seed for reproducible generation.
    """

    name = "twitter"

    def __init__(
        self,
        num_keys: int = 500,
        total_rate: float = 1500.0,
        read_ratio: float = 0.9,
        write_heavy_read_ratio: float = 0.35,
        write_heavy_key_fraction: float = 0.3,
        zipf_exponent: float = 0.9,
        diurnal_amplitude: float = 0.3,
        diurnal_period: float = 60.0,
        key_size: int = 32,
        value_size: int = 64,
        seed: int | None = None,
    ) -> None:
        if num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {num_keys}")
        if total_rate <= 0:
            raise ConfigurationError(f"total_rate must be > 0, got {total_rate}")
        for name, value in (
            ("read_ratio", read_ratio),
            ("write_heavy_read_ratio", write_heavy_read_ratio),
            ("write_heavy_key_fraction", write_heavy_key_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ConfigurationError(
                f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude}"
            )
        if diurnal_period <= 0:
            raise ConfigurationError(f"diurnal_period must be > 0, got {diurnal_period}")
        self.num_keys = int(num_keys)
        self.total_rate = float(total_rate)
        self.read_ratio = float(read_ratio)
        self.write_heavy_read_ratio = float(write_heavy_read_ratio)
        self.write_heavy_key_fraction = float(write_heavy_key_fraction)
        self.zipf_exponent = float(zipf_exponent)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.diurnal_period = float(diurnal_period)
        self.key_size = int(key_size)
        self.value_size = int(value_size)
        self.seed = seed
        self._sampler = ZipfSampler(num_keys=num_keys, exponent=zipf_exponent, seed=seed)

    def key_name(self, rank: int) -> str:
        """Return the key name for a popularity rank (0 is the hottest key)."""
        return f"tw-{rank:06d}"

    def is_write_heavy_key(self, rank: int) -> bool:
        """Return whether the key at ``rank`` belongs to the write-heavy slice.

        Write-heavy keys are spread across the popularity distribution (every
        ``1/fraction``-th rank) rather than clustered at the head or tail, so
        both hot and cold keys appear in each class.
        """
        if self.write_heavy_key_fraction <= 0.0:
            return False
        stride = max(1, round(1.0 / self.write_heavy_key_fraction))
        return rank % stride == 0

    def _thinned_times(self, rng: np.random.Generator, duration: float) -> np.ndarray:
        """Draw arrival times from a sinusoidally-modulated Poisson process."""
        peak_rate = self.total_rate * (1.0 + self.diurnal_amplitude)
        expected = int(peak_rate * duration) + 16
        count = int(rng.poisson(expected))
        if count == 0:
            return np.empty(0)
        candidate = np.sort(rng.random(count) * duration)
        envelope = 1.0 + self.diurnal_amplitude * np.sin(
            2.0 * np.pi * candidate / self.diurnal_period
        )
        accept = rng.random(count) < (self.total_rate * envelope) / peak_rate
        return candidate[accept]

    def generate(self, duration: float) -> List[Request]:
        """Generate a time-ordered request stream covering ``[0, duration)``."""
        duration = validate_duration(duration)
        rng = np.random.default_rng(self.seed)
        times = self._thinned_times(rng, duration)
        count = times.size
        if count == 0:
            return []
        ranks = self._sampler.sample(count)
        read_probabilities = np.array(
            [
                self.write_heavy_read_ratio
                if self.is_write_heavy_key(int(rank))
                else self.read_ratio
                for rank in ranks
            ]
        )
        is_read = rng.random(count) < read_probabilities
        value_sizes = np.maximum(
            8, rng.lognormal(mean=np.log(self.value_size), sigma=0.6, size=count)
        ).astype(np.int64)
        return [
            Request(
                time=float(times[i]),
                key=self.key_name(int(ranks[i])),
                op=OpType.READ if is_read[i] else OpType.WRITE,
                key_size=self.key_size,
                value_size=int(value_sizes[i]),
            )
            for i in range(count)
        ]
