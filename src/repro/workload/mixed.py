"""The "Poisson (Mix)" workload: a 50/50 blend of read- and write-heavy traffic.

The paper evaluates the adaptive policy on a workload that mixes two Poisson
workloads — one read-heavy and one write-heavy — to model a cache shared by
multiple applications.  Different keys therefore favour different freshness
actions (updates for read-heavy keys, invalidates for write-heavy keys),
which is exactly the situation the adaptive policy is designed for.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import ConfigurationError
from repro.workload.base import Request, Workload, merge_streams, validate_duration
from repro.workload.poisson import PoissonKeyProfile, PoissonZipfWorkload


class PoissonMixWorkload(Workload):
    """Mixture of a read-heavy and a write-heavy Poisson workload.

    Each component owns a disjoint half of the key population (prefixes
    ``rh`` and ``wh``), mirroring a shared cache serving two applications
    with different access patterns.

    Args:
        num_keys: Total number of keys across both components (split evenly).
        rate_per_key: Mean per-key request rate for both components.
        read_heavy_ratio: Read probability of the read-heavy component.
        write_heavy_ratio: Read probability of the write-heavy component.
        zipf_exponent: Popularity skew within each component.
        key_size: Key size in bytes.
        value_size: Value size in bytes.
        seed: Seed for reproducible generation.
    """

    name = "poisson-mix"

    def __init__(
        self,
        num_keys: int = 100,
        rate_per_key: float = 10.0,
        read_heavy_ratio: float = 0.95,
        write_heavy_ratio: float = 0.2,
        zipf_exponent: float = 1.3,
        key_size: int = 16,
        value_size: int = 128,
        seed: int | None = None,
    ) -> None:
        if num_keys < 2:
            raise ConfigurationError(f"num_keys must be >= 2 to split, got {num_keys}")
        if not 0.0 <= write_heavy_ratio <= read_heavy_ratio <= 1.0:
            raise ConfigurationError(
                "expected 0 <= write_heavy_ratio <= read_heavy_ratio <= 1, got "
                f"{write_heavy_ratio} and {read_heavy_ratio}"
            )
        self.num_keys = int(num_keys)
        self.rate_per_key = float(rate_per_key)
        self.read_heavy_ratio = float(read_heavy_ratio)
        self.write_heavy_ratio = float(write_heavy_ratio)
        self.zipf_exponent = float(zipf_exponent)
        self.seed = seed
        half = self.num_keys // 2
        base_seed = 0 if seed is None else seed
        self._read_heavy = PoissonZipfWorkload(
            num_keys=half,
            rate_per_key=rate_per_key,
            read_ratio=read_heavy_ratio,
            zipf_exponent=zipf_exponent,
            key_size=key_size,
            value_size=value_size,
            key_prefix="rh",
            seed=base_seed,
        )
        self._write_heavy = PoissonZipfWorkload(
            num_keys=self.num_keys - half,
            rate_per_key=rate_per_key,
            read_ratio=write_heavy_ratio,
            zipf_exponent=zipf_exponent,
            key_size=key_size,
            value_size=value_size,
            key_prefix="wh",
            seed=base_seed + 1,
        )

    @property
    def components(self) -> tuple[PoissonZipfWorkload, PoissonZipfWorkload]:
        """Return the (read-heavy, write-heavy) component workloads."""
        return self._read_heavy, self._write_heavy

    def key_profiles(self) -> List[PoissonKeyProfile]:
        """Return per-key rate/read-ratio profiles across both components."""
        return self._read_heavy.key_profiles() + self._write_heavy.key_profiles()

    def iter_requests(self, duration: float) -> Iterator[Request]:
        """Lazily yield the merged, time-ordered request stream.

        Both components stream incrementally and are merged with a lazy
        two-way heap merge, so the mixture never materializes either side.
        """
        duration = validate_duration(duration)
        return merge_streams(
            [self._read_heavy.iter_requests(duration), self._write_heavy.iter_requests(duration)]
        )
