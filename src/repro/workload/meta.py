"""Synthetic stand-in for the Meta (Facebook) production cache workload.

The paper replays traces from Meta's CacheLib/CacheBench suite.  Those traces
are not redistributable, so this module generates a synthetic workload that
reproduces the published statistical properties the evaluation depends on:

* strongly skewed key popularity (Zipf-like, exponent ~1.05),
* a read-dominated mix (roughly 30 GETs per SET, i.e. ``r ~ 0.97``),
* bursty arrivals (hyperexponential inter-arrival times rather than pure
  Poisson), and
* a small population of very hot keys that absorb most traffic.

The figures in the paper depend on per-key read/write interleaving and
popularity skew, both of which this generator models explicitly; absolute
request counts differ from the production traces but the resulting cost
curves retain the published shape.  See DESIGN.md for the substitution note.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.base import OpType, Request, Workload, validate_duration
from repro.workload.zipf import ZipfSampler


class MetaWorkload(Workload):
    """Bursty, read-dominated synthetic workload modelled on Meta's caches.

    Args:
        num_keys: Number of distinct keys.
        total_rate: Aggregate request rate in requests/second.
        read_ratio: Probability that a request is a read (default 0.97,
            approximating the ~30:1 GET:SET ratio reported for Meta's
            key-value caches).
        zipf_exponent: Popularity skew (default 1.05).
        burstiness: Ratio between the fast and slow arrival phases of the
            hyperexponential inter-arrival process.  ``1.0`` reduces to a
            Poisson process; larger values create heavier bursts.
        hot_fraction: Fraction of arrivals generated during bursts.
        key_size: Key size in bytes (Meta keys are small, default 24).
        value_size: Mean value size in bytes.
        seed: Seed for reproducible generation.
    """

    name = "meta"

    def __init__(
        self,
        num_keys: int = 500,
        total_rate: float = 2000.0,
        read_ratio: float = 0.97,
        zipf_exponent: float = 1.05,
        burstiness: float = 4.0,
        hot_fraction: float = 0.3,
        key_size: int = 24,
        value_size: int = 256,
        seed: int | None = None,
    ) -> None:
        if num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {num_keys}")
        if total_rate <= 0:
            raise ConfigurationError(f"total_rate must be > 0, got {total_rate}")
        if not 0.0 <= read_ratio <= 1.0:
            raise ConfigurationError(f"read_ratio must be in [0, 1], got {read_ratio}")
        if burstiness < 1.0:
            raise ConfigurationError(f"burstiness must be >= 1.0, got {burstiness}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        self.num_keys = int(num_keys)
        self.total_rate = float(total_rate)
        self.read_ratio = float(read_ratio)
        self.zipf_exponent = float(zipf_exponent)
        self.burstiness = float(burstiness)
        self.hot_fraction = float(hot_fraction)
        self.key_size = int(key_size)
        self.value_size = int(value_size)
        self.seed = seed
        self._sampler = ZipfSampler(num_keys=num_keys, exponent=zipf_exponent, seed=seed)

    def key_name(self, rank: int) -> str:
        """Return the key name for a popularity rank (0 is the hottest key)."""
        return f"meta-{rank:06d}"

    def _interarrival_times(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw hyperexponential inter-arrival gaps with the configured mean."""
        mean_gap = 1.0 / self.total_rate
        # Two-phase hyperexponential: a fraction of arrivals come from a
        # faster phase (bursts), the rest from a slower phase, with the
        # overall mean kept at 1/total_rate.
        p_fast = self.hot_fraction
        if p_fast in (0.0, 1.0) or self.burstiness == 1.0:
            return rng.exponential(mean_gap, size=count)
        fast_mean = mean_gap / self.burstiness
        slow_mean = (mean_gap - p_fast * fast_mean) / (1.0 - p_fast)
        phases = rng.random(count) < p_fast
        gaps = np.where(
            phases,
            rng.exponential(fast_mean, size=count),
            rng.exponential(slow_mean, size=count),
        )
        return gaps

    def generate(self, duration: float) -> List[Request]:
        """Generate a time-ordered request stream covering ``[0, duration)``."""
        duration = validate_duration(duration)
        rng = np.random.default_rng(self.seed)
        expected = int(self.total_rate * duration * 1.2) + 16
        gaps = self._interarrival_times(rng, expected)
        times = np.cumsum(gaps)
        while times.size and times[-1] < duration:
            extra = self._interarrival_times(rng, expected // 2 + 16)
            times = np.concatenate([times, times[-1] + np.cumsum(extra)])
        times = times[times < duration]
        count = times.size
        if count == 0:
            return []
        ranks = self._sampler.sample(count)
        is_read = rng.random(count) < self.read_ratio
        value_sizes = np.maximum(
            16, rng.lognormal(mean=np.log(self.value_size), sigma=0.5, size=count)
        ).astype(np.int64)
        return [
            Request(
                time=float(times[i]),
                key=self.key_name(int(ranks[i])),
                op=OpType.READ if is_read[i] else OpType.WRITE,
                key_size=self.key_size,
                value_size=int(value_sizes[i]),
            )
            for i in range(count)
        ]
