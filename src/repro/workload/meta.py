"""Synthetic stand-in for the Meta (Facebook) production cache workload.

The paper replays traces from Meta's CacheLib/CacheBench suite.  Those traces
are not redistributable, so this module generates a synthetic workload that
reproduces the published statistical properties the evaluation depends on:

* strongly skewed key popularity (Zipf-like, exponent ~1.05),
* a read-dominated mix (roughly 30 GETs per SET, i.e. ``r ~ 0.97``),
* bursty arrivals (hyperexponential inter-arrival times rather than pure
  Poisson), and
* a small population of very hot keys that absorb most traffic.

The figures in the paper depend on per-key read/write interleaving and
popularity skew, both of which this generator models explicitly; absolute
request counts differ from the production traces but the resulting cost
curves retain the published shape.  See DESIGN.md for the substitution note.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.base import (
    STREAM_CHUNK_SIZE,
    OpType,
    Request,
    Workload,
    validate_duration,
)
from repro.workload.zipf import ZipfSampler


class MetaWorkload(Workload):
    """Bursty, read-dominated synthetic workload modelled on Meta's caches.

    Args:
        num_keys: Number of distinct keys.
        total_rate: Aggregate request rate in requests/second.
        read_ratio: Probability that a request is a read (default 0.97,
            approximating the ~30:1 GET:SET ratio reported for Meta's
            key-value caches).
        zipf_exponent: Popularity skew (default 1.05).
        burstiness: Ratio between the fast and slow arrival phases of the
            hyperexponential inter-arrival process.  ``1.0`` reduces to a
            Poisson process; larger values create heavier bursts.
        hot_fraction: Fraction of arrivals generated during bursts.
        key_size: Key size in bytes (Meta keys are small, default 24).
        value_size: Mean value size in bytes.
        seed: Seed for reproducible generation.
    """

    name = "meta"

    def __init__(
        self,
        num_keys: int = 500,
        total_rate: float = 2000.0,
        read_ratio: float = 0.97,
        zipf_exponent: float = 1.05,
        burstiness: float = 4.0,
        hot_fraction: float = 0.3,
        key_size: int = 24,
        value_size: int = 256,
        seed: int | None = None,
    ) -> None:
        if num_keys < 1:
            raise ConfigurationError(f"num_keys must be >= 1, got {num_keys}")
        if total_rate <= 0:
            raise ConfigurationError(f"total_rate must be > 0, got {total_rate}")
        if not 0.0 <= read_ratio <= 1.0:
            raise ConfigurationError(f"read_ratio must be in [0, 1], got {read_ratio}")
        if burstiness < 1.0:
            raise ConfigurationError(f"burstiness must be >= 1.0, got {burstiness}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        self.num_keys = int(num_keys)
        self.total_rate = float(total_rate)
        self.read_ratio = float(read_ratio)
        self.zipf_exponent = float(zipf_exponent)
        self.burstiness = float(burstiness)
        self.hot_fraction = float(hot_fraction)
        self.key_size = int(key_size)
        self.value_size = int(value_size)
        self.seed = seed
        self._sampler = ZipfSampler(num_keys=num_keys, exponent=zipf_exponent, seed=seed)

    def key_name(self, rank: int) -> str:
        """Return the key name for a popularity rank (0 is the hottest key)."""
        return f"meta-{rank:06d}"

    def _interarrival_times(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw hyperexponential inter-arrival gaps with the configured mean."""
        mean_gap = 1.0 / self.total_rate
        # Two-phase hyperexponential: a fraction of arrivals come from a
        # faster phase (bursts), the rest from a slower phase, with the
        # overall mean kept at 1/total_rate.
        p_fast = self.hot_fraction
        if p_fast in (0.0, 1.0) or self.burstiness == 1.0:
            return rng.exponential(mean_gap, size=count)
        fast_mean = mean_gap / self.burstiness
        slow_mean = (mean_gap - p_fast * fast_mean) / (1.0 - p_fast)
        phases = rng.random(count) < p_fast
        gaps = np.where(
            phases,
            rng.exponential(fast_mean, size=count),
            rng.exponential(slow_mean, size=count),
        )
        return gaps

    def iter_requests(self, duration: float) -> Iterator[Request]:
        """Lazily yield a time-ordered request stream covering ``[0, duration)``.

        Inter-arrival gaps, key ranks, read/write coins, and value sizes are
        drawn chunk by chunk from a per-call generator, so the stream is both
        constant-memory and identical on every iteration.  The duration is
        validated eagerly, so a bad value fails at the call site.
        """
        return self._iter_requests(validate_duration(duration))

    def _iter_requests(self, duration: float) -> Iterator[Request]:
        rng = np.random.default_rng(self.seed)
        now = 0.0
        while now < duration:
            gaps = self._interarrival_times(rng, STREAM_CHUNK_SIZE)
            times = now + np.cumsum(gaps)
            now = float(times[-1])
            ranks = self._sampler.sample_using(rng, STREAM_CHUNK_SIZE)
            is_read = rng.random(STREAM_CHUNK_SIZE) < self.read_ratio
            value_sizes = np.maximum(
                16,
                rng.lognormal(mean=np.log(self.value_size), sigma=0.5, size=STREAM_CHUNK_SIZE),
            ).astype(np.int64)
            if now >= duration:
                inside = times < duration
                times = times[inside]
                ranks = ranks[inside]
                is_read = is_read[inside]
                value_sizes = value_sizes[inside]
            for i in range(times.size):
                yield Request(
                    time=float(times[i]),
                    key=self.key_name(int(ranks[i])),
                    op=OpType.READ if is_read[i] else OpType.WRITE,
                    key_size=self.key_size,
                    value_size=int(value_sizes[i]),
                )
