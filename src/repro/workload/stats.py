"""Workload characterisation utilities.

The analytical model (:mod:`repro.model`) needs per-key arrival rates and
read ratios; experiments also report aggregate workload properties next to
their results.  :func:`characterize` derives both from a concrete request
stream, which is useful for the Meta/Twitter-style workloads whose per-key
parameters are not known in closed form.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

from repro.workload.base import Request


@dataclass(slots=True)
class KeyStats:
    """Observed request statistics for a single key."""

    reads: int = 0
    writes: int = 0
    first_time: float = float("inf")
    last_time: float = float("-inf")

    @property
    def total(self) -> int:
        """Total number of requests to the key."""
        return self.reads + self.writes

    @property
    def read_ratio(self) -> float:
        """Observed fraction of requests that are reads."""
        return self.reads / self.total if self.total else 0.0

    def rate(self, duration: float) -> float:
        """Observed request rate over the workload duration."""
        return self.total / duration if duration > 0 else 0.0


@dataclass(slots=True)
class WorkloadStats:
    """Aggregate and per-key statistics of a request stream."""

    duration: float
    total_requests: int
    total_reads: int
    total_writes: int
    per_key: Dict[str, KeyStats] = field(default_factory=dict)

    @property
    def num_keys(self) -> int:
        """Number of distinct keys observed."""
        return len(self.per_key)

    @property
    def read_ratio(self) -> float:
        """Aggregate fraction of requests that are reads."""
        return self.total_reads / self.total_requests if self.total_requests else 0.0

    @property
    def aggregate_rate(self) -> float:
        """Aggregate request rate in requests/second."""
        return self.total_requests / self.duration if self.duration > 0 else 0.0

    def mean_rate_per_key(self) -> float:
        """Mean per-key request rate in requests/second."""
        if not self.per_key or self.duration <= 0:
            return 0.0
        return self.aggregate_rate / self.num_keys

    def hottest_keys(self, count: int = 10) -> Sequence[str]:
        """Return the ``count`` most requested keys, hottest first."""
        ranked = sorted(self.per_key.items(), key=lambda item: item[1].total, reverse=True)
        return [key for key, _ in ranked[:count]]

    def key_rates(self) -> Mapping[str, float]:
        """Per-key observed request rates (requests/second)."""
        return {key: stats.rate(self.duration) for key, stats in self.per_key.items()}

    def key_read_ratios(self) -> Mapping[str, float]:
        """Per-key observed read ratios."""
        return {key: stats.read_ratio for key, stats in self.per_key.items()}


def characterize(requests: Sequence[Request], duration: float | None = None) -> WorkloadStats:
    """Compute aggregate and per-key statistics for a request stream.

    Args:
        requests: The request stream (need not be sorted).
        duration: Workload duration; defaults to the largest request time.

    Returns:
        A :class:`WorkloadStats` summary.
    """
    per_key: Dict[str, KeyStats] = defaultdict(KeyStats)
    total_reads = 0
    total_writes = 0
    max_time = 0.0
    for request in requests:
        stats = per_key[request.key]
        if request.is_read:
            stats.reads += 1
            total_reads += 1
        else:
            stats.writes += 1
            total_writes += 1
        stats.first_time = min(stats.first_time, request.time)
        stats.last_time = max(stats.last_time, request.time)
        max_time = max(max_time, request.time)
    if duration is None:
        duration = max_time
    return WorkloadStats(
        duration=float(duration),
        total_requests=total_reads + total_writes,
        total_reads=total_reads,
        total_writes=total_writes,
        per_key=dict(per_key),
    )
