"""Core request and workload abstractions.

A workload is a finite, time-ordered stream of :class:`Request` objects.  The
simulator (:mod:`repro.sim`) replays the stream against a cache-aside cache
and a backend data store, so every generator in this package must produce
requests sorted by ``time``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, List, Sequence

from repro.errors import WorkloadError


class OpType(Enum):
    """Type of a single request issued by the application."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Request:
    """A single application request.

    Attributes:
        time: Arrival time in seconds from the start of the workload.
        key: Object key being read or written.
        op: Whether the request is a read or a write.
        key_size: Size of the key in bytes (used by the cost model when the
            network or serialisation is the bottleneck).
        value_size: Size of the value in bytes.
    """

    time: float
    key: str
    op: OpType
    key_size: int = 16
    value_size: int = 128

    @property
    def is_read(self) -> bool:
        """Return ``True`` when the request is a read."""
        return self.op is OpType.READ

    @property
    def is_write(self) -> bool:
        """Return ``True`` when the request is a write."""
        return self.op is OpType.WRITE


class Workload(ABC):
    """A reproducible generator of request streams.

    Concrete workloads are configured at construction time (rates, key
    population, read ratio, seed) and produce a request stream on demand via
    :meth:`generate`.  Generators must be deterministic for a fixed seed.
    """

    #: Human-readable name used in experiment reports.
    name: str = "workload"

    @abstractmethod
    def generate(self, duration: float) -> List[Request]:
        """Generate all requests arriving within ``[0, duration)`` seconds.

        Args:
            duration: Length of the generated trace in seconds.

        Returns:
            Requests sorted by arrival time.

        Raises:
            WorkloadError: If ``duration`` is not positive.
        """

    def iter_requests(self, duration: float) -> Iterator[Request]:
        """Iterate over the generated requests (convenience wrapper)."""
        return iter(self.generate(duration))


def validate_duration(duration: float) -> float:
    """Validate a workload duration, returning it unchanged.

    Raises:
        WorkloadError: If the duration is not a positive, finite number.
    """
    if not (duration > 0):
        raise WorkloadError(f"workload duration must be positive, got {duration!r}")
    if duration != duration or duration == float("inf"):
        raise WorkloadError(f"workload duration must be finite, got {duration!r}")
    return float(duration)


def merge_streams(streams: Sequence[Iterable[Request]]) -> List[Request]:
    """Merge several request streams into a single time-ordered stream.

    The merge is stable: requests with identical timestamps keep the order of
    their source streams.

    Args:
        streams: Request iterables, each already sorted by time.

    Returns:
        A single list sorted by arrival time.
    """
    merged: List[Request] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda request: request.time)
    return merged


def check_sorted(requests: Sequence[Request]) -> None:
    """Raise :class:`WorkloadError` if ``requests`` is not time-ordered."""
    previous = float("-inf")
    for index, request in enumerate(requests):
        if request.time < previous:
            raise WorkloadError(
                f"request stream is not sorted by time at index {index}: "
                f"{request.time} < {previous}"
            )
        previous = request.time


@dataclass(slots=True)
class RequestLog:
    """A mutable accumulator used by generators while building a stream."""

    requests: List[Request] = field(default_factory=list)

    def add(self, request: Request) -> None:
        """Append a request to the log."""
        self.requests.append(request)

    def sorted(self) -> List[Request]:
        """Return the accumulated requests sorted by time."""
        return sorted(self.requests, key=lambda request: request.time)
