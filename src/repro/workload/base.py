"""Core request and workload abstractions.

A workload is a finite, time-ordered stream of :class:`Request` objects.  The
simulator (:mod:`repro.sim`) replays the stream against a cache-aside cache
and a backend data store, so every generator in this package must produce
requests sorted by ``time``.

The streaming contract: :meth:`Workload.iter_requests` is the primitive every
generator implements — it yields requests lazily, in time order, so a trace of
tens of millions of requests can be replayed in constant memory.
:meth:`Workload.generate` is a thin materializing wrapper kept for callers
that genuinely need the whole stream at once (e.g. the clairvoyant optimal
policy, or persisting a trace to disk).
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from operator import attrgetter
from typing import Iterable, Iterator, List, Sequence

from repro.errors import WorkloadError

#: Number of requests generators draw per vectorised batch while streaming.
#: Large enough to amortise numpy call overhead, small enough that a pipeline
#: of several generators stays well under a megabyte of buffered requests.
STREAM_CHUNK_SIZE = 16384


class OpType(Enum):
    """Type of a single request issued by the application."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(slots=True, unsafe_hash=True)
class Request:
    """A single application request.

    Requests are treated as immutable by convention: generators build them
    once and nothing downstream mutates them (scenarios that rewrite a
    request use :func:`dataclasses.replace` to build a new one).  The class
    is deliberately *not* ``frozen=True`` — the generated frozen ``__init__``
    assigns every field through ``object.__setattr__`` and is ~3.5x slower,
    which is pure overhead on the replay hot path where millions of requests
    are constructed per run.

    Attributes:
        time: Arrival time in seconds from the start of the workload.
        key: Object key being read or written.
        op: Whether the request is a read or a write.
        key_size: Size of the key in bytes (used by the cost model when the
            network or serialisation is the bottleneck).
        value_size: Size of the value in bytes.
    """

    time: float
    key: str
    op: OpType
    key_size: int = 16
    value_size: int = 128

    @property
    def is_read(self) -> bool:
        """Return ``True`` when the request is a read."""
        return self.op is OpType.READ

    @property
    def is_write(self) -> bool:
        """Return ``True`` when the request is a write."""
        return self.op is OpType.WRITE


class Workload(ABC):
    """A reproducible generator of request streams.

    Concrete workloads are configured at construction time (rates, key
    population, read ratio, seed) and produce a request stream on demand via
    :meth:`iter_requests` (lazy, the primitive) or :meth:`generate`
    (materialized convenience).  Generators must be deterministic for a fixed
    seed: two calls to :meth:`iter_requests` with the same duration must yield
    identical streams, which means per-call RNG state — never RNG state shared
    across calls.
    """

    #: Human-readable name used in experiment reports.
    name: str = "workload"

    @abstractmethod
    def iter_requests(self, duration: float) -> Iterator[Request]:
        """Lazily yield the requests arriving within ``[0, duration)`` seconds.

        Args:
            duration: Length of the generated trace in seconds.

        Yields:
            Requests sorted by arrival time.

        Raises:
            WorkloadError: If ``duration`` is not positive and finite.
        """

    def generate(self, duration: float) -> List[Request]:
        """Materialize the full request stream (thin wrapper over the iterator).

        Prefer feeding :meth:`iter_requests` straight into the simulator; use
        this only when the whole stream is genuinely needed at once.
        """
        return list(self.iter_requests(duration))


def validate_duration(duration: float) -> float:
    """Validate a workload duration, returning it unchanged.

    Raises:
        WorkloadError: If the duration is not a positive, finite number.
    """
    if not (duration > 0):
        raise WorkloadError(f"workload duration must be positive, got {duration!r}")
    if not math.isfinite(duration):
        raise WorkloadError(f"workload duration must be finite, got {duration!r}")
    return float(duration)


def merge_streams(streams: Sequence[Iterable[Request]]) -> Iterator[Request]:
    """Lazily merge several time-ordered request streams into one.

    Each input must already be sorted by time; the merge is performed with
    :func:`heapq.merge`, so only one buffered request per input stream is held
    at any moment.  The merge is stable: requests with identical timestamps
    keep the order of their source streams.

    Args:
        streams: Request iterables, each already sorted by time.

    Returns:
        A lazy iterator over the merged, time-ordered stream.
    """
    return heapq.merge(*streams, key=attrgetter("time"))


def check_sorted(requests: Sequence[Request]) -> None:
    """Raise :class:`WorkloadError` if ``requests`` is not time-ordered."""
    previous = float("-inf")
    for index, request in enumerate(requests):
        if request.time < previous:
            raise WorkloadError(
                f"request stream is not sorted by time at index {index}: "
                f"{request.time} < {previous}"
            )
        previous = request.time


def ensure_sorted(requests: Iterable[Request]) -> Iterator[Request]:
    """Yield ``requests`` unchanged, raising on the first ordering violation.

    The streaming counterpart of :func:`check_sorted`: wrap a lazily produced
    stream to validate time-ordering as it is consumed, without materializing.

    Raises:
        WorkloadError: As soon as a request arrives out of order.
    """
    previous = float("-inf")
    for index, request in enumerate(requests):
        if request.time < previous:
            raise WorkloadError(
                f"request stream is not sorted by time at index {index}: "
                f"{request.time} < {previous}"
            )
        previous = request.time
        yield request


@dataclass(slots=True)
class RequestLog:
    """A mutable accumulator used by generators while building a stream."""

    requests: List[Request] = field(default_factory=list)

    def add(self, request: Request) -> None:
        """Append a request to the log."""
        self.requests.append(request)

    def sorted(self) -> List[Request]:
        """Return the accumulated requests sorted by time."""
        return sorted(self.requests, key=lambda request: request.time)
