"""Command-line entry point: ``python -m repro``.

Four subcommands drive the experiment layer:

* ``run``     — one streamed simulation (workload x policy x bound), JSON out.
* ``sweep``   — a full experiment grid executed across worker processes.
* ``cluster`` — a sharded multi-node fleet sweep with replication, failure
  scenarios, and optional hot-key policy switching.
* ``bench``   — replay-throughput benchmark emitting a ``BENCH_*.json``
  record (single-cache by default, cluster mode via ``--nodes``).

Examples::

    python -m repro run --workload poisson --policy adaptive --bound 1.0
    python -m repro sweep --policies ttl-expiry,invalidate,update,adaptive \
        --workloads poisson,poisson-mix --bounds 0.1,1,10 --csv sweep.csv
    python -m repro cluster --nodes 8 --replication 2 --scenario node-failure \
        --policies invalidate,adaptive --bounds 0.5 --duration 20 --csv fleet.csv
    python -m repro bench --requests 500000 --output-dir .
    python -m repro bench --requests 200000 --nodes 8 --replication 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.replication import READ_POLICIES
from repro.cluster.scenarios import SCENARIO_FACTORIES
from repro.experiments import (
    DEFAULT_BENCH_POLICIES,
    ExperimentSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_bench,
    run_experiment,
    write_results_csv,
    write_results_json,
)
from repro.experiments.registry import POLICY_FACTORIES, WORKLOAD_FACTORIES
from repro.experiments.runner import run_cell
from repro.experiments.spec import ChannelSpec, RunCell, stable_cell_seed


def _parse_params(pairs: Optional[Sequence[str]]) -> Dict[str, Any]:
    """Parse repeated ``key=value`` options; values are JSON when possible."""
    params: Dict[str, Any] = {}
    for pair in pairs or []:
        key, separator, raw = pair.partition("=")
        if not separator:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _csv_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _capacity(text: str) -> Optional[int]:
    return None if text.lower() in ("none", "inf", "unbounded") else int(text)


def _cmd_run(args: argparse.Namespace) -> int:
    params = _parse_params(args.param)
    seed = stable_cell_seed(args.seed, args.workload, params, args.duration)
    cell = RunCell(
        experiment="cli-run",
        cell_id=0,
        policy=args.policy,
        workload=args.workload,
        workload_params=tuple(sorted(params.items())),
        staleness_bound=args.bound,
        cache_capacity=args.capacity,
        channel=None,
        duration=args.duration,
        seed=seed,
    )
    row = run_cell(cell)
    text = json.dumps(row, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    params = _parse_params(args.param)
    workloads = [WorkloadSpec.of(name, params) for name in _csv_list(args.workloads)]
    spec = ExperimentSpec(
        name=args.name,
        policies=_csv_list(args.policies),
        workloads=workloads,
        staleness_bounds=[float(bound) for bound in _csv_list(args.bounds)],
        cache_capacities=[_capacity(cap) for cap in _csv_list(args.capacities)],
        duration=args.duration,
        base_seed=args.seed,
        cost_preset=args.cost_preset,
    )
    print(f"sweep '{spec.name}': {spec.num_cells} cells", file=sys.stderr)
    rows = run_experiment(spec, processes=args.processes)
    wrote = False
    if args.json:
        write_results_json(rows, args.json, metadata={"spec": spec.name, "cells": len(rows)})
        print(f"wrote {args.json}")
        wrote = True
    if args.csv:
        write_results_csv(rows, args.csv)
        print(f"wrote {args.csv}")
        wrote = True
    if not wrote:
        print(json.dumps(rows, indent=2))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    if args.hot_fraction is not None and args.hot_policy is None:
        raise SystemExit(
            "--hot-fraction only takes effect together with --hot-policy "
            "(hot-key detection feeds the per-shard policy switch)"
        )
    params = _parse_params(args.param)
    workloads = [WorkloadSpec.of(name, params) for name in _csv_list(args.workloads)]
    scenario_params = _parse_params(args.scenario_param)
    scenario_names = _csv_list(args.scenarios)
    real_scenarios = [name for name in scenario_names if name not in ("none", "")]
    if scenario_params and len(real_scenarios) > 1:
        raise SystemExit(
            "--scenario-param applies to every scenario; with several scenarios "
            "on the axis their constructors differ — sweep one scenario at a time"
        )
    scenarios: List[Optional[ScenarioSpec]] = [
        None if name in ("none", "") else ScenarioSpec.of(name, scenario_params)
        for name in scenario_names
    ]
    channel = None
    if args.channel_loss > 0 or args.channel_delay > 0 or args.channel_jitter > 0:
        channel = ChannelSpec(
            loss_probability=args.channel_loss,
            delay=args.channel_delay,
            jitter=args.channel_jitter,
        )
    spec = ExperimentSpec(
        name=args.name,
        policies=_csv_list(args.policies),
        workloads=workloads,
        staleness_bounds=[float(bound) for bound in _csv_list(args.bounds)],
        cache_capacities=[_capacity(cap) for cap in _csv_list(args.capacities)],
        channels=[channel],
        num_nodes=[int(nodes) for nodes in _csv_list(args.nodes)],
        replications=[int(factor) for factor in _csv_list(args.replication)],
        scenarios=scenarios,
        read_policy=args.read_policy,
        hot_policy=args.hot_policy,
        hot_fraction=args.hot_fraction if args.hot_fraction is not None else 0.02,
        vnodes=args.vnodes,
        duration=args.duration,
        base_seed=args.seed,
        cost_preset=args.cost_preset,
    )
    print(f"cluster sweep '{spec.name}': {spec.num_cells} cells", file=sys.stderr)
    rows = run_experiment(spec, processes=args.processes)
    wrote = False
    if args.json:
        write_results_json(rows, args.json, metadata={"spec": spec.name, "cells": len(rows)})
        print(f"wrote {args.json}")
        wrote = True
    if args.csv:
        write_results_csv(rows, args.csv)
        print(f"wrote {args.csv}")
        wrote = True
    if not wrote:
        print(json.dumps(rows, indent=2))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    record = run_bench(
        policies=_csv_list(args.policies),
        num_requests=args.requests,
        num_keys=args.keys,
        staleness_bound=args.bound,
        seed=args.seed,
        output_dir=args.output_dir,
        label=args.label,
        num_nodes=args.nodes if args.nodes > 0 else None,
        replication=args.replication,
    )
    for result in record["results"]:
        print(
            f"{result['policy']:>12}: {result['requests_per_sec']:>12,.0f} req/s "
            f"({result['requests']} requests in {result['wall_seconds']:.2f}s)"
        )
    print(f"peak RSS: {record['peak_rss_kib']} KiB")
    print(f"wrote {record['path']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cache-freshness simulation pipeline and experiment runner.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one streamed simulation")
    run.add_argument("--workload", default="poisson", choices=sorted(WORKLOAD_FACTORIES))
    run.add_argument("--policy", default="adaptive", choices=sorted(POLICY_FACTORIES))
    run.add_argument("--bound", type=float, default=1.0, help="staleness bound T (seconds)")
    run.add_argument("--duration", type=float, default=10.0, help="trace duration (seconds)")
    run.add_argument("--capacity", type=_capacity, default=None, help="cache capacity (objects)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--param", action="append", metavar="KEY=VALUE",
                     help="workload constructor parameter (repeatable)")
    run.add_argument("--output", help="write the result JSON here instead of stdout")
    run.set_defaults(func=_cmd_run)

    sweep = subparsers.add_parser("sweep", help="run an experiment grid in parallel")
    sweep.add_argument("--name", default="sweep")
    sweep.add_argument("--policies", default="ttl-expiry,ttl-polling,invalidate,update,adaptive")
    sweep.add_argument("--workloads", default="poisson")
    sweep.add_argument("--bounds", default="0.1,1.0,10.0")
    sweep.add_argument("--capacities", default="none")
    sweep.add_argument("--duration", type=float, default=10.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--cost-preset", default="fixed",
                       choices=["fixed", "cpu", "network", "latency"])
    sweep.add_argument("--processes", type=int, default=None,
                       help="worker processes (default: one per CPU, 1 = serial)")
    sweep.add_argument("--param", action="append", metavar="KEY=VALUE",
                       help="workload constructor parameter applied to every workload")
    sweep.add_argument("--json", help="write results JSON here")
    sweep.add_argument("--csv", help="write results CSV here")
    sweep.set_defaults(func=_cmd_sweep)

    cluster = subparsers.add_parser(
        "cluster", help="run a sharded multi-node fleet sweep"
    )
    cluster.add_argument("--name", default="cluster")
    cluster.add_argument("--nodes", default="8",
                         help="fleet-size axis, comma separated (e.g. 4,8,16)")
    cluster.add_argument("--replication", default="1",
                         help="replication-factor axis, comma separated")
    cluster.add_argument("--scenario", dest="scenarios", default="none",
                         help="scenario axis, comma separated: none, "
                              + ", ".join(sorted(SCENARIO_FACTORIES)))
    cluster.add_argument("--scenario-param", action="append", metavar="KEY=VALUE",
                         help="scenario constructor parameter (repeatable)")
    cluster.add_argument("--read-policy", default="primary", choices=READ_POLICIES)
    cluster.add_argument("--hot-policy", default=None,
                         choices=[name for name in sorted(POLICY_FACTORIES)
                                  if not getattr(POLICY_FACTORIES[name], "needs_future", False)],
                         help="freshness policy applied to detected hot keys per shard")
    cluster.add_argument("--hot-fraction", type=float, default=None,
                         help="traffic share a key needs to be flagged hot on a shard "
                              "(requires --hot-policy; default 0.02)")
    cluster.add_argument("--vnodes", type=int, default=64,
                         help="virtual nodes per physical node on the hash ring")
    cluster.add_argument("--policies", default="invalidate,update,adaptive")
    cluster.add_argument("--workloads", default="poisson")
    cluster.add_argument("--bounds", default="1.0")
    cluster.add_argument("--capacities", default="none")
    cluster.add_argument("--duration", type=float, default=10.0)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--cost-preset", default="fixed",
                         choices=["fixed", "cpu", "network", "latency"])
    cluster.add_argument("--channel-loss", type=float, default=0.0)
    cluster.add_argument("--channel-delay", type=float, default=0.0)
    cluster.add_argument("--channel-jitter", type=float, default=0.0)
    cluster.add_argument("--processes", type=int, default=None,
                         help="worker processes (default: one per CPU, 1 = serial)")
    cluster.add_argument("--param", action="append", metavar="KEY=VALUE",
                         help="workload constructor parameter applied to every workload")
    cluster.add_argument("--json", help="write results JSON here")
    cluster.add_argument("--csv", help="write results CSV here")
    cluster.set_defaults(func=_cmd_cluster)

    bench = subparsers.add_parser("bench", help="measure streaming replay throughput")
    bench.add_argument("--policies", default=",".join(DEFAULT_BENCH_POLICIES))
    bench.add_argument("--requests", type=int, default=200_000)
    bench.add_argument("--keys", type=int, default=1000)
    bench.add_argument("--bound", type=float, default=1.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--nodes", type=int, default=0,
                       help="bench the cluster replay path with this many nodes (0 = single cache)")
    bench.add_argument("--replication", type=int, default=1,
                       help="replication factor for --nodes mode")
    bench.add_argument("--output-dir", default=".")
    bench.add_argument("--label", default=None, help="suffix for the BENCH_<label>.json record")
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
