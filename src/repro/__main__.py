"""Command-line entry point: ``python -m repro``.

Three subcommands drive the experiment layer:

* ``run``    — one streamed simulation (workload x policy x bound), JSON out.
* ``sweep``  — a full experiment grid executed across worker processes.
* ``bench``  — replay-throughput benchmark emitting a ``BENCH_*.json`` record.

Examples::

    python -m repro run --workload poisson --policy adaptive --bound 1.0
    python -m repro sweep --policies ttl-expiry,invalidate,update,adaptive \
        --workloads poisson,poisson-mix --bounds 0.1,1,10 --csv sweep.csv
    python -m repro bench --requests 500000 --output-dir .
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments import (
    DEFAULT_BENCH_POLICIES,
    ExperimentSpec,
    WorkloadSpec,
    run_bench,
    run_experiment,
    write_results_csv,
    write_results_json,
)
from repro.experiments.registry import POLICY_FACTORIES, WORKLOAD_FACTORIES
from repro.experiments.runner import run_cell
from repro.experiments.spec import RunCell, stable_cell_seed


def _parse_params(pairs: Optional[Sequence[str]]) -> Dict[str, Any]:
    """Parse repeated ``key=value`` options; values are JSON when possible."""
    params: Dict[str, Any] = {}
    for pair in pairs or []:
        key, separator, raw = pair.partition("=")
        if not separator:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _csv_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _capacity(text: str) -> Optional[int]:
    return None if text.lower() in ("none", "inf", "unbounded") else int(text)


def _cmd_run(args: argparse.Namespace) -> int:
    params = _parse_params(args.param)
    seed = stable_cell_seed(args.seed, args.workload, params, args.duration)
    cell = RunCell(
        experiment="cli-run",
        cell_id=0,
        policy=args.policy,
        workload=args.workload,
        workload_params=tuple(sorted(params.items())),
        staleness_bound=args.bound,
        cache_capacity=args.capacity,
        channel=None,
        duration=args.duration,
        seed=seed,
    )
    row = run_cell(cell)
    text = json.dumps(row, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    params = _parse_params(args.param)
    workloads = [WorkloadSpec.of(name, params) for name in _csv_list(args.workloads)]
    spec = ExperimentSpec(
        name=args.name,
        policies=_csv_list(args.policies),
        workloads=workloads,
        staleness_bounds=[float(bound) for bound in _csv_list(args.bounds)],
        cache_capacities=[_capacity(cap) for cap in _csv_list(args.capacities)],
        duration=args.duration,
        base_seed=args.seed,
        cost_preset=args.cost_preset,
    )
    print(f"sweep '{spec.name}': {spec.num_cells} cells", file=sys.stderr)
    rows = run_experiment(spec, processes=args.processes)
    wrote = False
    if args.json:
        write_results_json(rows, args.json, metadata={"spec": spec.name, "cells": len(rows)})
        print(f"wrote {args.json}")
        wrote = True
    if args.csv:
        write_results_csv(rows, args.csv)
        print(f"wrote {args.csv}")
        wrote = True
    if not wrote:
        print(json.dumps(rows, indent=2))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    record = run_bench(
        policies=_csv_list(args.policies),
        num_requests=args.requests,
        num_keys=args.keys,
        staleness_bound=args.bound,
        seed=args.seed,
        output_dir=args.output_dir,
        label=args.label,
    )
    for result in record["results"]:
        print(
            f"{result['policy']:>12}: {result['requests_per_sec']:>12,.0f} req/s "
            f"({result['requests']} requests in {result['wall_seconds']:.2f}s)"
        )
    print(f"peak RSS: {record['peak_rss_kib']} KiB")
    print(f"wrote {record['path']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cache-freshness simulation pipeline and experiment runner.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one streamed simulation")
    run.add_argument("--workload", default="poisson", choices=sorted(WORKLOAD_FACTORIES))
    run.add_argument("--policy", default="adaptive", choices=sorted(POLICY_FACTORIES))
    run.add_argument("--bound", type=float, default=1.0, help="staleness bound T (seconds)")
    run.add_argument("--duration", type=float, default=10.0, help="trace duration (seconds)")
    run.add_argument("--capacity", type=_capacity, default=None, help="cache capacity (objects)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--param", action="append", metavar="KEY=VALUE",
                     help="workload constructor parameter (repeatable)")
    run.add_argument("--output", help="write the result JSON here instead of stdout")
    run.set_defaults(func=_cmd_run)

    sweep = subparsers.add_parser("sweep", help="run an experiment grid in parallel")
    sweep.add_argument("--name", default="sweep")
    sweep.add_argument("--policies", default="ttl-expiry,ttl-polling,invalidate,update,adaptive")
    sweep.add_argument("--workloads", default="poisson")
    sweep.add_argument("--bounds", default="0.1,1.0,10.0")
    sweep.add_argument("--capacities", default="none")
    sweep.add_argument("--duration", type=float, default=10.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--cost-preset", default="fixed",
                       choices=["fixed", "cpu", "network", "latency"])
    sweep.add_argument("--processes", type=int, default=None,
                       help="worker processes (default: one per CPU, 1 = serial)")
    sweep.add_argument("--param", action="append", metavar="KEY=VALUE",
                       help="workload constructor parameter applied to every workload")
    sweep.add_argument("--json", help="write results JSON here")
    sweep.add_argument("--csv", help="write results CSV here")
    sweep.set_defaults(func=_cmd_sweep)

    bench = subparsers.add_parser("bench", help="measure streaming replay throughput")
    bench.add_argument("--policies", default=",".join(DEFAULT_BENCH_POLICIES))
    bench.add_argument("--requests", type=int, default=200_000)
    bench.add_argument("--keys", type=int, default=1000)
    bench.add_argument("--bound", type=float, default=1.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--output-dir", default=".")
    bench.add_argument("--label", default=None, help="suffix for the BENCH_<label>.json record")
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
