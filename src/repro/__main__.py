"""Command-line entry point: ``python -m repro``.

Eight subcommands drive the experiment layer:

* ``run``     — one streamed simulation (workload x policy x bound), JSON out.
* ``sweep``   — a full experiment grid executed across worker processes.
* ``cluster`` — a sharded multi-node fleet sweep with replication, failure
  scenarios, and optional hot-key policy switching.
* ``tier``    — a tiered-fleet sweep: every node fronted by a small L1
  (``--l1-capacity`` / ``--tier-mode`` axes, admission policies, and the
  ``l2-outage`` / ``cold-l1`` scenarios).
* ``bench``   — replay-throughput benchmark emitting a ``BENCH_*.json``
  record (single-cache by default, cluster mode via ``--nodes``, tiered
  mode via ``--tier``, WAL append/replay throughput via ``--store``),
  with per-phase generation/replay timings; ``scripts/check_bench.py``
  compares a fresh record against the committed ``BENCH_BASELINE.json``.
* ``perf``    — component microbenchmarks of the hot paths (fingerprint,
  ring routing, request allocation, generation, sketches, cache ops, small
  replays), with ``--profile NAME`` for a cProfile table.
* ``store``   — the persistence layer: ``snapshot`` runs a journaled
  simulation (optionally killing it mid-run), ``recover`` rebuilds — and can
  resume and verify — from the durable state, ``inspect`` summarises a store
  directory.
* ``obs``     — observability artifacts: ``summary`` prints a recorded run's
  totals, window series, and latency percentiles; ``tail`` shows the last
  span/event records (``--since``/``--node`` filters); ``export`` re-emits
  windows or metrics as JSONL, CSV, or Prometheus text; ``diff`` aligns two
  runs window-by-window and ranks metric regressions (``--baseline`` gates
  against the committed ``OBS_BASELINE.json``, refreshed by
  ``scripts/check_obs.py``); ``check`` evaluates declarative SLO rules
  (exit 0 pass / 2 violation); ``report`` renders a self-contained HTML
  page with sparklines and the anomaly/SLO tables.  Record a run with
  ``run --obs --obs-dir DIR``.

``-v/--verbose`` and ``-q/--quiet`` (before the subcommand) set the log
level for the ``repro`` logger tree; library progress goes through
:mod:`logging`, result payloads through stdout.

Examples::

    python -m repro run --workload poisson --policy adaptive --bound 1.0
    python -m repro run --policy invalidate --obs --obs-window 0.5 --obs-dir obs-run
    python -m repro obs summary --dir obs-run
    python -m repro obs export --dir obs-run --format prom
    python -m repro obs diff --dir obs-run --against obs-baseline-run
    python -m repro obs check --dir obs-run --rules OBS_RULES.json
    python -m repro obs report --dir obs-run --rules OBS_RULES.json --output report.html
    python -m repro sweep --policies ttl-expiry,invalidate,update,adaptive \
        --workloads poisson,poisson-mix --bounds 0.1,1,10 --csv sweep.csv
    python -m repro cluster --nodes 8 --replication 2 --scenario node-failure \
        --policies invalidate,adaptive --bounds 0.5 --duration 20 --csv fleet.csv
    python -m repro tier --nodes 8 --l1-capacity 0,64,256 --tier-mode \
        write-through,write-back --policies invalidate --bounds 0.5 --csv tier.csv
    python -m repro tier --nodes 4 --l1-capacity 128 --scenario l2-outage \
        --policies invalidate --bounds 0.5 --duration 20
    python -m repro bench --requests 500000 --store --output-dir .
    python -m repro bench --requests 500000 --nodes 8 --tier --l1-capacity 256
    python -m repro perf --only fingerprint,replay-single --json PERF.json
    python -m repro store snapshot --dir run-store --duration 12 \
        --snapshot-interval 2 --kill-at 6
    python -m repro store recover --dir run-store --resume --verify
    python -m repro store inspect --dir run-store
"""

from __future__ import annotations

import argparse
import json
import logging
import math
import sys
import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.log import configure_logging
from repro.cluster import ClusterSimulation, ReplicationConfig
from repro.concurrency.config import (
    SERVICE_TIME_DISTRIBUTIONS,
    STAMPEDE_POLICIES,
    ConcurrencyConfig,
)
from repro.cluster.replication import READ_POLICIES
from repro.cluster.scenarios import SCENARIO_FACTORIES
from repro.errors import ClusterError, ConfigurationError, ReproError
from repro.experiments import (
    BENCH_ENGINES,
    DEFAULT_BENCH_POLICIES,
    ExperimentSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_bench,
    run_experiment,
    write_results_csv,
    write_results_json,
)
from repro.experiments.registry import POLICY_FACTORIES, WORKLOAD_FACTORIES, make_workload
from repro.experiments.runner import run_cell
from repro.experiments.spec import ChannelSpec, RunCell, stable_cell_seed
from repro.store import (
    StoreConfig,
    WalScan,
    list_snapshots,
    load_snapshot,
    recover_datastore,
    scan_wal,
)
from repro.tier.config import ADMISSION_POLICIES, TIER_MODES, TierConfig

_LOG = logging.getLogger("repro.cli")


def _parse_params(pairs: Optional[Sequence[str]]) -> Dict[str, Any]:
    """Parse repeated ``key=value`` options; values are JSON when possible."""
    params: Dict[str, Any] = {}
    for pair in pairs or []:
        key, separator, raw = pair.partition("=")
        if not separator:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _csv_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _capacity(text: str) -> Optional[int]:
    return None if text.lower() in ("none", "inf", "unbounded") else int(text)


def _positive_float(text: str) -> float:
    """Argparse type for durations/bounds that must be positive and finite."""
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from exc
    if not (math.isfinite(value) and value > 0):
        raise argparse.ArgumentTypeError(
            f"expected a positive finite number, got {text!r}"
        )
    return value


def _cli_concurrency(
    args: argparse.Namespace,
) -> Tuple[Optional[ConcurrencyConfig], List[str], List[str]]:
    """The in-flight fetch model a command line asks for.

    Returns ``(base config or None, stampede-policy axis, service-time
    axis)``.  The knob flags only take effect together with
    ``--concurrency``; passing one without it is an error rather than a
    silent no-op.
    """
    set_flags = [
        name
        for name, value in (
            ("--stampede-policy", args.stampede_policy),
            ("--service-time", args.service_time),
            ("--service-mean", args.service_mean),
            ("--backend-capacity", args.backend_capacity),
        )
        if value is not None
    ]
    if not args.concurrency:
        if set_flags:
            raise SystemExit(
                f"{set_flags[0]} only takes effect together with --concurrency"
            )
        return None, [], []
    base = ConcurrencyConfig(
        mean=args.service_mean if args.service_mean is not None else 0.05,
        capacity=args.backend_capacity if args.backend_capacity is not None else 4,
    )
    return base, _csv_list(args.stampede_policy or ""), _csv_list(args.service_time or "")


def _single_concurrency(args: argparse.Namespace) -> Optional[ConcurrencyConfig]:
    """One concrete config for the single-run command (no axes to sweep)."""
    base, policies, services = _cli_concurrency(args)
    if base is None:
        return None
    if len(policies) > 1 or len(services) > 1:
        raise SystemExit(
            "run executes one simulation: pass a single --stampede-policy / "
            "--service-time (sweep them on the sweep/cluster/tier subcommands)"
        )
    return replace(
        base,
        policy=policies[0] if policies else base.policy,
        service_time=services[0] if services else base.service_time,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    params = _parse_params(args.param)
    seed = stable_cell_seed(args.seed, args.workload, params, args.duration)
    obs_window = None
    if args.obs or args.obs_window is not None or args.obs_dir is not None:
        obs_window = args.obs_window if args.obs_window is not None else 1.0
    cell = RunCell(
        experiment="cli-run",
        cell_id=0,
        policy=args.policy,
        workload=args.workload,
        workload_params=tuple(sorted(params.items())),
        staleness_bound=args.bound,
        cache_capacity=args.capacity,
        channel=None,
        duration=args.duration,
        seed=seed,
        obs_window=obs_window,
        concurrency=_single_concurrency(args),
    )
    row = run_cell(cell)
    if args.obs_dir is not None:
        from repro.obs.export import write_run

        # The artifact set replaces the inline payload: the result row stays
        # readable and the telemetry lands where ``obs summary`` expects it.
        written = write_run(row.pop("obs"), args.obs_dir)
        row["obs_dir"] = args.obs_dir
        for path in written.values():
            _LOG.info("wrote %s", path)
    text = json.dumps(row, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _build_spec(**kwargs: Any) -> ExperimentSpec:
    """Construct an experiment spec, turning validation errors into clean
    CLI messages instead of tracebacks out of a worker mid-sweep."""
    try:
        return ExperimentSpec(**kwargs)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.snapshot_interval is not None and not args.persist:
        raise SystemExit("--snapshot-interval only takes effect together with --persist")
    params = _parse_params(args.param)
    workloads = [WorkloadSpec.of(name, params) for name in _csv_list(args.workloads)]
    slo_rules = None
    if args.slo_rules is not None:
        from repro.obs.slo import load_rules

        try:
            slo_rules = load_rules(args.slo_rules)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
        if args.obs_window is None:
            raise SystemExit("--slo-rules needs --obs-window (verdicts read the obs payload)")
    concurrency, stampede_policies, service_times = _cli_concurrency(args)
    spec = _build_spec(
        name=args.name,
        policies=_csv_list(args.policies),
        workloads=workloads,
        staleness_bounds=[float(bound) for bound in _csv_list(args.bounds)],
        cache_capacities=[_capacity(cap) for cap in _csv_list(args.capacities)],
        persistence=[args.persist],
        snapshot_intervals=[args.snapshot_interval] if args.persist else [None],
        duration=args.duration,
        base_seed=args.seed,
        cost_preset=args.cost_preset,
        engine=args.engine,
        obs_window=args.obs_window,
        slo_rules=slo_rules,
        concurrency=[concurrency],
        stampede_policies=stampede_policies,
        service_times=service_times,
    )
    _LOG.info("sweep '%s': %d cells", spec.name, spec.num_cells)
    rows = run_experiment(spec, processes=args.processes)
    wrote = False
    if args.json:
        write_results_json(rows, args.json, metadata={"spec": spec.name, "cells": len(rows)})
        print(f"wrote {args.json}")
        wrote = True
    if args.csv:
        write_results_csv(rows, args.csv)
        print(f"wrote {args.csv}")
        wrote = True
    if not wrote:
        print(json.dumps(rows, indent=2))
    return 0


def _run_fleet_sweep(args: argparse.Namespace, kind: str) -> int:
    """Shared body of the ``cluster`` and ``tier`` fleet sweeps."""
    if args.snapshot_interval is not None and not args.persist:
        raise SystemExit("--snapshot-interval only takes effect together with --persist")
    if args.hot_fraction is not None and args.hot_policy is None:
        raise SystemExit(
            "--hot-fraction only takes effect together with --hot-policy "
            "(hot-key detection feeds the per-shard policy switch)"
        )
    params = _parse_params(args.param)
    workloads = [WorkloadSpec.of(name, params) for name in _csv_list(args.workloads)]
    scenario_params = _parse_params(args.scenario_param)
    scenario_names = _csv_list(args.scenarios)
    real_scenarios = [name for name in scenario_names if name not in ("none", "")]
    if scenario_params and len(real_scenarios) > 1:
        raise SystemExit(
            "--scenario-param applies to every scenario; with several scenarios "
            "on the axis their constructors differ — sweep one scenario at a time"
        )
    scenarios: List[Optional[ScenarioSpec]] = [
        None if name in ("none", "") else ScenarioSpec.of(name, scenario_params)
        for name in scenario_names
    ]
    channel = None
    if (
        args.channel_loss > 0
        or args.channel_delay > 0
        or args.channel_jitter > 0
        or args.channel_retries > 0
    ):
        channel = ChannelSpec(
            loss_probability=args.channel_loss,
            delay=args.channel_delay,
            jitter=args.channel_jitter,
            retries=args.channel_retries,
            retry_timeout=args.channel_retry_timeout,
            retry_backoff=args.channel_retry_backoff,
        )
    chaos = None
    if args.chaos_seed is not None:
        from repro.resilience.chaos import ChaosSpec

        try:
            chaos = ChaosSpec(
                seed=args.chaos_seed,
                faults=args.chaos_faults,
                kinds=tuple(_csv_list(args.chaos_kinds)),
                window=args.chaos_window,
                loss=args.chaos_loss,
                delay=args.chaos_delay,
                slowdown=args.chaos_slowdown,
            )
        except ClusterError as exc:
            raise SystemExit(str(exc)) from exc
    concurrency, stampede_policies, service_times = _cli_concurrency(args)
    obs_window = args.obs_window
    if args.obs_dir is not None and obs_window is None:
        obs_window = 1.0
    slo_rules = None
    if args.slo_rules is not None:
        from repro.obs.slo import load_rules

        try:
            slo_rules = load_rules(args.slo_rules)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
        if obs_window is None:
            raise SystemExit("--slo-rules needs --obs-window (verdicts read the obs payload)")
    tier_axes: Dict[str, Any] = {}
    if kind == "tier":
        tier_axes = dict(
            l1_capacities=[int(capacity) for capacity in _csv_list(args.l1_capacity)],
            tier_modes=_csv_list(args.tier_mode),
            tier_admission=args.admission,
        )
    spec = _build_spec(
        name=args.name,
        policies=_csv_list(args.policies),
        workloads=workloads,
        staleness_bounds=[float(bound) for bound in _csv_list(args.bounds)],
        cache_capacities=[_capacity(cap) for cap in _csv_list(args.capacities)],
        channels=[channel],
        num_nodes=[int(nodes) for nodes in _csv_list(args.nodes)],
        replications=[int(factor) for factor in _csv_list(args.replication)],
        scenarios=scenarios,
        read_policy=args.read_policy,
        hot_policy=args.hot_policy,
        hot_fraction=args.hot_fraction if args.hot_fraction is not None else 0.02,
        vnodes=args.vnodes,
        persistence=[args.persist],
        snapshot_intervals=[args.snapshot_interval] if args.persist else [None],
        duration=args.duration,
        base_seed=args.seed,
        cost_preset=args.cost_preset,
        obs_window=obs_window,
        slo_rules=slo_rules,
        concurrency=[concurrency],
        stampede_policies=stampede_policies,
        service_times=service_times,
        zones=args.zones,
        chaos=chaos,
        **tier_axes,
    )
    _LOG.info("%s sweep '%s': %d cells", kind, spec.name, spec.num_cells)
    if args.obs_dir is not None and spec.num_cells != 1:
        raise SystemExit(
            f"--obs-dir records one run's telemetry but this sweep expands to "
            f"{spec.num_cells} cells; narrow every axis to a single value"
        )
    rows = run_experiment(spec, processes=args.processes)
    if args.obs_dir is not None:
        from repro.obs.export import write_run

        written = write_run(rows[0].pop("obs"), args.obs_dir)
        rows[0]["obs_dir"] = args.obs_dir
        for path in written.values():
            _LOG.info("wrote %s", path)
    wrote = False
    if args.json:
        write_results_json(rows, args.json, metadata={"spec": spec.name, "cells": len(rows)})
        print(f"wrote {args.json}")
        wrote = True
    if args.csv:
        write_results_csv(rows, args.csv)
        print(f"wrote {args.csv}")
        wrote = True
    if not wrote:
        print(json.dumps(rows, indent=2))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    return _run_fleet_sweep(args, "cluster")


def _cmd_tier(args: argparse.Namespace) -> int:
    return _run_fleet_sweep(args, "tier")


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import MICROBENCHES, profile_call, run_perf

    if (args.json or args.only) and (args.list or args.profile):
        raise SystemExit(
            "--json/--only configure a perf run; they cannot be combined "
            "with --list or --profile"
        )
    if args.list:
        for name in MICROBENCHES:
            print(name)
        return 0
    names = _csv_list(args.only) if args.only else None
    if args.profile:
        if args.profile not in MICROBENCHES:
            raise SystemExit(
                f"unknown benchmark {args.profile!r}; choose from "
                + ", ".join(MICROBENCHES)
            )
        print(profile_call(lambda: MICROBENCHES[args.profile](args.scale)))
        return 0
    try:
        record = run_perf(names=names, scale=args.scale)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0])) from exc
    for row in record["results"]:
        print(
            f"{row['name']:>20}: {row['ops_per_sec']:>14,.0f} ops/s "
            f"({row['ops']} ops, best {row['best_seconds']:.3f}s)"
        )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    tier = None
    if args.tier:
        if args.nodes <= 0:
            raise SystemExit("--tier benchmarks the tiered fleet path: pass --nodes too")
        tier = TierConfig(
            l1_capacity=args.l1_capacity, mode=args.tier_mode, admission="always"
        )
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1 and args.nodes <= 0:
        raise SystemExit("--workers > 1 shards a cluster replay: pass --nodes too")
    if args.workers > 1 and args.engine != "vector":
        raise SystemExit(
            "--workers > 1 is a vector-engine feature: pass --engine vector"
        )
    record = run_bench(
        policies=_csv_list(args.policies),
        num_requests=args.requests,
        num_keys=args.keys,
        staleness_bound=args.bound,
        seed=args.seed,
        output_dir=args.output_dir,
        label=args.label,
        num_nodes=args.nodes if args.nodes > 0 else None,
        replication=args.replication,
        store=args.store,
        tier=tier,
        engine=args.engine,
        workers=args.workers,
    )
    for result in record["results"]:
        print(
            f"{result['policy']:>12}: {result['requests_per_sec']:>12,.0f} req/s "
            f"({result['requests']} requests in {result['wall_seconds']:.2f}s)"
        )
        if "l1_hit_share" in result:
            print(
                f"{'':>12}  L1 share {result['l1_hit_share']:.1%} "
                f"({result['l1_hits']} L1 hits, tier cost {result['tier_cost']:.1f})"
            )
    if "store" in record:
        store = record["store"]
        print(
            f"{'wal':>12}: {store['append_per_sec']:>12,.0f} appends/s, "
            f"{store['replay_per_sec']:>12,.0f} replays/s "
            f"({store['bytes_written']} bytes, {store['flushes']} flushes)"
        )
    print(f"peak RSS: {record['peak_rss_kib']} KiB")
    print(f"wrote {record['path']}")
    return 0


# --------------------------------------------------------------------- #
# ``store`` subcommands: snapshot / recover / inspect
# --------------------------------------------------------------------- #

#: Row keys that describe persistence bookkeeping rather than simulation
#: state.  A crash checkpoint off the snapshot grid adds exactly one extra
#: snapshot + flush, so ``recover --verify`` compares everything else.
_STORE_BOOKKEEPING_KEYS = frozenset(
    {"store", "persistence_cost", "wal_appends", "wal_flushes", "snapshots_taken",
     "interrupted"}
)

_RUN_CONFIG_NAME = "RUN.json"


def _store_cluster(config: Dict[str, Any], store: StoreConfig) -> ClusterSimulation:
    """Build the journaled cluster a ``store`` run config describes."""
    workload = make_workload(
        config["workload"], seed=config["cell_seed"], params=config["workload_params"]
    )
    return ClusterSimulation(
        workload=workload.iter_requests(config["duration"]),
        policy=config["policy"],
        num_nodes=config["nodes"],
        staleness_bound=config["bound"],
        replication=ReplicationConfig(factor=config["replication"]),
        duration=config["duration"],
        workload_name=workload.name,
        seed=config["cell_seed"],
        store=store,
        # Older RUN.json files predate the tier; they ran single-tier.
        tier=TierConfig(
            l1_capacity=config.get("l1_capacity", 0),
            mode=config.get("tier_mode", "write-through"),
        ),
    )


def _cmd_store_snapshot(args: argparse.Namespace) -> int:
    root = Path(args.dir)
    if root.exists() and not root.is_dir():
        raise SystemExit(f"{root} exists and is not a directory")
    if root.is_dir() and any(root.iterdir()):
        raise SystemExit(f"store dir {root} is not empty; pick a fresh directory")
    if args.kill_at is not None and not 0 < args.kill_at < args.duration:
        raise SystemExit(
            f"--kill-at must fall inside the run (0, {args.duration}), got {args.kill_at}"
        )
    params = _parse_params(args.param)
    config = {
        "workload": args.workload,
        "workload_params": params,
        "policy": args.policy,
        "bound": args.bound,
        "duration": args.duration,
        "nodes": args.nodes,
        "replication": args.replication,
        "snapshot_interval": args.snapshot_interval,
        "kill_at": args.kill_at,
        "l1_capacity": args.l1_capacity,
        "tier_mode": args.tier_mode,
        "cell_seed": stable_cell_seed(args.seed, args.workload, params, args.duration),
    }
    store = StoreConfig(str(root), snapshot_interval=args.snapshot_interval)
    cluster = _store_cluster(config, store)
    # The run config is written before the run so a "crashed" store is still
    # self-describing for ``recover --resume``.
    root.mkdir(parents=True, exist_ok=True)
    (root / _RUN_CONFIG_NAME).write_text(json.dumps(config, indent=2) + "\n")
    result = cluster.run(stop_at=args.kill_at)
    row = result.as_dict()
    row.pop("nodes", None)
    print(json.dumps(row, indent=2))
    status = "interrupted at t={}".format(args.kill_at) if result.interrupted else "completed"
    _LOG.info("store %s: %s", status, root)
    return 0


def _load_run_config(root: Path) -> Dict[str, Any]:
    path = root / _RUN_CONFIG_NAME
    if not path.exists():
        raise SystemExit(
            f"{path} not found: this store was not created by 'store snapshot', "
            "so the run cannot be reconstructed (datastore-only recovery still "
            "works via 'store recover' without --resume)"
        )
    return json.loads(path.read_text())


def _cmd_store_recover(args: argparse.Namespace) -> int:
    root = Path(args.dir)
    if not root.is_dir():
        raise SystemExit(f"no store directory at {root}")
    output: Dict[str, Any] = {}
    exit_code = 0
    if args.resume:
        config = _load_run_config(root)
        resumed = _store_cluster(
            config, StoreConfig(str(root), snapshot_interval=config["snapshot_interval"])
        )
        # The resume's own recovery pass doubles as the report: no second
        # snapshot parse + WAL replay just for the summary.
        output["recovery"] = resumed.restore_from_store().as_dict()
        row = resumed.run().as_dict()
        row.pop("nodes", None)
        output["result"] = row
        if args.verify:
            with tempfile.TemporaryDirectory(prefix="repro-verify-") as scratch:
                reference = _store_cluster(
                    config,
                    StoreConfig(scratch, snapshot_interval=config["snapshot_interval"]),
                )
                reference_row = reference.run().as_dict()
            reference_row.pop("nodes", None)
            mismatches = {
                key: {"uninterrupted": reference_row.get(key), "recovered": row.get(key)}
                for key in set(reference_row) | set(row)
                if key not in _STORE_BOOKKEEPING_KEYS
                and reference_row.get(key) != row.get(key)
            }
            output["verify"] = {
                "matches": not mismatches,
                "mismatches": mismatches,
            }
            if mismatches:
                exit_code = 1
    elif args.verify:
        raise SystemExit("--verify needs --resume (it compares the finished runs)")
    else:
        _datastore, report = recover_datastore(root)
        output["recovery"] = report.as_dict()
    print(json.dumps(output, indent=2))
    if args.resume and args.verify:
        verdict = "identical" if exit_code == 0 else "DIVERGED"
        _LOG.info("recovered run vs uninterrupted run: %s", verdict)
    return exit_code


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    root = Path(args.dir)
    if not root.is_dir():
        raise SystemExit(f"no store directory at {root}")
    scan = WalScan()
    kinds: Dict[str, int] = {}
    first_lsn = 0
    for record in scan_wal(StoreConfig(str(root)).wal_path, scan):
        kinds[record["k"]] = kinds.get(record["k"], 0) + 1
        if first_lsn == 0:
            first_lsn = int(record["lsn"])
    snapshots = []
    for path in list_snapshots(root):
        snapshot = load_snapshot(path)
        snapshots.append(
            {
                "seq": snapshot.seq,
                "time": snapshot.time,
                "wal_lsn": snapshot.wal_lsn,
                "nodes": sorted(snapshot.nodes),
                "keys": len(snapshot.datastore.get("histories", {})),
            }
        )
    print(
        json.dumps(
            {
                "wal": {
                    "records": scan.records,
                    "first_lsn": first_lsn,
                    "last_lsn": scan.last_lsn,
                    "torn_bytes": scan.torn_bytes,
                    "writes": kinds.get("w", 0),
                    "read_deltas": kinds.get("r", 0),
                    "messages": kinds.get("m", 0),
                },
                "snapshots": snapshots,
            },
            indent=2,
        )
    )
    return 0


# --------------------------------------------------------------------- #
# ``obs`` subcommands: summary / tail / export
# --------------------------------------------------------------------- #

def _load_obs_run(directory: str) -> Dict[str, Any]:
    from repro.obs.export import load_run

    try:
        return load_run(directory)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    from repro.obs.export import summarize

    print(summarize(_load_obs_run(args.dir)))
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    payload = _load_obs_run(args.dir)
    records = payload.get("trace", [])
    if args.events_only:
        records = [record for record in records if record.get("type") == "event"]
    if args.since is not None:
        records = [
            record for record in records if record.get("time", 0.0) >= args.since
        ]
    if args.node is not None:
        records = [record for record in records if record.get("node") == args.node]
    for record in records[-args.limit:] if args.limit > 0 else records:
        print(json.dumps(record, sort_keys=True))
    return 0


def _load_obs_reference(args: argparse.Namespace) -> Dict[str, Any]:
    """The diff reference: another run directory or a committed baseline file."""
    if getattr(args, "against", None) is not None:
        return _load_obs_run(args.against)
    if args.baseline is None:
        raise SystemExit("a diff reference is required: --against DIR or --baseline FILE")
    path = args.baseline
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read baseline {path!r}: {exc}") from exc
    if record.get("kind") == "repro-obs-baseline":
        record = record.get("payload", {})
    if record.get("kind") != "repro-obs":
        raise SystemExit(f"{path!r} is not an obs baseline or payload")
    return record


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs.analyze import diff_payloads

    payload = _load_obs_run(args.dir)
    reference = _load_obs_reference(args)
    try:
        report = diff_payloads(
            reference,
            payload,
            min_delta=args.min_delta,
            min_relative=args.min_relative,
            top=args.top,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    count = report["regression_count"]
    print(
        f"diff: {report['windows_compared']} windows compared, "
        f"{count} regressions, {report['improvement_count']} improvements"
    )
    for record in report["regressions"][:10]:
        event = record.get("event") or {}
        annotation = (
            f" near {event.get('kind')}:{event.get('label')}@t={event.get('time')}"
            if event
            else ""
        )
        print(
            f"  {record['field']} worsened by {record['severity']:g} in "
            f"t=[{record['start']:g}, {record['end']:g}) "
            f"(node={record['node']}, phase={record['phase']}){annotation}"
        )
    if count and args.fail_on_regression:
        return 2
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    from repro.obs.slo import evaluate_slo, load_rules

    payload = _load_obs_run(args.dir)
    try:
        rules = load_rules(args.rules)
        verdict = evaluate_slo(payload, rules)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(verdict, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    for row in verdict["verdicts"]:
        status = "PASS" if row["ok"] else "FAIL"
        print(f"  [{status}] {row['name']}: {row['detail']}")
    if verdict["passed"]:
        print(f"slo: PASS ({len(verdict['verdicts'])} rules)")
        return 0
    print(f"slo: FAIL ({len(verdict['violations'])} violations)")
    return 2


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.analyze import detect_anomalies, diff_payloads
    from repro.obs.report import render_report
    from repro.obs.slo import evaluate_slo, load_rules

    payload = _load_obs_run(args.dir)
    anomalies = detect_anomalies(payload, threshold=args.anomaly_threshold)
    slo = None
    if args.rules:
        try:
            slo = evaluate_slo(payload, load_rules(args.rules), anomalies=anomalies)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
    diff = None
    if args.against is not None or args.baseline is not None:
        try:
            diff = diff_payloads(_load_obs_reference(args), payload)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    html_text = render_report(
        payload, anomalies=anomalies, slo=slo, diff=diff, title=args.title
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(html_text)
    print(f"wrote {args.output}")
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs.export import (
        export_prometheus,
        export_trace_jsonl,
        export_windows_csv,
        export_windows_jsonl,
    )

    payload = _load_obs_run(args.dir)
    exporters = {
        "jsonl": export_windows_jsonl,
        "csv": export_windows_csv,
        "prom": export_prometheus,
        "trace": export_trace_jsonl,
    }
    text = exporters[args.format](payload)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cache-freshness simulation pipeline and experiment runner.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="debug logging on the repro logger tree")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="errors only (suppresses progress logging)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_concurrency_arguments(sub: argparse.ArgumentParser, axis: bool) -> None:
        """The in-flight fetch model flags shared by run/sweep/cluster/tier.

        ``axis`` widens --stampede-policy / --service-time to comma-separated
        sweep axes on the grid subcommands.
        """
        plural = ", comma separated" if axis else ""
        sub.add_argument(
            "--concurrency", action="store_true",
            help="model in-flight backend fetches: misses occupy the backend "
                 "for a sampled service time (finite FIFO fetch slots), "
                 "stampede policies mitigate duplicate fetches, and per-read "
                 "latency percentiles join the results")
        sub.add_argument(
            "--stampede-policy", default=None,
            help=f"stampede mitigation{plural}: "
                 + ", ".join(STAMPEDE_POLICIES) + " (default none)")
        sub.add_argument(
            "--service-time", default=None,
            help=f"backend service-time distribution{plural}: "
                 + ", ".join(SERVICE_TIME_DISTRIBUTIONS)
                 + " (default deterministic)")
        sub.add_argument(
            "--service-mean", type=_positive_float, default=None,
            help="mean backend service time in simulated seconds (default 0.05)")
        sub.add_argument(
            "--backend-capacity", type=int, default=None,
            help="concurrent backend fetch slots (default 4)")

    run = subparsers.add_parser("run", help="run one streamed simulation")
    run.add_argument("--workload", default="poisson", choices=sorted(WORKLOAD_FACTORIES))
    run.add_argument("--policy", default="adaptive", choices=sorted(POLICY_FACTORIES))
    run.add_argument("--bound", type=_positive_float, default=1.0,
                     help="staleness bound T (seconds)")
    run.add_argument("--duration", type=_positive_float, default=10.0,
                     help="trace duration (seconds)")
    run.add_argument("--capacity", type=_capacity, default=None, help="cache capacity (objects)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--param", action="append", metavar="KEY=VALUE",
                     help="workload constructor parameter (repeatable)")
    run.add_argument("--output", help="write the result JSON here instead of stdout")
    run.add_argument("--obs", action="store_true",
                     help="record windowed telemetry, spans, and events "
                          "(results stay byte-identical)")
    run.add_argument("--obs-window", type=_positive_float, default=None,
                     help="telemetry window width in simulated seconds "
                          "(implies --obs; default 1.0)")
    run.add_argument("--obs-dir", default=None,
                     help="write the obs artifact set (OBS_RUN.json, "
                          "windows.jsonl, trace.jsonl, metrics.prom) into "
                          "this directory (implies --obs)")
    add_concurrency_arguments(run, axis=False)
    run.set_defaults(func=_cmd_run)

    sweep = subparsers.add_parser("sweep", help="run an experiment grid in parallel")
    sweep.add_argument("--name", default="sweep")
    sweep.add_argument("--policies", default="ttl-expiry,ttl-polling,invalidate,update,adaptive")
    sweep.add_argument("--workloads", default="poisson")
    sweep.add_argument("--bounds", default="0.1,1.0,10.0")
    sweep.add_argument("--capacities", default="none")
    sweep.add_argument("--duration", type=_positive_float, default=10.0)
    sweep.add_argument("--persist", action="store_true",
                       help="run every cell with a write-ahead log + snapshots "
                            "(store counters join the rows)")
    sweep.add_argument("--snapshot-interval", type=_positive_float, default=None,
                       help="snapshot cadence for --persist cells (default: final only)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--engine", default="scalar", choices=BENCH_ENGINES,
                       help="replay engine for every cell: streamed scalar or "
                            "compiled columnar (byte-identical rows)")
    sweep.add_argument("--cost-preset", default="fixed",
                       choices=["fixed", "cpu", "network", "latency"])
    sweep.add_argument("--processes", type=int, default=None,
                       help="worker processes (default: one per CPU, 1 = serial)")
    sweep.add_argument("--param", action="append", metavar="KEY=VALUE",
                       help="workload constructor parameter applied to every workload")
    sweep.add_argument("--obs-window", type=_positive_float, default=None,
                       help="record windowed telemetry for every cell into the "
                            "row's obs key (results stay byte-identical)")
    sweep.add_argument("--slo-rules", default=None, metavar="FILE",
                       help="evaluate these SLO rules against every cell's obs "
                            "payload into the row's slo key (needs --obs-window)")
    add_concurrency_arguments(sweep, axis=True)
    sweep.add_argument("--json", help="write results JSON here")
    sweep.add_argument("--csv", help="write results CSV here")
    sweep.set_defaults(func=_cmd_sweep)

    def add_fleet_arguments(fleet: argparse.ArgumentParser, name_default: str) -> None:
        """Arguments shared by the ``cluster`` and ``tier`` fleet sweeps."""
        fleet.add_argument("--name", default=name_default)
        fleet.add_argument("--nodes", default="8",
                           help="fleet-size axis, comma separated (e.g. 4,8,16)")
        fleet.add_argument("--replication", default="1",
                           help="replication-factor axis, comma separated")
        fleet.add_argument("--scenario", dest="scenarios", default="none",
                           help="scenario axis, comma separated: none, "
                                + ", ".join(sorted(SCENARIO_FACTORIES)))
        fleet.add_argument("--scenario-param", action="append", metavar="KEY=VALUE",
                           help="scenario constructor parameter (repeatable)")
        fleet.add_argument("--read-policy", default="primary", choices=READ_POLICIES)
        fleet.add_argument("--hot-policy", default=None,
                           choices=[name for name in sorted(POLICY_FACTORIES)
                                    if not getattr(POLICY_FACTORIES[name], "needs_future",
                                                   False)],
                           help="freshness policy applied to detected hot keys per shard")
        fleet.add_argument("--hot-fraction", type=float, default=None,
                           help="traffic share a key needs to be flagged hot on a shard "
                                "(requires --hot-policy; default 0.02)")
        fleet.add_argument("--vnodes", type=int, default=64,
                           help="virtual nodes per physical node on the hash ring")
        fleet.add_argument("--policies", default="invalidate,update,adaptive")
        fleet.add_argument("--workloads", default="poisson")
        fleet.add_argument("--bounds", default="1.0")
        fleet.add_argument("--capacities", default="none")
        fleet.add_argument("--duration", type=_positive_float, default=10.0)
        fleet.add_argument("--persist", action="store_true",
                           help="run every cell with a write-ahead log + snapshots")
        fleet.add_argument("--snapshot-interval", type=_positive_float, default=None,
                           help="snapshot cadence for --persist cells (default: final only)")
        fleet.add_argument("--seed", type=int, default=0)
        fleet.add_argument("--cost-preset", default="fixed",
                           choices=["fixed", "cpu", "network", "latency"])
        fleet.add_argument("--channel-loss", type=float, default=0.0)
        fleet.add_argument("--channel-delay", type=float, default=0.0)
        fleet.add_argument("--channel-jitter", type=float, default=0.0)
        fleet.add_argument("--channel-retries", type=int, default=0,
                           help="sender re-attempts against probabilistic channel "
                                "loss (0 = fire-and-forget)")
        fleet.add_argument("--channel-retry-timeout", type=float, default=0.0,
                           help="seconds an attempt waits before retrying")
        fleet.add_argument("--channel-retry-backoff", type=float, default=0.0,
                           help="exponential backoff base added per retry")
        fleet.add_argument("--zones", type=int, default=1,
                           help="failure domains labeled round-robin over the ring "
                                "(zone-outage needs >= 2; labels never move keys)")
        fleet.add_argument("--chaos-seed", type=int, default=None,
                           help="enable seeded chaos injection with this plan seed")
        fleet.add_argument("--chaos-faults", type=int, default=4,
                           help="fault budget of the chaos plan (needs --chaos-seed)")
        fleet.add_argument("--chaos-kinds", default="delay,drop,slow-node,crash",
                           help="fault kinds to draw from, comma separated: "
                                "delay, drop, slow-node, crash")
        fleet.add_argument("--chaos-window", type=float, default=0.1,
                           help="fraction of the run each windowed fault lasts")
        fleet.add_argument("--chaos-loss", type=float, default=0.5,
                           help="partial loss rate of drop faults")
        fleet.add_argument("--chaos-delay", type=float, default=0.5,
                           help="extra channel delay of delay faults (seconds)")
        fleet.add_argument("--chaos-slowdown", type=float, default=4.0,
                           help="service-time multiplier of slow-node faults")
        fleet.add_argument("--processes", type=int, default=None,
                           help="worker processes (default: one per CPU, 1 = serial)")
        fleet.add_argument("--param", action="append", metavar="KEY=VALUE",
                           help="workload constructor parameter applied to every workload")
        add_concurrency_arguments(fleet, axis=True)
        fleet.add_argument("--obs-window", type=_positive_float, default=None,
                           help="record windowed telemetry for every cell into "
                                "the row's obs key (results stay byte-identical)")
        fleet.add_argument("--obs-dir", default=None,
                           help="write the obs artifact set for a single-cell "
                                "sweep into this directory (implies --obs-window 1.0)")
        fleet.add_argument("--slo-rules", default=None, metavar="FILE",
                           help="evaluate these SLO rules against every cell's "
                                "obs payload into the row's slo key (needs --obs-window)")
        fleet.add_argument("--json", help="write results JSON here")
        fleet.add_argument("--csv", help="write results CSV here")

    cluster = subparsers.add_parser(
        "cluster", help="run a sharded multi-node fleet sweep"
    )
    add_fleet_arguments(cluster, "cluster")
    cluster.set_defaults(func=_cmd_cluster)

    tier = subparsers.add_parser(
        "tier", help="run a tiered (L1/L2) fleet sweep"
    )
    add_fleet_arguments(tier, "tier")
    tier.add_argument("--l1-capacity", default="256",
                      help="L1-capacity axis, comma separated (objects per node; "
                           "0 = single-tier baseline)")
    tier.add_argument("--tier-mode", default="write-through",
                      help="tier fill-mode axis, comma separated: "
                           + ", ".join(TIER_MODES))
    tier.add_argument("--admission", default="second-hit", choices=ADMISSION_POLICIES,
                      help="L1 admission policy (default: second-hit)")
    tier.set_defaults(func=_cmd_tier)

    perf = subparsers.add_parser(
        "perf", help="microbenchmark the replay hot-path components"
    )
    perf.add_argument("--list", action="store_true", help="list benchmark names and exit")
    perf.add_argument("--only", default=None,
                      help="comma-separated benchmark names (default: all)")
    perf.add_argument("--scale", type=float, default=1.0,
                      help="multiplier on every benchmark's operation count")
    perf.add_argument("--profile", metavar="NAME", default=None,
                      help="run one benchmark under cProfile and print the table")
    perf.add_argument("--json", help="write the perf record JSON here")
    perf.set_defaults(func=_cmd_perf)

    bench = subparsers.add_parser("bench", help="measure streaming replay throughput")
    bench.add_argument("--policies", default=",".join(DEFAULT_BENCH_POLICIES))
    bench.add_argument("--requests", type=int, default=200_000)
    bench.add_argument("--keys", type=int, default=1000)
    bench.add_argument("--bound", type=float, default=1.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--nodes", type=int, default=0,
                       help="bench the cluster replay path with this many nodes (0 = single cache)")
    bench.add_argument("--replication", type=int, default=1,
                       help="replication factor for --nodes mode")
    bench.add_argument("--store", action="store_true",
                       help="also measure WAL append + replay throughput")
    bench.add_argument("--tier", action="store_true",
                       help="front every node with an L1 (tiered replay path; "
                            "requires --nodes)")
    bench.add_argument("--l1-capacity", type=int, default=256,
                       help="L1 objects per node for --tier mode")
    bench.add_argument("--tier-mode", default="write-through", choices=TIER_MODES,
                       help="tier fill mode for --tier mode")
    bench.add_argument("--engine", default="scalar", choices=BENCH_ENGINES,
                       help="replay engine: the streamed scalar pipeline or the "
                            "columnar vector one (byte-identical results)")
    bench.add_argument("--workers", type=int, default=1,
                       help="shard-parallel worker processes for --engine vector "
                            "cluster benches (requires --nodes)")
    bench.add_argument("--output-dir", default=".")
    bench.add_argument("--label", default=None, help="suffix for the BENCH_<label>.json record")
    bench.set_defaults(func=_cmd_bench)

    store = subparsers.add_parser(
        "store", help="durable persistence: snapshot / recover / inspect"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    snapshot = store_sub.add_parser(
        "snapshot",
        help="run a journaled simulation into a store dir (optionally killing it mid-run)",
    )
    snapshot.add_argument("--dir", required=True, help="store directory (must be empty)")
    snapshot.add_argument("--workload", default="poisson", choices=sorted(WORKLOAD_FACTORIES))
    snapshot.add_argument("--policy", default="invalidate",
                          choices=[name for name in sorted(POLICY_FACTORIES)
                                   if not getattr(POLICY_FACTORIES[name], "needs_future", False)])
    snapshot.add_argument("--bound", type=_positive_float, default=1.0)
    snapshot.add_argument("--duration", type=_positive_float, default=10.0)
    snapshot.add_argument("--nodes", type=int, default=1,
                          help="fleet size (1 = single-cache-equivalent node)")
    snapshot.add_argument("--replication", type=int, default=1)
    snapshot.add_argument("--snapshot-interval", type=_positive_float, default=None,
                          help="snapshot cadence (default: checkpoint only at the end/kill)")
    snapshot.add_argument("--kill-at", type=_positive_float, default=None,
                          help="crash the run at this simulated time after a durable checkpoint")
    snapshot.add_argument("--l1-capacity", type=int, default=0,
                          help="front every node with an L1 of this many objects "
                               "(0 = single-tier; L1 state is checkpointed too)")
    snapshot.add_argument("--tier-mode", default="write-through", choices=TIER_MODES,
                          help="tier fill mode when --l1-capacity > 0")
    snapshot.add_argument("--seed", type=int, default=0)
    snapshot.add_argument("--param", action="append", metavar="KEY=VALUE",
                          help="workload constructor parameter (repeatable)")
    snapshot.set_defaults(func=_cmd_store_snapshot)

    recover = store_sub.add_parser(
        "recover", help="rebuild the datastore from snapshot + WAL replay"
    )
    recover.add_argument("--dir", required=True, help="store directory")
    recover.add_argument("--resume", action="store_true",
                         help="also resume the interrupted run to completion")
    recover.add_argument("--verify", action="store_true",
                         help="with --resume: compare against a fresh uninterrupted "
                              "run and exit non-zero on divergence")
    recover.set_defaults(func=_cmd_store_recover)

    inspect = store_sub.add_parser("inspect", help="summarise a store directory")
    inspect.add_argument("--dir", required=True, help="store directory")
    inspect.set_defaults(func=_cmd_store_inspect)

    obs = subparsers.add_parser(
        "obs", help="summarise, tail, or export a recorded observability run"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_summary = obs_sub.add_parser(
        "summary", help="print totals, window series, and latency percentiles"
    )
    obs_summary.add_argument("--dir", required=True,
                             help="obs run directory (from run --obs-dir)")
    obs_summary.set_defaults(func=_cmd_obs_summary)

    obs_tail = obs_sub.add_parser(
        "tail", help="print the last span/event records as JSON lines"
    )
    obs_tail.add_argument("--dir", required=True,
                          help="obs run directory (from run --obs-dir)")
    obs_tail.add_argument("--since", type=float, default=None,
                          help="only records with time >= T (simulated seconds)")
    obs_tail.add_argument("--node", default=None,
                          help="only records attributed to this node id")
    obs_tail.add_argument("--limit", type=int, default=20,
                          help="records to show (0 = all; default 20)")
    obs_tail.add_argument("--events-only", action="store_true",
                          help="show discrete events only (skip request spans)")
    obs_tail.set_defaults(func=_cmd_obs_tail)

    obs_export = obs_sub.add_parser(
        "export", help="re-emit windows, metrics, or the trace in a standard format"
    )
    obs_export.add_argument("--dir", required=True,
                            help="obs run directory (from run --obs-dir)")
    obs_export.add_argument("--format", default="jsonl",
                            choices=["jsonl", "csv", "prom", "trace"],
                            help="windows as JSONL/CSV, metrics as Prometheus "
                                 "text, or the span/event trace as JSONL")
    obs_export.add_argument("--output", default=None,
                            help="write here instead of stdout")
    obs_export.set_defaults(func=_cmd_obs_export)

    def add_reference_arguments(sub: argparse.ArgumentParser) -> None:
        """The diff reference: a second run directory or a committed baseline."""
        group = sub.add_mutually_exclusive_group()
        group.add_argument("--against", default=None, metavar="DIR",
                           help="reference obs run directory")
        group.add_argument("--baseline", default=None, metavar="FILE",
                           help="committed baseline record "
                                "(OBS_BASELINE.json, from scripts/check_obs.py)")

    obs_diff = obs_sub.add_parser(
        "diff",
        help="align two runs window-by-window and rank metric regressions",
    )
    obs_diff.add_argument("--dir", required=True,
                          help="obs run directory under inspection")
    add_reference_arguments(obs_diff)
    obs_diff.add_argument("--min-delta", type=float, default=1e-9,
                          help="smallest worse-direction delta that counts")
    obs_diff.add_argument("--min-relative", type=float, default=0.0,
                          help="smallest delta relative to the base value")
    obs_diff.add_argument("--top", type=int, default=50,
                          help="keep at most this many ranked regressions")
    obs_diff.add_argument("--json", default=None,
                          help="write the full diff report JSON here")
    obs_diff.add_argument("--fail-on-regression", action="store_true",
                          help="exit 2 when any regression is found (CI gate)")
    obs_diff.set_defaults(func=_cmd_obs_diff)

    obs_check = obs_sub.add_parser(
        "check", help="evaluate declarative SLO rules against a recorded run"
    )
    obs_check.add_argument("--dir", required=True,
                           help="obs run directory (from run --obs-dir)")
    obs_check.add_argument("--rules", required=True,
                           help="SLO rules JSON file (list of rule objects or "
                                "a repro-obs-slo-rules wrapper)")
    obs_check.add_argument("--json", default=None,
                           help="write the structured verdict JSON here")
    obs_check.set_defaults(func=_cmd_obs_check)

    obs_report = obs_sub.add_parser(
        "report",
        help="render a self-contained HTML report (sparklines, anomalies, SLOs)",
    )
    obs_report.add_argument("--dir", required=True,
                            help="obs run directory (from run --obs-dir)")
    add_reference_arguments(obs_report)
    obs_report.add_argument("--rules", default=None,
                            help="SLO rules file to evaluate into the report")
    obs_report.add_argument("--anomaly-threshold", type=float, default=3.0,
                            help="anomaly detector deviation threshold")
    obs_report.add_argument("--output", required=True,
                            help="write the HTML report here")
    obs_report.add_argument("--title", default="repro obs report")
    obs_report.set_defaults(func=_cmd_obs_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(verbosity=args.verbose, quiet=args.quiet)
    try:
        return args.func(args)
    except ReproError as exc:
        # Library-level misuse (unresumable store, bad scenario wiring, ...)
        # becomes a clean CLI error, matching the argparse paths.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
