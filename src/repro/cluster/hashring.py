"""Consistent-hash ring with virtual nodes.

The fleet shards the key space across cache nodes with consistent hashing:
every node is hashed onto a 64-bit ring at ``vnodes`` points, and a key is
owned by the first node clockwise from the key's own hash.  Replicas are the
next distinct nodes along the ring.  Virtual nodes smooth the load split, and
consistent hashing keeps rebalances minimal — when a node leaves, only the
keys it owned move, which is what makes the node-failure scenarios meaningful
(a naive ``hash % n`` would reshuffle the entire key space on every change).

Hashing uses the same stable BLAKE2 fingerprint as the sketches
(:func:`repro.sketch.hashing.stable_fingerprint`), so ring placement is
deterministic across processes and Python invocations.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Tuple

from repro.errors import ClusterError
from repro.sketch.hashing import stable_fingerprint


class ConsistentHashRing:
    """Maps keys to nodes via consistent hashing with virtual nodes.

    Args:
        vnodes: Number of ring points per node.  More vnodes means a more
            even key split at the cost of a larger ring (lookup stays
            ``O(log(nodes * vnodes))``).
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        # Sorted list of (point, node_id) pairs; parallel structures keep
        # lookup allocation-free.
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[str]:
        """Node ids currently on the ring, in insertion-independent order."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add_node(self, node_id: str) -> None:
        """Place ``node_id`` on the ring at its ``vnodes`` points."""
        if node_id in self._nodes:
            raise ClusterError(f"node {node_id!r} is already on the ring")
        points = []
        for vnode in range(self.vnodes):
            point = stable_fingerprint(f"{node_id}#{vnode}")
            insort(self._points, (point, node_id))
            points.append(point)
        self._nodes[node_id] = points

    def remove_node(self, node_id: str) -> None:
        """Remove ``node_id`` and all its ring points."""
        points = self._nodes.pop(node_id, None)
        if points is None:
            raise ClusterError(f"node {node_id!r} is not on the ring")
        self._points = [pair for pair in self._points if pair[1] != node_id]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def primary(self, key: str) -> str:
        """Return the node owning ``key``."""
        return self.nodes_for(key, 1)[0]

    def nodes_for(self, key: str, count: int) -> List[str]:
        """Return up to ``count`` distinct nodes for ``key``, primary first.

        Walks the ring clockwise from the key's hash, skipping duplicate
        nodes, so the result is the primary followed by the replicas in ring
        order.  Returns fewer than ``count`` nodes when the ring holds fewer
        distinct nodes.

        Raises:
            ClusterError: If the ring is empty.
        """
        if not self._points:
            raise ClusterError("hash ring is empty; no node can own any key")
        if count < 1:
            raise ClusterError(f"count must be >= 1, got {count}")
        start = bisect_right(self._points, (stable_fingerprint(key), ""))
        chosen: List[str] = []
        seen = set()
        total = len(self._points)
        for offset in range(total):
            _, node_id = self._points[(start + offset) % total]
            if node_id in seen:
                continue
            seen.add(node_id)
            chosen.append(node_id)
            if len(chosen) == count:
                break
        return chosen

    def ownership_counts(self, keys: List[str]) -> Dict[str, int]:
        """Count how many of ``keys`` each node owns (for balance reporting)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.primary(key)] += 1
        return counts
