"""Consistent-hash ring with virtual nodes.

The fleet shards the key space across cache nodes with consistent hashing:
every node is hashed onto a 64-bit ring at ``vnodes`` points, and a key is
owned by the first node clockwise from the key's own hash.  Replicas are the
next distinct nodes along the ring.  Virtual nodes smooth the load split, and
consistent hashing keeps rebalances minimal — when a node leaves, only the
keys it owned move, which is what makes the node-failure scenarios meaningful
(a naive ``hash % n`` would reshuffle the entire key space on every change).

Hashing uses the same stable BLAKE2 fingerprint as the sketches
(:func:`repro.sketch.hashing.stable_fingerprint`), so ring placement is
deterministic across processes and Python invocations.

Lookup is the cluster simulator's per-request hot path, so the ring keeps two
structures: the canonical sorted ``(point, node_id)`` list, and flat parallel
arrays (``point hashes`` / ``point owners``) that make the bisect walk
allocation-free.  On top sits a per-``count`` routing cache mapping keys to
their replica tuples; membership is effectively static between scenario
events, so after warm-up a lookup is a single dict probe.  Every membership
change (add/remove) invalidates the cache and rebuilds the flat arrays.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Optional, Tuple

from repro.errors import ClusterError
from repro.sketch.hashing import stable_fingerprint

#: Bound of each per-count routing cache; cleared wholesale on overflow so a
#: stream of millions of distinct keys cannot grow the ring's memory without
#: bound.  Sized to the same ~tens-of-MiB budget as the fingerprint memo
#: (`DEFAULT_FINGERPRINT_CACHE_SIZE`): for realistic Zipf-skewed streams the
#: hot keys dominate lookups, so a larger cache buys almost no hit rate.
_MAX_CACHED_ROUTES = 1 << 17


class ConsistentHashRing:
    """Maps keys to nodes via consistent hashing with virtual nodes.

    Args:
        vnodes: Number of ring points per node.  More vnodes means a more
            even key split at the cost of a larger ring (lookup stays
            ``O(log(nodes * vnodes))``).
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        # Canonical sorted list of (point, node_id) pairs.
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, List[int]] = {}
        # Flat parallel mirrors of ``_points`` (rebuilt on membership change):
        # bisect over a plain int list beats tuple-compare bisect, and the
        # clockwise walk indexes owner strings without unpacking tuples.
        self._point_hashes: List[int] = []
        self._point_owners: List[str] = []
        # count -> {key -> replica tuple}; cleared in place on membership
        # change so aliases held by hot loops stay valid.
        self._route_caches: Dict[int, Dict[str, Tuple[str, ...]]] = {}
        # node_id -> failure-domain label.  Zones do not influence placement
        # (points depend only on the node id, so a node rejoining after a
        # zone outage lands on exactly its old points); they exist so
        # correlated-failure scenarios can select "everything in zone-1".
        self._zones: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[str]:
        """Node ids currently on the ring, in insertion-independent order."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add_node(self, node_id: str, zone: Optional[str] = None) -> None:
        """Place ``node_id`` on the ring at its ``vnodes`` points.

        ``zone`` optionally labels the node's failure domain.  Zones never
        affect placement — ring points hash only the node id — so they are
        pure metadata for correlated-failure scenarios.
        """
        if node_id in self._nodes:
            raise ClusterError(f"node {node_id!r} is already on the ring")
        points = []
        for vnode in range(self.vnodes):
            point = stable_fingerprint(f"{node_id}#{vnode}")
            insort(self._points, (point, node_id))
            points.append(point)
        self._nodes[node_id] = points
        if zone is not None:
            self._zones[node_id] = str(zone)
        self._membership_changed()

    def remove_node(self, node_id: str) -> None:
        """Remove ``node_id`` and all its ring points.

        The node's zone label (if any) is kept, so a rejoin after a zone
        outage restores the node to its original failure domain.
        """
        points = self._nodes.pop(node_id, None)
        if points is None:
            raise ClusterError(f"node {node_id!r} is not on the ring")
        self._points = [pair for pair in self._points if pair[1] != node_id]
        self._membership_changed()

    def zone_of(self, node_id: str) -> Optional[str]:
        """Failure-domain label of ``node_id``, or ``None`` if unlabeled."""
        return self._zones.get(node_id)

    def zone_members(self, zone: str) -> List[str]:
        """Node ids labeled with ``zone`` that are currently on the ring."""
        return sorted(
            node_id
            for node_id, label in self._zones.items()
            if label == str(zone) and node_id in self._nodes
        )

    @property
    def zones(self) -> List[str]:
        """Distinct zone labels of nodes currently on the ring, sorted."""
        return sorted(
            {label for node, label in self._zones.items() if node in self._nodes}
        )

    def _membership_changed(self) -> None:
        """Rebuild the flat mirrors and drop every cached route."""
        self._point_hashes = [point for point, _ in self._points]
        self._point_owners = [owner for _, owner in self._points]
        for cache in self._route_caches.values():
            cache.clear()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def primary(self, key: str) -> str:
        """Return the node owning ``key``."""
        return self.route(key, 1)[0]

    def route_cache_for(self, count: int) -> Dict[str, Tuple[str, ...]]:
        """The live ``key -> replicas`` cache for ``count`` replicas.

        Hot loops alias this dict and probe it directly (one dict get per
        request), falling back to :meth:`route` on a miss.  The dict is
        cleared — never replaced — on membership change, so the alias stays
        valid for the lifetime of the ring.
        """
        cache = self._route_caches.get(count)
        if cache is None:
            cache = self._route_caches[count] = {}
        return cache

    def route(self, key: str, count: int) -> Tuple[str, ...]:
        """Return up to ``count`` distinct nodes for ``key``, primary first.

        Walks the ring clockwise from the key's hash, skipping duplicate
        nodes, so the result is the primary followed by the replicas in ring
        order.  Returns fewer than ``count`` nodes when the ring holds fewer
        distinct nodes.  Results are cached per ``count`` until the ring
        membership changes.

        Raises:
            ClusterError: If the ring is empty.
        """
        cache = self.route_cache_for(count)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if not self._point_hashes:
            raise ClusterError("hash ring is empty; no node can own any key")
        if count < 1:
            raise ClusterError(f"count must be >= 1, got {count}")
        owners = self._point_owners
        total = len(owners)
        start = bisect_left(self._point_hashes, stable_fingerprint(key))
        if count == 1:
            # The first point clockwise is the primary; no dedup walk needed.
            chosen = (owners[start % total],)
        else:
            picked: List[str] = []
            seen = set()
            for offset in range(total):
                node_id = owners[(start + offset) % total]
                if node_id in seen:
                    continue
                seen.add(node_id)
                picked.append(node_id)
                if len(picked) == count:
                    break
            chosen = tuple(picked)
        if len(cache) >= _MAX_CACHED_ROUTES:
            cache.clear()
        cache[key] = chosen
        return chosen

    def nodes_for(self, key: str, count: int) -> List[str]:
        """Return up to ``count`` distinct nodes for ``key``, primary first.

        List-returning wrapper over :meth:`route` (which is what the hot
        paths use); see there for semantics.

        Raises:
            ClusterError: If the ring is empty.
        """
        return list(self.route(key, count))

    def ownership_counts(self, keys: List[str]) -> Dict[str, int]:
        """Count how many of ``keys`` each node owns (for balance reporting)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.primary(key)] += 1
        return counts
