"""The sharded multi-node cluster simulation.

:class:`ClusterSimulation` routes one time-ordered request stream across a
fleet of :class:`~repro.cluster.node.CacheNode` shards in front of the shared
versioned datastore:

* keys are placed with consistent hashing
  (:class:`~repro.cluster.hashring.ConsistentHashRing`); every key lives on
  ``replication.factor`` nodes (primary + ring successors),
* reads go to one replica chosen by the
  :class:`~repro.cluster.replication.ReplicaRouter`,
* writes commit to the shared datastore and dirty **every** replica, so the
  interval flush fans one freshness message per replica out over that
  node's own channel — replicated invalidation, the paper's §5 open problem
  multiplied by the replication factor,
* a :class:`~repro.cluster.scenarios.Scenario` script injects node failures,
  ring rebalances, flash crowds, and partitions at deterministic times, and
* per-shard :class:`~repro.cluster.hotkey.HotKeyDetector` instances can
  switch hot keys to a different freshness policy on their shard.

Everything is driven by the request clock with no hidden randomness beyond
the seeded per-node channels, so a cluster cell replays byte-identically for
a fixed seed no matter how many worker processes executed the grid.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.backend.channel import Channel
from repro.backend.datastore import DataStore
from repro.cache.eviction import EvictionPolicy
from repro.concurrency.backend import BackendServer
from repro.concurrency.config import as_concurrency
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.hotkey import HotKeyConfig, HotKeyDetector
from repro.cluster.node import CacheNode
from repro.cluster.replication import ReplicaRouter, ReplicationConfig
from repro.cluster.results import ClusterResult
from repro.cluster.scenarios import Scenario, ScenarioEvent
from repro.core.cost_model import CostModel
from repro.core.policy import FreshnessPolicy
from repro.errors import ClusterError, ConfigurationError, StoreError, WorkloadError
from repro.obs.recorder import as_recorder
from repro.resilience.chaos import as_chaos_plan
from repro.sim.clock import SimulationClock
from repro.store.recovery import (
    RecoveryReport,
    load_checkpoint,
    recover_datastore,
    replay_wal,
    warm_state,
)
from repro.store.runtime import StoreRuntime
from repro.store.snapshot import (
    StoreConfig,
    restore_datastore,
    restore_node,
    serialize_node,
    serialize_node_stub,
)
from repro.tier.config import TierConfig
from repro.workload.base import OpType, Request

PolicyLike = Union[str, Callable[[], FreshnessPolicy]]

#: Multiplier decorrelating per-node channel/detector seeds from the cell seed.
_NODE_SEED_STRIDE = 0x9E3779B1


def _resolve_policy_factory(policy: PolicyLike) -> Callable[[], FreshnessPolicy]:
    """Turn a registry name or zero-arg factory into a factory."""
    if isinstance(policy, str):
        # Runtime import: the registry lives in the experiments layer, which
        # itself imports this module for cluster cells.
        from repro.experiments.registry import make_policy

        return lambda: make_policy(policy)
    if isinstance(policy, FreshnessPolicy):
        raise ClusterError(
            "pass a policy name or factory, not an instance — every node "
            "needs its own policy state"
        )
    return policy


class ClusterSimulation:
    """Replay a request stream across a sharded, replicated cache fleet.

    Args:
        workload: Time-ordered request stream (consumed lazily, like the
            single-cache :class:`~repro.sim.simulation.Simulation`).
        policy: Freshness policy per shard: a registry name or a zero-arg
            factory (each node gets its own instance).  Clairvoyant policies
            (``needs_future``) are not supported in cluster mode.
        num_nodes: Fleet size.
        staleness_bound: The bound ``T`` in seconds, fleet-wide.
        costs: Cost model shared by every node.
        replication: Replication factor (int) or a full
            :class:`~repro.cluster.replication.ReplicationConfig`.
        cache_capacity: Per-node cache capacity (``None`` = unbounded).
        eviction_factory: Zero-arg factory for per-node eviction policies.
        channel: ``None`` for ideal per-node channels, or any object with
            ``loss_probability`` / ``delay`` / ``jitter`` attributes (e.g.
            :class:`~repro.experiments.spec.ChannelSpec`); each node's
            channel is seeded deterministically from ``seed`` and its index.
        tracker_capacity: Per-node invalidated-key tracker capacity.
        scenario: Scenario script (``None`` = steady state).
        hotkey: Hot-key detection config (``None`` disables detection).
        duration: Simulated horizon; defaults to the last request time.
        workload_name: Label recorded in the result.
        vnodes: Virtual nodes per physical node on the hash ring.
        seed: Root seed for per-node channels and detectors.
        discard_buffer_on_miss_fill / final_flush: Same semantics as the
            single-cache simulator, applied per node.
        store: Optional persistence config (:class:`~repro.store.StoreConfig`).
            When given, backend writes are journaled to a write-ahead log and
            the datastore plus every reachable node's volatile state are
            snapshotted at ``snapshot_interval`` — enabling ``run(stop_at=…)``
            crash points, :meth:`restore_from_store` resume, warm node
            rejoin, and the ``kill-at-t`` scenario's warm restart.
        history_retention: Optional retention window for the datastore's
            per-key write history.
        tier: Optional :class:`~repro.tier.TierConfig` placing a small L1 in
            front of every node's cache (the node cache then acts as the
            sharded L2).  A disabled config (``l1_capacity=0``) is normalised
            to ``None`` and reproduces single-tier results byte-for-byte.
        obs: Optional observability settings (:class:`~repro.obs.ObsConfig`
            or a pre-built :class:`~repro.obs.ObsRecorder`).  The recorder
            samples the owned nodes' counters per window, traces sampled
            request spans plus fleet events (scenario transitions,
            rebalances, snapshots, recovery), and exposes its payload on
            ``ClusterResult.obs``.  Results stay byte-identical with
            observability on or off; when ``None`` (default) the replay
            binds its plain hot path with zero overhead.
        owned_nodes: Optional node indices this process replays *for*.  The
            full fleet is still constructed and the shared state — datastore
            writes, ring membership, scenario events, read-router counters —
            advances identically to an unfiltered run, but only the owned
            nodes perform cache work (reads, write observation, flushes,
            finalize).  Because nodes never message each other (they interact
            only through the shared datastore and ring) the owned nodes'
            :class:`~repro.cluster.results.NodeResult` rows come out
            byte-identical to the same rows of a full run; non-owned rows are
            meaningless and discarded by the shard merge.  This is the
            substrate for shard-parallel replay
            (:func:`repro.cluster.parallel.replay_cluster_parallel`).
            Incompatible with ``store`` (a checkpoint must capture the whole
            fleet).
        concurrency: Optional in-flight fetch model
            (:class:`~repro.concurrency.ConcurrencyConfig`).  When given,
            every node's miss fetches occupy slots on one *shared*
            :class:`~repro.concurrency.BackendServer` (the fleet contends
            for the same backend), each node runs its own per-node in-flight
            table and stampede policy, and per-read latency lands in the
            node results.  ``None`` (default) keeps the instant-fetch model
            byte-identical.  Incompatible with ``owned_nodes`` (the shared
            fetch queue couples shards) and with ``run(stop_at=...)`` /
            :meth:`restore_from_store` (in-flight fetches are volatile state
            a checkpoint does not capture).
        zones: Number of failure domains: node ``i`` is labeled
            ``zone-{i % zones}`` on the ring.  Zones never affect placement
            (pure metadata), so ``zones=1`` (default, unlabeled) is
            byte-identical to any other labeling; correlated-failure
            scenarios (``zone-outage``) require ``zones >= 2``.
        chaos: Optional seeded fault plan
            (:class:`~repro.resilience.ChaosSpec` or a prepared
            :class:`~repro.resilience.ChaosPlan`).  Its timed faults (delay,
            drop, slow-node, crash) merge with the scenario's events, so
            chaos composes with any scenario.  Slow-node faults require the
            in-flight fetch model; the vector planner falls back to the
            scalar loop whenever a plan is present.
    """

    def __init__(
        self,
        workload: Iterable[Request],
        policy: PolicyLike,
        num_nodes: int,
        staleness_bound: float,
        costs: Optional[CostModel] = None,
        replication: Union[int, ReplicationConfig, None] = None,
        cache_capacity: Optional[int] = None,
        eviction_factory: Optional[Callable[[], EvictionPolicy]] = None,
        channel: Optional[object] = None,
        tracker_capacity: Optional[int] = None,
        scenario: Optional[Scenario] = None,
        hotkey: Optional[HotKeyConfig] = None,
        duration: Optional[float] = None,
        workload_name: str = "",
        vnodes: int = 64,
        seed: int = 0,
        discard_buffer_on_miss_fill: bool = True,
        final_flush: bool = True,
        store: Optional[StoreConfig] = None,
        history_retention: Optional[float] = None,
        tier: Optional[TierConfig] = None,
        owned_nodes: Optional[Sequence[int]] = None,
        obs: Optional[Any] = None,
        concurrency: Optional[Any] = None,
        zones: int = 1,
        chaos: Optional[Any] = None,
    ) -> None:
        if num_nodes < 1:
            raise ClusterError(f"num_nodes must be >= 1, got {num_nodes}")
        if zones < 1:
            raise ClusterError(f"zones must be >= 1, got {zones}")
        if zones > num_nodes:
            raise ClusterError(
                f"zones ({zones}) exceeds fleet size ({num_nodes}); every "
                "zone needs at least one node"
            )
        if staleness_bound <= 0:
            raise ConfigurationError(
                f"staleness_bound must be positive, got {staleness_bound}"
            )
        if replication is None:
            replication = ReplicationConfig()
        elif isinstance(replication, int):
            replication = ReplicationConfig(factor=replication)
        if replication.factor > num_nodes:
            raise ClusterError(
                f"replication factor {replication.factor} exceeds fleet size {num_nodes}"
            )

        # A zero-capacity tier IS the single-tier fleet: normalising it to
        # ``None`` here is what pins the l1_capacity=0 equivalence.
        if tier is not None and not tier.enabled:
            tier = None
        self.tier = tier
        self.staleness_bound = float(staleness_bound)
        self.costs = costs if costs is not None else CostModel()
        self.replication = replication
        self.workload_name = workload_name
        self.final_flush = final_flush
        self.duration = float(duration) if duration is not None else 0.0
        self._explicit_duration = duration is not None
        self._stream: Iterable[Request] = workload
        self.seed = int(seed)

        policy_factory = _resolve_policy_factory(policy)
        probe = policy_factory()
        if probe.needs_future:
            raise ClusterError(
                f"clairvoyant policy {probe.name!r} is not supported in cluster mode"
            )
        self.policy_name = probe.name

        hot_factory: Optional[Callable[[], FreshnessPolicy]] = None
        if hotkey is not None and hotkey.hot_policy is not None:
            hot_factory = _resolve_policy_factory(hotkey.hot_policy)
            hot_probe = hot_factory()
            if hot_probe.needs_future:
                raise ClusterError(
                    f"clairvoyant policy {hot_probe.name!r} cannot be the hot-key "
                    "policy: it needs the future request index, which cluster "
                    "mode does not build"
                )

        self.datastore = DataStore(retention=history_retention)
        self._store: Optional[StoreRuntime] = None
        if store is not None:
            self._store = StoreRuntime(store, self.costs)
            self._store.attach(self.datastore)
        self.clock = SimulationClock()
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.router = ReplicaRouter(replication)
        self.scenario = scenario if scenario is not None else Scenario()
        self.zones = int(zones)

        self.concurrency = as_concurrency(concurrency)
        self.chaos = as_chaos_plan(chaos)
        if self.chaos is not None and self.chaos.needs_concurrency and self.concurrency is None:
            raise ClusterError(
                "chaos plans drawing slow-node faults exercise the in-flight "
                "fetch model: pass concurrency=ConcurrencyConfig(...) or drop "
                "'slow-node' from ChaosSpec.kinds"
            )
        #: The fleet-shared backend fetch server (``None`` when the
        #: instant-fetch model is in effect).
        self.backend: Optional[BackendServer] = None
        if self.concurrency is not None:
            self.backend = BackendServer(self.concurrency.capacity)

        self._nodes: dict[str, CacheNode] = {}
        self._node_list: List[CacheNode] = []
        #: Node ids with freshness messages in flight; empty with ideal
        #: channels, which lets the per-request delivery sweep short-circuit.
        self._pending_nodes: set[str] = set()
        for index in range(num_nodes):
            node_id = f"node-{index:03d}"
            node_seed = (self.seed + _NODE_SEED_STRIDE * (index + 1)) % 2**32
            node_channel = Channel(seed=node_seed) if channel is None else Channel(
                loss_probability=channel.loss_probability,
                delay=channel.delay,
                jitter=channel.jitter,
                seed=node_seed,
                retries=getattr(channel, "retries", 0),
                retry_timeout=getattr(channel, "retry_timeout", 0.0),
                retry_backoff=getattr(channel, "retry_backoff", 0.0),
            )
            detector = (
                HotKeyDetector(hotkey, seed=node_seed ^ 0x5BF03635)
                if hotkey is not None
                else None
            )
            # The probe instance seeds node 0 so its construction is not
            # wasted; every other node gets a fresh instance.
            node_policy = probe if index == 0 else policy_factory()
            node = CacheNode(
                node_id=node_id,
                policy=node_policy,
                staleness_bound=self.staleness_bound,
                costs=self.costs,
                datastore=self.datastore,
                cache_capacity=cache_capacity,
                eviction=eviction_factory() if eviction_factory is not None else None,
                channel=node_channel,
                tracker_capacity=tracker_capacity,
                hot_policy=hot_factory() if hot_factory is not None else None,
                detector=detector,
                discard_buffer_on_miss_fill=discard_buffer_on_miss_fill,
                pending_registry=self._pending_nodes,
                tier=self.tier,
                tier_seed=node_seed ^ 0x1F123BB5,
            )
            node.result.workload_name = workload_name
            node.result.staleness_bound = self.staleness_bound
            if self.backend is not None:
                node.attach_concurrency(self.concurrency, self.backend, node_seed)
            self._nodes[node_id] = node
            self._node_list.append(node)
            self.ring.add_node(
                node_id, zone=f"zone-{index % self.zones}" if self.zones > 1 else None
            )

        self._owned_ids: Optional[frozenset[str]] = None
        self._flush_nodes: List[CacheNode] = self._node_list
        if owned_nodes is not None:
            if self.scenario.requires_full_fleet:
                raise ClusterError(
                    f"scenario {self.scenario.name!r} decides membership from "
                    "fleet-global signals, which an ownership-masked shard "
                    "cannot observe; it is incompatible with owned_nodes"
                )
            if store is not None:
                raise ClusterError(
                    "owned_nodes is incompatible with a store: a checkpoint "
                    "must capture the whole fleet"
                )
            if self.concurrency is not None:
                raise ClusterError(
                    "owned_nodes is incompatible with concurrency: every "
                    "node queues on one shared backend fetch server, so "
                    "shards cannot replay independently"
                )
            indices = sorted(set(int(index) for index in owned_nodes))
            if not indices:
                raise ClusterError("owned_nodes must name at least one node")
            if indices[0] < 0 or indices[-1] >= num_nodes:
                raise ClusterError(
                    f"owned_nodes entries must be in [0, {num_nodes}), got {indices}"
                )
            self._flush_nodes = [self._node_list[index] for index in indices]
            self._owned_ids = frozenset(node.node_id for node in self._flush_nodes)

        self.obs = as_recorder(obs)
        if self.obs is not None and self._store is not None:
            self._store.attach_obs(self.obs)

        self._next_flush = self.staleness_bound
        self._next_due = self.staleness_bound
        self._interval_hook: Optional[Callable[["ClusterSimulation", float], None]] = None
        self._has_run = False
        self._rebalances = 0
        self._resume_from: Optional[float] = None
        self.event_log: List[tuple[float, str]] = []
        # Hot-path aliases: the ring, factor, and routing mode never change
        # after construction (membership changes mutate the ring in place).
        self._route = self.ring.route
        self._factor = self.replication.factor
        self._read_primary = self.replication.read_policy == "primary"
        # Live key -> replicas map for this factor: cleared in place by the
        # ring on membership change, so the alias never goes stale.
        self._route_map = self.ring.route_cache_for(self._factor)

    # ------------------------------------------------------------------ #
    # Scenario control surface
    # ------------------------------------------------------------------ #
    def node_at(self, index: int) -> CacheNode:
        """Return the node created at ``index`` (scenario addressing)."""
        try:
            return self._node_list[index]
        except IndexError as exc:
            raise ClusterError(f"no node at index {index}") from exc

    def nodes(self) -> List[CacheNode]:
        """The fleet's nodes in creation order (scenario addressing)."""
        return list(self._node_list)

    def fail_node(self, index: int) -> None:
        """Fail a node silently (unreachable, still serving, still on ring)."""
        self.node_at(index).fail()

    def remove_node(self, index: int, time: float) -> None:
        """Detect a failure: take the node off the ring and purge its state."""
        node = self.node_at(index)
        if node.node_id in self.ring:
            if len(self.ring) == 1:
                raise ClusterError("cannot remove the last node from the ring")
            self.ring.remove_node(node.node_id)
            self._rebalances += 1
            if self.obs is not None and self.obs.record_global:
                self.obs.event(time, "rebalance", action="remove", node=node.node_id)
        node.depart(time)

    def rejoin_node(self, index: int, warm: bool = False, time: Optional[float] = None) -> None:
        """Bring a previously removed node back — cold, or warm from its store.

        A warm rejoin restores the node's cache from its last completed
        snapshot and replays the recovered write history over it: entries
        whose key was written while the node was down come back invalidated
        (the node missed those invalidates), the rest come back valid.
        """
        node = self.node_at(index)
        if node.node_id not in self.ring:
            self.ring.add_node(node.node_id)
            self._rebalances += 1
            if self.obs is not None and self.obs.record_global:
                self.obs.event(
                    time if time is not None else self.clock.now,
                    "rebalance",
                    action="add",
                    node=node.node_id,
                    warm=warm,
                )
        node.rejoin()
        if warm:
            self._warm_restore(node, time if time is not None else self.clock.now)

    def deactivate_node(self, index: int) -> None:
        """Park a node in standby: off the ring without a departure.

        Unlike :meth:`remove_node` this is not a failure or a drain — the
        node simply never joined (the autoscaler's t=0 headroom), so no
        departure is counted, no rebalance is recorded, and no state is
        purged (there is nothing to purge).
        """
        node = self.node_at(index)
        if node.node_id not in self.ring:
            return
        if len(self.ring) == 1:
            raise ClusterError("cannot deactivate the last node on the ring")
        self.ring.remove_node(node.node_id)
        node.in_ring = False

    def crash_restart(self, time: float, warm: bool) -> None:
        """Kill-at-t: every node loses its volatile state and restarts.

        The backend datastore is authoritative and survives; with ``warm``
        (requires a configured store) each node rebuilds its cache from its
        last snapshot plus WAL-replayed validation, otherwise the whole fleet
        restarts cold.
        """
        replayed: Optional[DataStore] = None
        if warm:
            # One recovery pass for the whole fleet: every node validates
            # against the same durable write history.
            self._store_or_raise().journal.sync()
            replayed, _ = recover_datastore(self._store.config.root)
        if self.obs is not None and self.obs.record_global:
            self.obs.event(time, "crash-restart", warm=warm)
        for node in self._node_list:
            node.crash(time)
            if warm:
                self._warm_restore(node, time, replayed)

    def _store_or_raise(self) -> StoreRuntime:
        if self._store is None:
            raise ClusterError(
                "warm restore needs a configured store (pass store=StoreConfig(...))"
            )
        return self._store

    def _warm_restore(
        self, node: CacheNode, time: float, replayed: Optional[DataStore] = None
    ) -> None:
        store = self._store_or_raise()
        if replayed is None:
            # The node restores from *durable* state: sync first so the WAL
            # tail covering the outage window is on disk for replay.
            store.journal.sync()
        state = warm_state(store.config.root, node.node_id, time, replayed)
        if state is None:
            # No snapshot ever captured this node (it failed before the first
            # interval): nothing to restore, the rejoin stays cold.
            return
        node.restore_warm(
            state.entries,
            time,
            state.invalidated,
            l1_entries=state.l1_entries,
            l1_invalidated=state.l1_invalidated,
            l1_dirty=state.l1_dirty,
        )

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def run(self, stop_at: Optional[float] = None) -> ClusterResult:
        """Replay the request stream and return the aggregated result.

        Args:
            stop_at: Optional kill point.  Every request with ``time <=
                stop_at`` is processed, a durable checkpoint is written
                (requires a configured store), and a partial result marked
                ``interrupted`` is returned — the state a crashed process
                would leave on disk.  A later :meth:`restore_from_store` on a
                freshly constructed, identically configured cluster resumes
                the run with identical counters.
        """
        if self._has_run:
            raise ClusterError("a ClusterSimulation instance can only be run once")
        self._has_run = True
        if stop_at is not None and self._store is None:
            raise ClusterError("run(stop_at=...) needs a configured store to crash into")
        if stop_at is not None and self.concurrency is not None:
            raise ClusterError(
                "run(stop_at=...) is incompatible with concurrency: in-flight "
                "fetches are volatile state a checkpoint does not capture"
            )

        # Scenarios and chaos plans need a concrete horizon for their
        # relative defaults.
        if not self._explicit_duration and (
            type(self.scenario) is not Scenario or self.chaos is not None
        ):
            raise ClusterError(
                "scenarios need an explicit duration to resolve their timelines"
            )
        if self.scenario.requires_tier and self.tier is None:
            raise ClusterError(
                f"scenario {self.scenario.name!r} exercises the L1 tier: pass "
                "tier=TierConfig(l1_capacity=...) with a positive capacity"
            )
        if self.scenario.requires_persistence:
            if self._store is None:
                raise ClusterError(
                    f"scenario {self.scenario.name!r} needs a configured store "
                    "(pass store=StoreConfig(...))"
                )
            if self._store.config.snapshot_interval is None:
                # A warm restore can only use snapshots that exist before the
                # failure; with no cadence the scenario would silently run cold.
                raise ClusterError(
                    f"scenario {self.scenario.name!r} restores nodes from "
                    "periodic snapshots: set StoreConfig.snapshot_interval"
                )
        if self.scenario.requires_concurrency and self.concurrency is None:
            raise ClusterError(
                f"scenario {self.scenario.name!r} exercises the in-flight "
                "fetch model: pass concurrency=ConcurrencyConfig(...)"
            )
        if self.scenario.min_zones > self.zones:
            raise ClusterError(
                f"scenario {self.scenario.name!r} needs at least "
                f"{self.scenario.min_zones} zones; the fleet was built with "
                f"zones={self.zones}"
            )
        self.scenario.bind(
            duration=self.duration,
            staleness_bound=self.staleness_bound,
            num_nodes=len(self._node_list),
        )
        self.scenario.check(self)
        scripted = self.scenario.events()
        if self.chaos is not None:
            self.chaos.bind(self.duration, len(self._node_list))
            scripted = scripted + self.chaos.events()
        # Control-loop scenarios observe the fleet at flush cadence; the
        # hook is bound only when overridden so plain scenarios keep the
        # untouched background path.
        self._interval_hook = (
            self.scenario.on_interval
            if type(self.scenario).on_interval is not Scenario.on_interval
            else None
        )
        events = sorted(scripted, key=lambda event: event.time)
        event_index = 0
        num_events = len(events)
        if self._resume_from is not None:
            # Events up to the checkpoint were applied before the crash and
            # their effects live in the restored state; skip, don't re-apply.
            while event_index < num_events and events[event_index].time <= self._resume_from:
                event_index += 1

        # The fleet replay hot loop mirrors the single-cache one: the
        # time-ordering check is inlined, the identity request transform of
        # the base scenario is skipped, the next scenario event time is a
        # hoisted float compare, and background work only runs when a flush
        # or snapshot is due (or a freshness message is in flight somewhere).
        next_event_time = events[event_index].time if event_index < num_events else math.inf
        transform = (
            self.scenario.transform_request
            if type(self.scenario).transform_request is not Scenario.transform_request
            else None
        )
        self._refresh_next_due()
        clock = self.clock
        # Observability binds wrapper methods *instead of* the plain ones:
        # with obs disabled this loop is byte-for-byte the plain hot path.
        if self.obs is not None:
            self._obs_begin("scalar")
            process_read = self._obs_process_read
            process_write = self._obs_process_write
        else:
            process_read = self._process_read
            process_write = self._process_write
        advance_background = self._advance_background
        pending_nodes = self._pending_nodes
        write_op = OpType.WRITE
        resume_from = self._resume_from
        previous = float("-inf")
        for index, request in enumerate(self._stream):
            time = request.time
            if time < previous:
                raise WorkloadError(
                    f"request stream is not sorted by time at index {index}: "
                    f"{time} < {previous}"
                )
            previous = time
            if resume_from is not None and time <= resume_from:
                continue
            if stop_at is not None and time > stop_at:
                return self._interrupt(stop_at, events, event_index)
            while time >= next_event_time:
                event_index = self._apply_event(events, event_index)
                next_event_time = (
                    events[event_index].time if event_index < num_events else math.inf
                )
            if transform is not None:
                request = transform(request)
            if pending_nodes or time >= self._next_due:
                advance_background(time)
            clock.advance_to(time)
            if request.op is write_op:
                process_write(request)
            else:
                process_read(request)

        if stop_at is not None:
            # The stream ran dry before the kill point: checkpoint there.
            return self._interrupt(stop_at, events, event_index)
        return self._finalize(events, event_index)

    # ------------------------------------------------------------------ #
    # Observability wrappers (only ever bound when a recorder is attached)
    # ------------------------------------------------------------------ #
    def _obs_begin(self, engine: str) -> None:
        obs = self.obs
        hosts = [
            (node.node_id, node.result, node.cache.stats) for node in self._flush_nodes
        ]
        # In shard-parallel replay every shard sees the same global events
        # (scenario transitions, rebalances); only the shard owning node 0
        # records them, so the merged trace carries each exactly once.
        record_global = (
            self._owned_ids is None or self._node_list[0].node_id in self._owned_ids
        )
        obs.attach(hosts, record_global=record_global)
        obs.run_start(
            self._resume_from if self._resume_from is not None else 0.0,
            policy=self.policy_name,
            workload=self.workload_name,
            engine=engine,
            nodes=len(self._node_list),
            scenario=self.scenario.name,
        )

    def _obs_process_read(self, request: Request) -> None:
        obs = self.obs
        time = request.time
        if time >= obs.next_boundary:
            obs.roll(time)
        token = obs.read_begin()
        self._process_read(request)
        obs.read_end(time, request.key, token)

    def _obs_process_write(self, request: Request) -> None:
        obs = self.obs
        time = request.time
        if time >= obs.next_boundary:
            obs.roll(time)
        span = obs.write_begin()
        self._process_write(request)
        obs.write_end(time, request.key, span)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _apply_event(self, events: List[ScenarioEvent], index: int) -> int:
        event = events[index]
        self._advance_background(event.time)
        self.clock.advance_to(event.time)
        event.apply(self, event.time)
        self.event_log.append((event.time, event.label))
        if self.obs is not None and self.obs.record_global:
            self.obs.event(
                event.time, "scenario", label=event.label, scenario=self.scenario.name
            )
        return index + 1

    def _advance_background(self, until: float) -> None:
        """Run flushes, snapshots, and deliveries due before ``until``.

        Flushes and snapshots interleave in time order, flush first on a tie
        so a snapshot observes the flushed state of its instant.
        """
        while True:
            next_flush = self._next_flush
            next_snapshot = self._store.next_snapshot if self._store else math.inf
            if min(next_flush, next_snapshot) > until:
                break
            if next_flush <= next_snapshot:
                for node in self._flush_nodes:
                    node.deliver_until(next_flush)
                    node.flush(next_flush)
                self._next_flush += self.staleness_bound
                if self._interval_hook is not None:
                    self._interval_hook(self, next_flush)
            else:
                self._checkpoint(next_snapshot)
        self._refresh_next_due()
        # Per-request sweep: with ideal channels nothing is ever in flight,
        # so this stays O(1) instead of O(num_nodes) per request.
        if self._pending_nodes:
            for node_id in sorted(self._pending_nodes):
                self._nodes[node_id].deliver_until(until)

    def _refresh_next_due(self) -> None:
        """Recompute the earliest time background work must run."""
        next_snapshot = self._store.next_snapshot if self._store else math.inf
        next_flush = self._next_flush
        self._next_due = next_flush if next_flush <= next_snapshot else next_snapshot

    # ------------------------------------------------------------------ #
    # Persistence: checkpoint, crash, resume
    # ------------------------------------------------------------------ #
    def _checkpoint(self, time: float) -> None:
        """Write one durable snapshot of the datastore and the fleet.

        Live (reachable, in-ring) nodes are captured in full; failed or
        departed nodes get a stub — their local disk stopped at their last
        completed snapshot, which is exactly what a warm rejoin later
        restores, but their run counters and membership flags still belong
        to the checkpoint.
        """
        self._store.checkpoint(
            time,
            self.datastore,
            nodes={
                node.node_id: (
                    serialize_node(node)
                    if node.reachable and node.in_ring
                    else serialize_node_stub(node)
                )
                for node in self._node_list
            },
            extra_fn=lambda: {
                "time": time,
                "next_flush": self._next_flush,
                "rebalances": self._rebalances,
                "event_log": [[when, label] for when, label in self.event_log],
                # Round-robin read routing is per-key volatile state too.
                "router": dict(self.router._round_robin),
            },
        )

    def _interrupt(
        self, stop_at: float, events: List[ScenarioEvent], event_index: int
    ) -> ClusterResult:
        """Stop at the kill point: apply due events, checkpoint, report."""
        while event_index < len(events) and events[event_index].time <= stop_at:
            event_index = self._apply_event(events, event_index)
        self._advance_background(stop_at)
        self.clock.advance_to(stop_at)
        self._checkpoint(stop_at)
        self._store.close()
        result = ClusterResult(
            policy_name=self.policy_name,
            workload_name=self.workload_name,
            staleness_bound=self.staleness_bound,
            duration=stop_at,
            num_nodes=len(self._node_list),
            replication=self.replication.factor,
            read_policy=self.replication.read_policy,
            scenario=self.scenario.name,
            l1_capacity=self.tier.l1_capacity if self.tier is not None else 0,
            tier_mode=self.tier.mode if self.tier is not None else "write-through",
        )
        result.nodes = [node.result for node in self._node_list]
        result.rebalances = self._rebalances
        result.interrupted = True
        stats = self._store.stats()
        result.store = stats
        result.finalize()
        for field_name, value in self.scenario.result_fields().items():
            setattr(result, field_name, value)
        # Same flat-row persistence counters a finished run reports.
        result.totals.persistence_cost = stats["persistence_cost"]
        result.totals.wal_appends = stats["wal_appends"]
        result.totals.wal_flushes = stats["wal_flushes"]
        result.totals.snapshots_taken = stats["snapshots"]
        if self.obs is not None:
            if self.obs.record_global:
                self.obs.event(stop_at, "interrupted")
            self.obs.add_totals(self.scenario.result_fields())
            self.obs.finish(stop_at)
            result.obs = self.obs.payload()
        return result

    def restore_from_store(self) -> "RecoveryReport":
        """Resume from the last durable checkpoint in the configured store.

        Rebuilds the shared datastore (snapshot + WAL tail replay), every
        node's volatile state, the ring membership, the flush/snapshot
        schedules, and the persistence counters, then arms the run loop to
        skip everything already processed before the crash.  Call on a
        freshly constructed cluster with the same configuration and workload,
        then :meth:`run`.  Returns the recovery report.

        Exact-resume limits: policies whose flush decisions depend on
        accumulated estimator state (``adaptive``) restart their estimators
        cold; hot-key detectors are not snapshotted; and a node that was
        fail-silent at the checkpoint (unreachable but still serving its
        cache) is restored empty — its cache was volatile memory with no
        durable claim, so it died with the crash, whereas an uninterrupted
        run would have kept serving it.  Identical-counter resume therefore
        holds for checkpoints taken outside fail-silent windows, which is
        what the tests pin.
        """
        if self._store is None:
            raise ClusterError("restore_from_store needs a configured store")
        if self.concurrency is not None:
            raise ClusterError(
                "restore_from_store is incompatible with concurrency: "
                "in-flight fetch state is not checkpointed, resume would diverge"
            )
        if self._has_run:
            raise ClusterError("restore must happen before run()")
        if any(node.detector is not None for node in self._node_list):
            raise ClusterError("resume with hot-key detection is not supported")
        checkpoint = load_checkpoint(self._store.config.root)
        restore_datastore(self.datastore, checkpoint.datastore)
        report = replay_wal(
            self.datastore, self._store.config.wal_path, checkpoint.wal_lsn
        )
        if report.wal_records:
            # Any tail past the watermark — writes, read deltas, or even
            # message audit records — means the run advanced beyond the last
            # checkpoint before dying.  run(stop_at=...) always checkpoints
            # at the kill point, so a tail only appears on an out-of-band
            # crash; refuse rather than resume from a rewound state.
            raise StoreError(
                "WAL records found past the checkpoint watermark: the crash "
                "was not taken at a durable checkpoint, resume would diverge"
            )
        for node_id, node_data in checkpoint.nodes.items():
            node = self._nodes.get(node_id)
            if node is None:
                raise StoreError(f"checkpoint references unknown node {node_id!r}")
            restore_node(node, node_data, checkpoint.time)
        # Ring membership follows the restored in_ring flags.
        for node in self._node_list:
            on_ring = node.node_id in self.ring
            if node.in_ring and not on_ring:
                self.ring.add_node(node.node_id)  # pragma: no cover - defensive
            elif not node.in_ring and on_ring:
                self.ring.remove_node(node.node_id)
        extra = checkpoint.extra
        self._next_flush = float(extra["next_flush"])
        self._rebalances = int(extra["rebalances"])
        self.event_log = [(when, label) for when, label in extra["event_log"]]
        self.router._round_robin = {
            key: int(count) for key, count in extra.get("router", {}).items()
        }
        self.clock.advance_to(checkpoint.time)
        self._resume_from = checkpoint.time
        self._store.restore(
            checkpoint.journal, extra.get("next_snapshot"), checkpoint.wal_lsn
        )
        report.snapshot_seq = checkpoint.seq
        report.snapshot_time = checkpoint.time
        report.recovered_keys = len(self.datastore.known_keys())
        report.recovered_versions = self.datastore.total_writes
        if self.obs is not None:
            self.obs.event(
                checkpoint.time,
                "recovery",
                snapshot_seq=checkpoint.seq,
                keys=report.recovered_keys,
                versions=report.recovered_versions,
            )
        return report

    def _process_write(self, request: Request) -> None:
        key = request.key
        self.datastore.write(key, request.time, request.value_size)
        replicas = self._route_map.get(key)
        if replicas is None:
            replicas = self._route(key, self._factor)
        nodes = self._nodes
        owned = self._owned_ids
        owner = True
        for node_id in replicas:
            if owned is None or node_id in owned:
                nodes[node_id].observe_write(request, owner=owner)
            owner = False

    def _process_read(self, request: Request) -> None:
        key = request.key
        replicas = self._route_map.get(key)
        if replicas is None:
            replicas = self._route(key, self._factor)
        if self._read_primary or len(replicas) == 1:
            # Primary-copy routing needs no router state; skip the call.
            node_id = replicas[0]
        else:
            # The router counter advances for every read regardless of
            # ownership so each shard sees the same routing sequence.
            node_id = self.router.choose_read_node(key, replicas)
        owned = self._owned_ids
        if owned is None or node_id in owned:
            self._nodes[node_id].handle_read(request)

    def _finalize(self, events: List[ScenarioEvent], event_index: int) -> ClusterResult:
        end_time = max(self.duration, self.clock.now)
        while event_index < len(events) and events[event_index].time <= end_time:
            event_index = self._apply_event(events, event_index)
        self.clock.advance_to(end_time)
        self._advance_background(end_time)
        for node in self._flush_nodes:
            node.finalize(end_time, self.final_flush)

        result = ClusterResult(
            policy_name=self.policy_name,
            workload_name=self.workload_name,
            staleness_bound=self.staleness_bound,
            duration=end_time,
            num_nodes=len(self._node_list),
            replication=self.replication.factor,
            read_policy=self.replication.read_policy,
            scenario=self.scenario.name,
            l1_capacity=self.tier.l1_capacity if self.tier is not None else 0,
            tier_mode=self.tier.mode if self.tier is not None else "write-through",
        )
        result.nodes = [node.result for node in self._node_list]
        result.rebalances = self._rebalances
        if self._store is not None:
            self._checkpoint(end_time)
            self._store.close()
            stats = self._store.stats()
            result.store = stats
        result.finalize()
        # Scenario-owned outcome fields (elasticity lag/cost/staleness) land
        # after the counter fold so finalize() cannot zero them.
        for field_name, value in self.scenario.result_fields().items():
            setattr(result, field_name, value)
        if self._store is not None:
            result.totals.persistence_cost = stats["persistence_cost"]
            result.totals.wal_appends = stats["wal_appends"]
            result.totals.wal_flushes = stats["wal_flushes"]
            result.totals.snapshots_taken = stats["snapshots"]
        if self.obs is not None:
            self.obs.add_totals(self.scenario.result_fields())
            self.obs.finish(end_time)
            result.obs = self.obs.payload()
        return result

    def store_stats(self) -> Optional[Dict[str, Any]]:
        """Deterministic persistence counters (``None`` without a store)."""
        return self._store.stats() if self._store is not None else None
