"""The sharded multi-node cluster simulation.

:class:`ClusterSimulation` routes one time-ordered request stream across a
fleet of :class:`~repro.cluster.node.CacheNode` shards in front of the shared
versioned datastore:

* keys are placed with consistent hashing
  (:class:`~repro.cluster.hashring.ConsistentHashRing`); every key lives on
  ``replication.factor`` nodes (primary + ring successors),
* reads go to one replica chosen by the
  :class:`~repro.cluster.replication.ReplicaRouter`,
* writes commit to the shared datastore and dirty **every** replica, so the
  interval flush fans one freshness message per replica out over that
  node's own channel — replicated invalidation, the paper's §5 open problem
  multiplied by the replication factor,
* a :class:`~repro.cluster.scenarios.Scenario` script injects node failures,
  ring rebalances, flash crowds, and partitions at deterministic times, and
* per-shard :class:`~repro.cluster.hotkey.HotKeyDetector` instances can
  switch hot keys to a different freshness policy on their shard.

Everything is driven by the request clock with no hidden randomness beyond
the seeded per-node channels, so a cluster cell replays byte-identically for
a fixed seed no matter how many worker processes executed the grid.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Union

from repro.backend.channel import Channel
from repro.backend.datastore import DataStore
from repro.cache.eviction import EvictionPolicy
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.hotkey import HotKeyConfig, HotKeyDetector
from repro.cluster.node import CacheNode
from repro.cluster.replication import ReplicaRouter, ReplicationConfig
from repro.cluster.results import ClusterResult
from repro.cluster.scenarios import Scenario, ScenarioEvent
from repro.core.cost_model import CostModel
from repro.core.policy import FreshnessPolicy
from repro.errors import ClusterError, ConfigurationError
from repro.sim.clock import SimulationClock
from repro.workload.base import Request, ensure_sorted

PolicyLike = Union[str, Callable[[], FreshnessPolicy]]

#: Multiplier decorrelating per-node channel/detector seeds from the cell seed.
_NODE_SEED_STRIDE = 0x9E3779B1


def _resolve_policy_factory(policy: PolicyLike) -> Callable[[], FreshnessPolicy]:
    """Turn a registry name or zero-arg factory into a factory."""
    if isinstance(policy, str):
        # Runtime import: the registry lives in the experiments layer, which
        # itself imports this module for cluster cells.
        from repro.experiments.registry import make_policy

        return lambda: make_policy(policy)
    if isinstance(policy, FreshnessPolicy):
        raise ClusterError(
            "pass a policy name or factory, not an instance — every node "
            "needs its own policy state"
        )
    return policy


class ClusterSimulation:
    """Replay a request stream across a sharded, replicated cache fleet.

    Args:
        workload: Time-ordered request stream (consumed lazily, like the
            single-cache :class:`~repro.sim.simulation.Simulation`).
        policy: Freshness policy per shard: a registry name or a zero-arg
            factory (each node gets its own instance).  Clairvoyant policies
            (``needs_future``) are not supported in cluster mode.
        num_nodes: Fleet size.
        staleness_bound: The bound ``T`` in seconds, fleet-wide.
        costs: Cost model shared by every node.
        replication: Replication factor (int) or a full
            :class:`~repro.cluster.replication.ReplicationConfig`.
        cache_capacity: Per-node cache capacity (``None`` = unbounded).
        eviction_factory: Zero-arg factory for per-node eviction policies.
        channel: ``None`` for ideal per-node channels, or any object with
            ``loss_probability`` / ``delay`` / ``jitter`` attributes (e.g.
            :class:`~repro.experiments.spec.ChannelSpec`); each node's
            channel is seeded deterministically from ``seed`` and its index.
        tracker_capacity: Per-node invalidated-key tracker capacity.
        scenario: Scenario script (``None`` = steady state).
        hotkey: Hot-key detection config (``None`` disables detection).
        duration: Simulated horizon; defaults to the last request time.
        workload_name: Label recorded in the result.
        vnodes: Virtual nodes per physical node on the hash ring.
        seed: Root seed for per-node channels and detectors.
        discard_buffer_on_miss_fill / final_flush: Same semantics as the
            single-cache simulator, applied per node.
    """

    def __init__(
        self,
        workload: Iterable[Request],
        policy: PolicyLike,
        num_nodes: int,
        staleness_bound: float,
        costs: Optional[CostModel] = None,
        replication: Union[int, ReplicationConfig, None] = None,
        cache_capacity: Optional[int] = None,
        eviction_factory: Optional[Callable[[], EvictionPolicy]] = None,
        channel: Optional[object] = None,
        tracker_capacity: Optional[int] = None,
        scenario: Optional[Scenario] = None,
        hotkey: Optional[HotKeyConfig] = None,
        duration: Optional[float] = None,
        workload_name: str = "",
        vnodes: int = 64,
        seed: int = 0,
        discard_buffer_on_miss_fill: bool = True,
        final_flush: bool = True,
    ) -> None:
        if num_nodes < 1:
            raise ClusterError(f"num_nodes must be >= 1, got {num_nodes}")
        if staleness_bound <= 0:
            raise ConfigurationError(
                f"staleness_bound must be positive, got {staleness_bound}"
            )
        if replication is None:
            replication = ReplicationConfig()
        elif isinstance(replication, int):
            replication = ReplicationConfig(factor=replication)
        if replication.factor > num_nodes:
            raise ClusterError(
                f"replication factor {replication.factor} exceeds fleet size {num_nodes}"
            )

        self.staleness_bound = float(staleness_bound)
        self.costs = costs if costs is not None else CostModel()
        self.replication = replication
        self.workload_name = workload_name
        self.final_flush = final_flush
        self.duration = float(duration) if duration is not None else 0.0
        self._explicit_duration = duration is not None
        self._stream: Iterable[Request] = workload
        self.seed = int(seed)

        policy_factory = _resolve_policy_factory(policy)
        probe = policy_factory()
        if probe.needs_future:
            raise ClusterError(
                f"clairvoyant policy {probe.name!r} is not supported in cluster mode"
            )
        self.policy_name = probe.name

        hot_factory: Optional[Callable[[], FreshnessPolicy]] = None
        if hotkey is not None and hotkey.hot_policy is not None:
            hot_factory = _resolve_policy_factory(hotkey.hot_policy)
            hot_probe = hot_factory()
            if hot_probe.needs_future:
                raise ClusterError(
                    f"clairvoyant policy {hot_probe.name!r} cannot be the hot-key "
                    "policy: it needs the future request index, which cluster "
                    "mode does not build"
                )

        self.datastore = DataStore()
        self.clock = SimulationClock()
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.router = ReplicaRouter(replication)
        self.scenario = scenario if scenario is not None else Scenario()

        self._nodes: dict[str, CacheNode] = {}
        self._node_list: List[CacheNode] = []
        #: Node ids with freshness messages in flight; empty with ideal
        #: channels, which lets the per-request delivery sweep short-circuit.
        self._pending_nodes: set[str] = set()
        for index in range(num_nodes):
            node_id = f"node-{index:03d}"
            node_seed = (self.seed + _NODE_SEED_STRIDE * (index + 1)) % 2**32
            node_channel = Channel(seed=node_seed) if channel is None else Channel(
                loss_probability=channel.loss_probability,
                delay=channel.delay,
                jitter=channel.jitter,
                seed=node_seed,
            )
            detector = (
                HotKeyDetector(hotkey, seed=node_seed ^ 0x5BF03635)
                if hotkey is not None
                else None
            )
            # The probe instance seeds node 0 so its construction is not
            # wasted; every other node gets a fresh instance.
            node_policy = probe if index == 0 else policy_factory()
            node = CacheNode(
                node_id=node_id,
                policy=node_policy,
                staleness_bound=self.staleness_bound,
                costs=self.costs,
                datastore=self.datastore,
                cache_capacity=cache_capacity,
                eviction=eviction_factory() if eviction_factory is not None else None,
                channel=node_channel,
                tracker_capacity=tracker_capacity,
                hot_policy=hot_factory() if hot_factory is not None else None,
                detector=detector,
                discard_buffer_on_miss_fill=discard_buffer_on_miss_fill,
                pending_registry=self._pending_nodes,
            )
            node.result.workload_name = workload_name
            node.result.staleness_bound = self.staleness_bound
            self._nodes[node_id] = node
            self._node_list.append(node)
            self.ring.add_node(node_id)

        self._next_flush = self.staleness_bound
        self._has_run = False
        self._rebalances = 0
        self.event_log: List[tuple[float, str]] = []

    # ------------------------------------------------------------------ #
    # Scenario control surface
    # ------------------------------------------------------------------ #
    def node_at(self, index: int) -> CacheNode:
        """Return the node created at ``index`` (scenario addressing)."""
        try:
            return self._node_list[index]
        except IndexError as exc:
            raise ClusterError(f"no node at index {index}") from exc

    def fail_node(self, index: int) -> None:
        """Fail a node silently (unreachable, still serving, still on ring)."""
        self.node_at(index).fail()

    def remove_node(self, index: int, time: float) -> None:
        """Detect a failure: take the node off the ring and purge its state."""
        node = self.node_at(index)
        if node.node_id in self.ring:
            if len(self.ring) == 1:
                raise ClusterError("cannot remove the last node from the ring")
            self.ring.remove_node(node.node_id)
            self._rebalances += 1
        node.depart(time)

    def rejoin_node(self, index: int) -> None:
        """Bring a previously removed node back, cold."""
        node = self.node_at(index)
        if node.node_id not in self.ring:
            self.ring.add_node(node.node_id)
            self._rebalances += 1
        node.rejoin()

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def run(self) -> ClusterResult:
        """Replay the whole request stream and return the aggregated result."""
        if self._has_run:
            raise ClusterError("a ClusterSimulation instance can only be run once")
        self._has_run = True

        # Scenarios need a concrete horizon for their relative defaults.
        if not self._explicit_duration and type(self.scenario) is not Scenario:
            raise ClusterError(
                "scenarios need an explicit duration to resolve their timelines"
            )
        self.scenario.bind(
            duration=self.duration,
            staleness_bound=self.staleness_bound,
            num_nodes=len(self._node_list),
        )
        events = sorted(self.scenario.events(), key=lambda event: event.time)
        event_index = 0

        for request in ensure_sorted(self._stream):
            while event_index < len(events) and events[event_index].time <= request.time:
                event_index = self._apply_event(events, event_index)
            request = self.scenario.transform_request(request)
            self._advance_background(request.time)
            self.clock.advance_to(request.time)
            if request.is_write:
                self._process_write(request)
            else:
                self._process_read(request)

        return self._finalize(events, event_index)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _apply_event(self, events: List[ScenarioEvent], index: int) -> int:
        event = events[index]
        self._advance_background(event.time)
        self.clock.advance_to(event.time)
        event.apply(self, event.time)
        self.event_log.append((event.time, event.label))
        return index + 1

    def _advance_background(self, until: float) -> None:
        """Run interval flushes and per-node deliveries due before ``until``."""
        while self._next_flush <= until:
            flush_time = self._next_flush
            for node in self._node_list:
                node.deliver_until(flush_time)
                node.flush(flush_time)
            self._next_flush += self.staleness_bound
        # Per-request sweep: with ideal channels nothing is ever in flight,
        # so this stays O(1) instead of O(num_nodes) per request.
        if self._pending_nodes:
            for node_id in sorted(self._pending_nodes):
                self._nodes[node_id].deliver_until(until)

    def _process_write(self, request: Request) -> None:
        self.datastore.write(request.key, request.time, request.value_size)
        replicas = self.ring.nodes_for(request.key, self.replication.factor)
        for position, node_id in enumerate(replicas):
            self._nodes[node_id].observe_write(request, owner=position == 0)

    def _process_read(self, request: Request) -> None:
        replicas = self.ring.nodes_for(request.key, self.replication.factor)
        node_id = self.router.choose_read_node(request.key, replicas)
        self._nodes[node_id].handle_read(request)

    def _finalize(self, events: List[ScenarioEvent], event_index: int) -> ClusterResult:
        end_time = max(self.duration, self.clock.now)
        while event_index < len(events) and events[event_index].time <= end_time:
            event_index = self._apply_event(events, event_index)
        self.clock.advance_to(end_time)
        self._advance_background(end_time)
        for node in self._node_list:
            node.finalize(end_time, self.final_flush)

        result = ClusterResult(
            policy_name=self.policy_name,
            workload_name=self.workload_name,
            staleness_bound=self.staleness_bound,
            duration=end_time,
            num_nodes=len(self._node_list),
            replication=self.replication.factor,
            read_policy=self.replication.read_policy,
            scenario=self.scenario.name,
        )
        result.nodes = [node.result for node in self._node_list]
        result.rebalances = self._rebalances
        result.finalize()
        return result
