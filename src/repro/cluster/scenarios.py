"""Cluster failure and load scenarios.

A scenario is a deterministic script of timed control-plane events (node
failures, ring rebalances, partitions) plus an optional request transform
(key-skew shifts).  The cluster applies events as simulated time passes, so a
scenario cell replays identically for a fixed seed regardless of the worker
schedule.

Three scenarios ship, matching the fleet-scale questions the paper's single
cache cannot ask:

* ``node-failure`` — a node fails silently: it stops receiving freshness
  messages and can no longer re-fetch, but keeps serving its local cache
  until the failure detector fires and the ring rebalances around it; later
  it rejoins cold.  The detection window is where stale serves spike — the
  §5 lost-invalidate problem compounded by replication.
* ``flash-crowd`` — at a shift point, a slice of the traffic stampedes onto
  a handful of brand-new event keys (think a breaking-news object), moving
  the hot set onto shards that have never seen those keys.
* ``partition`` — the freshness channel to a subset of nodes turns lossy (or
  fully drops) for a window; fetches still work, so the nodes serve and fill
  normally while silently missing invalidates.
* ``kill-at-t`` — the whole fleet crashes at a point in time and restarts
  immediately: every node's volatile state (cache, buffers, in-flight
  messages) is lost.  With ``mode="warm"`` and a configured store
  (:mod:`repro.store`) each node rebuilds its cache from its last snapshot
  plus WAL-replayed validation; ``mode="cold"`` restarts empty — the pair
  quantifies what durability buys.
* ``l2-outage`` — the shared tier is partitioned away from a subset of nodes
  for a window: reads are served *degraded* straight from each node's L1
  (stale entries included — availability over freshness), L1 misses fail
  outright, and freshness messages are lost.  Requires the fleet to run with
  a tier (:class:`~repro.tier.TierConfig`).
* ``cold-l1`` — the fleet restarts with a warm L2 but empty L1s (a rolling
  binary deploy: the process-local tier dies, the shared tier survives),
  measuring the L1 warming transient.  Requires a tier as well.

``node-failure`` additionally accepts ``rejoin="warm"``: instead of coming
back cold, the recovered node restores its cache from the last snapshot its
local disk completed before the failure, invalidating exactly the keys the
backend wrote while it was away.

Two scenarios target the in-flight fetch model (:mod:`repro.concurrency`):

* ``stampede`` — at a point in time, a deterministic slice of every node's
  resident entries expires at once (a deploy flushing TTLs, a mass
  invalidation): the next wave of reads all miss together and, without a
  mitigation policy, dogpiles the backend.
* ``backend-saturation`` — the shared backend's fetch capacity is squeezed
  to a fraction of its configured slots for a window, then restored; misses
  queue, latency tails grow, and stale-serving policies show their value.
  Requires the fleet to run with ``concurrency=ConcurrencyConfig(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache.entry import EntryState
from repro.errors import ClusterError
from repro.sketch.hashing import stable_fingerprint
from repro.workload.base import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import ClusterSimulation


@dataclass(slots=True)
class ScenarioEvent:
    """One timed control-plane action applied to the cluster."""

    time: float
    label: str
    apply: Callable[["ClusterSimulation", float], None] = field(repr=False)


class Scenario:
    """Base class: no events, identity transform."""

    name = "none"

    def __init__(self) -> None:
        self.duration = 0.0
        self.staleness_bound = 0.0
        self.num_nodes = 0

    @property
    def requires_persistence(self) -> bool:
        """Whether the scenario needs the cluster to run with a store."""
        return False

    @property
    def requires_tier(self) -> bool:
        """Whether the scenario needs the fleet to run with an L1 tier."""
        return False

    @property
    def requires_concurrency(self) -> bool:
        """Whether the scenario needs the in-flight fetch model enabled."""
        return False

    @property
    def requires_full_fleet(self) -> bool:
        """Whether the scenario drives dynamic membership over the full fleet.

        Scenarios that decide membership from *global* runtime signals (the
        autoscaler) cannot be sharded: an ownership-masked shard sees only a
        slice of the load, so its decisions would diverge from the full
        fleet's.  Shard-parallel replay refuses such scenarios outright.
        """
        return False

    @property
    def min_zones(self) -> int:
        """Minimum number of distinct zone labels the fleet must carry."""
        return 1

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        """Resolve time defaults against the run's horizon and bound."""
        self.duration = float(duration)
        self.staleness_bound = float(staleness_bound)
        self.num_nodes = int(num_nodes)

    def check(self, cluster: "ClusterSimulation") -> None:
        """Validate the bound scenario against the concrete cluster.

        Called once by ``ClusterSimulation.run()`` after :meth:`bind`, before
        any request is replayed.  Scenarios that need fleet properties beyond
        the ``requires_*`` flags (zone labels, specific node counts) raise
        :class:`~repro.errors.ClusterError` here — a refusal up front instead
        of a mid-run surprise.
        """

    def events(self) -> List[ScenarioEvent]:
        """Return the timed events, sorted by time."""
        return []

    def on_interval(self, cluster: "ClusterSimulation", time: float) -> None:
        """Hook invoked after every background flush boundary.

        The default is a no-op.  Control-loop scenarios (the autoscaler)
        override this to observe the fleet at flush cadence and react in
        simulated time; the cluster only calls the hook when it is
        overridden, so plain scenarios pay nothing on the hot path.
        """

    def result_fields(self) -> Dict[str, Any]:
        """Extra scenario-owned fields merged into the cluster result.

        Whatever mapping this returns after the run is set verbatim on the
        :class:`~repro.cluster.results.ClusterResult` (and folded into the
        obs summary totals), making scenario-level outcomes — elasticity lag,
        scaling cost — first-class, SLO-gateable result fields.
        """
        return {}

    def transform_request(self, request: Request) -> Request:
        """Optionally rewrite a request before routing (default: identity)."""
        return request

    def describe(self) -> Dict[str, Any]:
        """Scenario coordinates recorded next to the results."""
        return {"name": self.name}


class NodeFailureScenario(Scenario):
    """Fail-silent node loss with delayed detection, rebalance, and rejoin.

    Timeline (defaults as fractions of the run):

    * ``fail_at`` (default ``0.4 * duration``) — the node loses its backend
      connection: in-flight freshness messages are dropped, new ones bounce,
      misses cannot re-fetch, but reads routed to it are still served from
      its cache.
    * ``detect_at`` (default ``fail_at + max(4 * T, 0.05 * duration)``) — the
      failure detector fires: the node leaves the ring (its cache is purged)
      and its keys move to the surviving nodes.
    * ``recover_at`` (default ``0.75 * duration``; ``None`` disables) — the
      node rejoins the ring: cold by default, or warm (restoring its cache
      from its last pre-failure snapshot, with keys written during the
      outage invalidated) when ``rejoin="warm"``.

    Args:
        node_index: Index of the node to fail (default 0).
        fail_at / detect_at / recover_at: Absolute times overriding the
            defaults above (``recover_at=None`` keeps the node out for good).
        rejoin: ``"cold"`` (empty cache) or ``"warm"`` (restore from the
            node's durable snapshot; requires the cluster to run with a
            :class:`~repro.store.StoreConfig`).
    """

    name = "node-failure"

    _AUTO = "auto"

    def __init__(
        self,
        node_index: int = 0,
        fail_at: Optional[float] = None,
        detect_at: Optional[float] = None,
        recover_at: Optional[float] | str = _AUTO,
        rejoin: str = "cold",
    ) -> None:
        super().__init__()
        if node_index < 0:
            raise ClusterError(f"node_index must be >= 0, got {node_index}")
        if rejoin not in ("cold", "warm"):
            raise ClusterError(f"rejoin must be 'cold' or 'warm', got {rejoin!r}")
        self.rejoin = rejoin
        self.node_index = int(node_index)
        # Constructor arguments stay untouched; bind() resolves them into the
        # ``fail_at``/``detect_at``/``recover_at`` timeline, so the same
        # scenario instance can be re-bound to a different run.
        self._fail_at_arg = fail_at
        self._detect_at_arg = detect_at
        self._recover_at_arg = recover_at
        self.fail_at: float = 0.0
        self.detect_at: float = 0.0
        self.recover_at: Optional[float] = None

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        if self.node_index >= num_nodes:
            raise ClusterError(
                f"node_index {self.node_index} out of range for {num_nodes} nodes"
            )
        self.fail_at = 0.4 * duration if self._fail_at_arg is None else self._fail_at_arg
        self.detect_at = (
            self.fail_at + max(4.0 * staleness_bound, 0.05 * duration)
            if self._detect_at_arg is None
            else self._detect_at_arg
        )
        if self._recover_at_arg == self._AUTO:
            self.recover_at = max(0.75 * duration, self.detect_at + staleness_bound)
        else:
            self.recover_at = self._recover_at_arg
        if self.recover_at is not None and self.recover_at <= self.detect_at:
            raise ClusterError("recover_at must be after detect_at")
        if not self.fail_at < self.detect_at:
            raise ClusterError("detect_at must be after fail_at")

    @property
    def requires_persistence(self) -> bool:
        return self.rejoin == "warm"

    def events(self) -> List[ScenarioEvent]:
        index = self.node_index
        warm = self.rejoin == "warm"

        def fail(cluster: "ClusterSimulation", time: float) -> None:
            cluster.fail_node(index)

        def detect(cluster: "ClusterSimulation", time: float) -> None:
            cluster.remove_node(index, time)

        def recover(cluster: "ClusterSimulation", time: float) -> None:
            cluster.rejoin_node(index, warm=warm, time=time)

        label = "recover-warm" if warm else "recover"
        events = [
            ScenarioEvent(time=self.fail_at, label="fail", apply=fail),
            ScenarioEvent(time=self.detect_at, label="detect", apply=detect),
        ]
        if self.recover_at is not None:
            events.append(ScenarioEvent(time=self.recover_at, label=label, apply=recover))
        return events

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "node_index": self.node_index,
            "fail_at": self.fail_at,
            "detect_at": self.detect_at,
            "recover_at": self.recover_at,
            "rejoin": self.rejoin,
        }


class FlashCrowdScenario(Scenario):
    """Sudden traffic concentration onto a few brand-new keys.

    After ``shift_at`` (default ``0.5 * duration``), each request is
    redirected with probability ``fraction`` onto one of ``hot_keys`` event
    keys.  Redirection is decided by a stable hash of the original key, so
    the same trace shifts the same way in every run.  The event keys are new
    to every shard: the crowd lands cold, concentrates load on the owning
    shards, and — because redirected writes come with the crowd — gives the
    per-shard hot-key detectors something real to catch.

    Args:
        shift_at: Absolute shift time (default half the run).
        fraction: Share of post-shift traffic redirected, in (0, 1].
        hot_keys: Number of event keys the crowd concentrates on.
    """

    name = "flash-crowd"

    def __init__(
        self,
        shift_at: Optional[float] = None,
        fraction: float = 0.3,
        hot_keys: int = 4,
    ) -> None:
        super().__init__()
        if not 0.0 < fraction <= 1.0:
            raise ClusterError(f"fraction must be in (0, 1], got {fraction}")
        if hot_keys < 1:
            raise ClusterError(f"hot_keys must be >= 1, got {hot_keys}")
        self._shift_at_arg = shift_at
        self.shift_at: float = 0.0
        self.fraction = float(fraction)
        self.hot_keys = int(hot_keys)
        self._threshold = int(self.fraction * 2**32)

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        self.shift_at = 0.5 * duration if self._shift_at_arg is None else self._shift_at_arg

    def events(self) -> List[ScenarioEvent]:
        def note(cluster: "ClusterSimulation", time: float) -> None:
            # The transform does the work; the event only marks the shift in
            # the event log for debuggability.
            pass

        return [ScenarioEvent(time=self.shift_at, label="shift", apply=note)]

    def transform_request(self, request: Request) -> Request:
        if request.time < self.shift_at:
            return request
        fingerprint = stable_fingerprint(request.key + "#crowd")
        if (fingerprint & 0xFFFFFFFF) >= self._threshold:
            return request
        return replace(request, key=f"flash-{fingerprint % self.hot_keys}")

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "shift_at": self.shift_at,
            "fraction": self.fraction,
            "hot_keys": self.hot_keys,
        }


class PartitionScenario(Scenario):
    """Lossy freshness channel to a subset of nodes for a time window.

    Between ``start_at`` and ``end_at`` the channel from the backend to each
    affected node drops messages with probability ``loss`` (1.0 = total
    outage).  Unlike ``node-failure``, fetches keep working: the nodes serve
    and fill normally while silently missing invalidates and updates — the
    paper's §5 guaranteed-delivery problem, scoped to part of the fleet.

    Args:
        node_indices: Indices of the affected nodes (default: node 0).
        start_at: Window start (default ``0.3 * duration``).
        end_at: Window end (default ``0.7 * duration``).
        loss: Message loss probability inside the window.
    """

    name = "partition"

    def __init__(
        self,
        node_indices: Sequence[int] = (0,),
        start_at: Optional[float] = None,
        end_at: Optional[float] = None,
        loss: float = 1.0,
    ) -> None:
        super().__init__()
        if not node_indices:
            raise ClusterError("partition needs at least one node index")
        if not 0.0 < loss <= 1.0:
            raise ClusterError(f"loss must be in (0, 1], got {loss}")
        self.node_indices = tuple(int(index) for index in node_indices)
        self._start_at_arg = start_at
        self._end_at_arg = end_at
        self.start_at: float = 0.0
        self.end_at: float = 0.0
        self.loss = float(loss)
        self._saved_loss: Dict[int, float] = {}

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        for index in self.node_indices:
            if not 0 <= index < num_nodes:
                raise ClusterError(f"node index {index} out of range for {num_nodes} nodes")
        self.start_at = 0.3 * duration if self._start_at_arg is None else self._start_at_arg
        self.end_at = 0.7 * duration if self._end_at_arg is None else self._end_at_arg
        if not self.start_at < self.end_at:
            raise ClusterError("partition end_at must be after start_at")
        self._saved_loss.clear()

    def events(self) -> List[ScenarioEvent]:
        indices = self.node_indices

        def start(cluster: "ClusterSimulation", time: float) -> None:
            for index in indices:
                channel = cluster.node_at(index).channel
                if self.loss >= 1.0:
                    channel.outage = True
                else:
                    self._saved_loss[index] = channel.loss_probability
                    channel.loss_probability = self.loss

        def end(cluster: "ClusterSimulation", time: float) -> None:
            for index in indices:
                channel = cluster.node_at(index).channel
                if self.loss >= 1.0:
                    channel.outage = False
                else:
                    channel.loss_probability = self._saved_loss.pop(index, 0.0)

        return [
            ScenarioEvent(time=self.start_at, label="partition-start", apply=start),
            ScenarioEvent(time=self.end_at, label="partition-end", apply=end),
        ]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "node_indices": list(self.node_indices),
            "start_at": self.start_at,
            "end_at": self.end_at,
            "loss": self.loss,
        }


class CrashRestartScenario(Scenario):
    """Mid-run fleet crash with immediate restart (``kill-at-t``).

    At ``kill_at`` (default half the run) every node loses its volatile
    state — cache contents, write buffers, trackers, in-flight freshness
    messages — and restarts at once.  The shared datastore is authoritative
    and survives.  With ``mode="warm"`` each node restores its cache from its
    last durable snapshot, with keys written since the snapshot invalidated
    by WAL replay; with ``mode="cold"`` the fleet restarts empty.  Comparing
    the two quantifies the miss/stale spike durability avoids.

    Args:
        kill_at: Absolute crash time (default ``0.5 * duration``).
        mode: ``"warm"`` (requires a configured store) or ``"cold"``.
    """

    name = "kill-at-t"

    def __init__(self, kill_at: Optional[float] = None, mode: str = "warm") -> None:
        super().__init__()
        if mode not in ("warm", "cold"):
            raise ClusterError(f"mode must be 'warm' or 'cold', got {mode!r}")
        self._kill_at_arg = kill_at
        self.kill_at: float = 0.0
        self.mode = mode

    @property
    def requires_persistence(self) -> bool:
        return self.mode == "warm"

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        self.kill_at = 0.5 * duration if self._kill_at_arg is None else self._kill_at_arg
        if not 0.0 < self.kill_at < duration:
            raise ClusterError(
                f"kill_at must fall inside the run (0, {duration}), got {self.kill_at}"
            )

    def events(self) -> List[ScenarioEvent]:
        warm = self.mode == "warm"

        def crash(cluster: "ClusterSimulation", time: float) -> None:
            cluster.crash_restart(time, warm=warm)

        return [
            ScenarioEvent(time=self.kill_at, label=f"crash-restart-{self.mode}", apply=crash)
        ]

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "kill_at": self.kill_at, "mode": self.mode}


class L2OutageScenario(Scenario):
    """Partition the shared tier away from a subset of nodes for a window.

    Between ``start_at`` and ``end_at`` the affected nodes cannot reach the
    shared L2/backend: reads are answered *degraded* straight from the
    per-node L1 — stale entries included, counted honestly as staleness
    violations — L1 misses fail outright (``failed_fetches``), and freshness
    messages are lost at the channel.  This is the survivability question
    tiering exists to answer: how much of the traffic does the fast tier
    carry when the fleet behind it goes dark?

    Requires the cluster to run with an L1
    (:class:`~repro.tier.TierConfig` with ``l1_capacity > 0``).

    Args:
        node_indices: Indices of the partitioned nodes (``None`` = the whole
            fleet, the default — a shared-tier outage hits everyone).
        start_at: Window start (default ``0.4 * duration``).
        end_at: Window end (default ``0.7 * duration``).
    """

    name = "l2-outage"

    def __init__(
        self,
        node_indices: Optional[Sequence[int]] = None,
        start_at: Optional[float] = None,
        end_at: Optional[float] = None,
    ) -> None:
        super().__init__()
        if node_indices is not None and not node_indices:
            raise ClusterError("l2-outage needs at least one node index (or None for all)")
        self.node_indices = (
            tuple(int(index) for index in node_indices) if node_indices is not None else None
        )
        self._start_at_arg = start_at
        self._end_at_arg = end_at
        self.start_at: float = 0.0
        self.end_at: float = 0.0

    @property
    def requires_tier(self) -> bool:
        return True

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        for index in self.node_indices or ():
            if not 0 <= index < num_nodes:
                raise ClusterError(f"node index {index} out of range for {num_nodes} nodes")
        self.start_at = 0.4 * duration if self._start_at_arg is None else self._start_at_arg
        self.end_at = 0.7 * duration if self._end_at_arg is None else self._end_at_arg
        if not self.start_at < self.end_at:
            raise ClusterError("l2-outage end_at must be after start_at")
        if not 0.0 <= self.start_at or not self.end_at <= duration:
            # The end event must fire inside the run: the outage's no-charge
            # poll accounting depends on it.
            raise ClusterError(
                f"l2-outage window must fall inside the run [0, {duration}], "
                f"got [{self.start_at}, {self.end_at}]"
            )

    def _indices(self, cluster: "ClusterSimulation") -> Sequence[int]:
        if self.node_indices is not None:
            return self.node_indices
        return range(self.num_nodes)

    def events(self) -> List[ScenarioEvent]:
        def start(cluster: "ClusterSimulation", time: float) -> None:
            for index in self._indices(cluster):
                cluster.node_at(index).set_l2_outage(True, time)

        def end(cluster: "ClusterSimulation", time: float) -> None:
            for index in self._indices(cluster):
                cluster.node_at(index).set_l2_outage(False, time)

        return [
            ScenarioEvent(time=self.start_at, label="l2-outage-start", apply=start),
            ScenarioEvent(time=self.end_at, label="l2-outage-end", apply=end),
        ]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "node_indices": list(self.node_indices) if self.node_indices is not None else None,
            "start_at": self.start_at,
            "end_at": self.end_at,
        }


class ColdL1Scenario(Scenario):
    """Fleet restart with a warm L2 but empty L1s (the deploy transient).

    At ``restart_at`` every node drops its L1 — a rolling binary deploy
    kills the process-local tier while the shared tier keeps its state.
    The L1 hit rate collapses and re-warms through admission; comparing the
    transient across admission policies and L1 sizes is the point.

    Requires the cluster to run with an L1
    (:class:`~repro.tier.TierConfig` with ``l1_capacity > 0``).

    Args:
        restart_at: Absolute restart time (default ``0.5 * duration``).
    """

    name = "cold-l1"

    def __init__(self, restart_at: Optional[float] = None) -> None:
        super().__init__()
        self._restart_at_arg = restart_at
        self.restart_at: float = 0.0

    @property
    def requires_tier(self) -> bool:
        return True

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        self.restart_at = (
            0.5 * duration if self._restart_at_arg is None else self._restart_at_arg
        )
        if not 0.0 < self.restart_at < duration:
            raise ClusterError(
                f"restart_at must fall inside the run (0, {duration}), got {self.restart_at}"
            )

    def events(self) -> List[ScenarioEvent]:
        def restart(cluster: "ClusterSimulation", time: float) -> None:
            for node in cluster.nodes():
                node.clear_l1(time)

        return [ScenarioEvent(time=self.restart_at, label="cold-l1-restart", apply=restart)]

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "restart_at": self.restart_at}


class StampedeScenario(Scenario):
    """Mass simultaneous expiry: a hot slice of the cache dies at once.

    At ``expire_at`` (default ``0.5 * duration``) every node walks its
    resident entries and expires the valid ones whose key falls in a stable
    ``fraction``-sized hash slice — the same keys on every node, the same
    keys in every run.  This is the classic stampede setup (a deploy
    flushing TTLs, a bulk invalidation): the next wave of reads for those
    keys all miss together, and without a mitigation policy each miss
    dogpiles the backend with its own fetch.

    The scenario itself is engine-agnostic (mass expiry also spikes the
    instant-fetch engines' refetch costs), but its point is the concurrent
    fetch model: pair it with ``concurrency=ConcurrencyConfig(...)`` and
    compare stampede policies by ``backend_fetches`` and tail latency.

    Args:
        expire_at: Absolute expiry time (default half the run).
        fraction: Share of resident keys expired, in (0, 1].
    """

    name = "stampede"

    def __init__(self, expire_at: Optional[float] = None, fraction: float = 0.8) -> None:
        super().__init__()
        if not 0.0 < fraction <= 1.0:
            raise ClusterError(f"fraction must be in (0, 1], got {fraction}")
        self._expire_at_arg = expire_at
        self.expire_at: float = 0.0
        self.fraction = float(fraction)
        self._threshold = int(self.fraction * 2**32)

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        self.expire_at = (
            0.5 * duration if self._expire_at_arg is None else self._expire_at_arg
        )
        if not 0.0 < self.expire_at < duration:
            raise ClusterError(
                f"expire_at must fall inside the run (0, {duration}), got {self.expire_at}"
            )

    def _selects(self, key: str) -> bool:
        return (stable_fingerprint(key + "#stampede") & 0xFFFFFFFF) < self._threshold

    def events(self) -> List[ScenarioEvent]:
        def expire(cluster: "ClusterSimulation", time: float) -> None:
            selects = self._selects
            for node in cluster.nodes():
                for cache in (
                    (node.cache,) if node.l1 is None else (node.cache, node.l1.cache)
                ):
                    for entry in list(cache.entries()):
                        if entry.state is EntryState.VALID and selects(entry.key):
                            cache.expire(entry.key)

        return [ScenarioEvent(time=self.expire_at, label="stampede-expire", apply=expire)]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "expire_at": self.expire_at,
            "fraction": self.fraction,
        }


class BackendSaturationScenario(Scenario):
    """Squeeze the shared backend's fetch capacity for a window.

    Between ``squeeze_at`` (default ``0.4 * duration``) and ``recover_at``
    (default ``0.8 * duration``) the fleet-shared backend serves fetches
    with only ``capacity`` slots; slots above the squeeze retire as they
    drain, and the configured capacity returns at recovery.  Misses queue
    behind each other, read-latency tails grow, and the stampede policies
    that avoid fetches (coalescing, stale serving, early refresh) separate
    from the ones that do not.

    Requires the cluster to run with ``concurrency=ConcurrencyConfig(...)``
    — without the in-flight fetch model there is no backend queue to squeeze.

    Args:
        capacity: Fetch slots during the squeeze (default 1).
        squeeze_at: Window start (default ``0.4 * duration``).
        recover_at: Window end (default ``0.8 * duration``).
    """

    name = "backend-saturation"

    def __init__(
        self,
        capacity: int = 1,
        squeeze_at: Optional[float] = None,
        recover_at: Optional[float] = None,
    ) -> None:
        super().__init__()
        if capacity < 1:
            raise ClusterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._squeeze_at_arg = squeeze_at
        self._recover_at_arg = recover_at
        self.squeeze_at: float = 0.0
        self.recover_at: float = 0.0
        self._saved_capacity: int = 0

    @property
    def requires_concurrency(self) -> bool:
        return True

    def bind(self, duration: float, staleness_bound: float, num_nodes: int) -> None:
        super().bind(duration, staleness_bound, num_nodes)
        self.squeeze_at = (
            0.4 * duration if self._squeeze_at_arg is None else self._squeeze_at_arg
        )
        self.recover_at = (
            0.8 * duration if self._recover_at_arg is None else self._recover_at_arg
        )
        if not self.squeeze_at < self.recover_at:
            raise ClusterError("recover_at must be after squeeze_at")
        if not 0.0 <= self.squeeze_at or not self.recover_at <= duration:
            raise ClusterError(
                f"saturation window must fall inside the run [0, {duration}], "
                f"got [{self.squeeze_at}, {self.recover_at}]"
            )

    def events(self) -> List[ScenarioEvent]:
        def squeeze(cluster: "ClusterSimulation", time: float) -> None:
            self._saved_capacity = cluster.backend.capacity
            cluster.backend.set_capacity(self.capacity)

        def recover(cluster: "ClusterSimulation", time: float) -> None:
            cluster.backend.set_capacity(self._saved_capacity)

        return [
            ScenarioEvent(time=self.squeeze_at, label="saturation-start", apply=squeeze),
            ScenarioEvent(time=self.recover_at, label="saturation-end", apply=recover),
        ]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "squeeze_at": self.squeeze_at,
            "recover_at": self.recover_at,
        }


SCENARIO_FACTORIES: Dict[str, Callable[..., Scenario]] = {
    "node-failure": NodeFailureScenario,
    "flash-crowd": FlashCrowdScenario,
    "partition": PartitionScenario,
    "kill-at-t": CrashRestartScenario,
    "l2-outage": L2OutageScenario,
    "cold-l1": ColdL1Scenario,
    "stampede": StampedeScenario,
    "backend-saturation": BackendSaturationScenario,
}

# The resilience package (autoscaler, gray failures, zone outages, flapping)
# registers its scenarios into the same factory table so `make_scenario` and
# the CLI see one namespace.  Imported at the bottom because the resilience
# module subclasses `Scenario`.  When *this* module is reached through an
# import of `repro.resilience.scenarios` itself, the re-entrant import below
# raises ImportError against the half-initialized module — that is fine: the
# resilience module self-registers at its own bottom, so the table is always
# complete once either import finishes.
try:
    from repro.resilience.scenarios import RESILIENCE_SCENARIOS  # noqa: E402
except ImportError:  # pragma: no cover - re-entrant import order
    pass
else:
    SCENARIO_FACTORIES.update(RESILIENCE_SCENARIOS)


def make_scenario(
    name: str, params: Optional[Dict[str, Any] | Sequence[Tuple[str, Any]]] = None
) -> Scenario:
    """Build a scenario by registry name with keyword parameters.

    Raises:
        ClusterError: If the name is not registered.
    """
    if name in ("none", ""):
        return Scenario()
    try:
        factory = SCENARIO_FACTORIES[name]
    except KeyError as exc:
        raise ClusterError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIO_FACTORIES)}"
        ) from exc
    kwargs = dict(params or {})
    # Scenario parameters arriving from JSON/CLI use lists for sequences.
    if "node_indices" in kwargs and isinstance(kwargs["node_indices"], list):
        kwargs["node_indices"] = tuple(kwargs["node_indices"])
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise ClusterError(f"invalid parameters for scenario {name!r}: {exc}") from exc
