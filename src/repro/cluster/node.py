"""A single cache node in the fleet.

A :class:`CacheNode` owns one shard's worth of the system: its own cache and
eviction state, its own freshness-policy instance (so per-shard ``E[W]``
estimators see only the shard's traffic), its own backend-side write buffer
and invalidation tracker, and its own :class:`~repro.backend.channel.Channel`
to the shared versioned datastore.  The read path, lazy TTL accounting, and
flush-time message accounting deliberately mirror
:class:`repro.sim.simulation.Simulation` operation-for-operation: a one-node
cluster with replication 1 produces byte-identical aggregate counters to the
single-cache simulator, which is the equivalence the tests pin down.

On top of the single-cache behaviour a node adds the cluster concerns:
reachability (a failed-but-undetected node keeps serving its cache but can
neither re-fetch nor receive freshness messages), purge-on-departure, and the
per-shard hot-key detector that can route flush decisions to a different
policy for hot keys.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.backend.buffer import WriteBuffer
from repro.backend.channel import Channel
from repro.backend.datastore import DataStore
from repro.backend.invalidation_tracker import InvalidationTracker
from repro.backend.messages import InvalidateMessage, Message, UpdateMessage
from repro.cache.cache import Cache
from repro.cache.entry import CacheEntry, EntryState
from repro.cache.eviction import EvictionPolicy
from repro.concurrency.backend import BackendServer
from repro.concurrency.config import ConcurrencyConfig
from repro.concurrency.coordinator import FetchCoordinator
from repro.errors import ClusterError
from repro.cluster.hotkey import HotKeyDetector
from repro.cluster.results import NodeResult
from repro.core.cost_model import CostModel
from repro.core.policy import Action, FreshnessPolicy, PolicyContext
from repro.core.ttl import TTLPollingPolicy, account_entry_polls
from repro.obs.metrics import Histogram
from repro.sim.events import PendingDelivery
from repro.tier.config import TierConfig
from repro.tier.l1 import L1Tier
from repro.workload.base import OpType, Request


class CacheNode:
    """One shard: cache + policy + backend-side buffer/tracker + channel.

    Args:
        node_id: Stable identifier (also the node's hash-ring identity).
        policy: This shard's freshness-policy instance (not shared).
        staleness_bound: The bound ``T`` shared by the whole fleet.
        costs: The fleet's cost model.
        datastore: The shared versioned backend store.
        cache_capacity: Per-node object capacity (``None`` = unbounded).
        eviction: Per-node eviction policy instance.
        channel: Backend-to-node message channel (never ``None`` in a
            cluster, so scenarios can impose outages; an ideal channel is
            instantaneous and lossless).
        tracker_capacity: Capacity of this node's invalidated-key tracker.
        hot_policy: Optional policy instance applied to keys the detector
            currently flags hot on this shard.
        detector: Optional per-shard hot-key detector.
        discard_buffer_on_miss_fill: Same semantics as the single-cache
            simulator, applied to this node's buffer.
        pending_registry: Optional cluster-owned set of node ids with
            messages in flight; lets the cluster skip the per-request
            delivery sweep when nothing is pending anywhere in the fleet.
        tier: Optional :class:`~repro.tier.TierConfig` placing a small L1 in
            front of this node's cache (which then acts as the L2).  Disabled
            configs (``l1_capacity=0``) leave the node single-tier and
            byte-identical to a node built without one.
        tier_seed: Seed for the L1 admission sketch's hash family.
    """

    def __init__(
        self,
        node_id: str,
        policy: FreshnessPolicy,
        staleness_bound: float,
        costs: CostModel,
        datastore: DataStore,
        cache_capacity: Optional[int] = None,
        eviction: Optional[EvictionPolicy] = None,
        channel: Optional[Channel] = None,
        tracker_capacity: Optional[int] = None,
        hot_policy: Optional[FreshnessPolicy] = None,
        detector: Optional[HotKeyDetector] = None,
        discard_buffer_on_miss_fill: bool = True,
        pending_registry: Optional[set] = None,
        tier: Optional[TierConfig] = None,
        tier_seed: int = 0,
    ) -> None:
        self.node_id = node_id
        self.policy = policy
        self.hot_policy = hot_policy
        self.detector = detector
        self.staleness_bound = float(staleness_bound)
        self.costs = costs
        self.datastore = datastore
        self.channel = channel if channel is not None else Channel()
        self.discard_buffer_on_miss_fill = discard_buffer_on_miss_fill

        self.cache = Cache(capacity=cache_capacity, eviction=eviction, on_evict=self._on_evict)
        self.buffer = WriteBuffer()
        self.tracker = InvalidationTracker(capacity=tracker_capacity)
        self.result = NodeResult(node_id=node_id, policy_name=policy.name)
        #: The per-node L1 in front of ``cache`` (``None`` = single-tier).
        self.l1: Optional[L1Tier] = (
            L1Tier(
                tier,
                costs=costs,
                result=self.result,
                seed=tier_seed,
                demote_sink=self._install_demoted,
                victim_settler=self._settle_l1_victim,
            )
            if tier is not None and tier.enabled
            else None
        )
        self._pending: List[PendingDelivery] = []
        self._pending_registry = pending_registry

        #: In-flight fetch state (``None`` until :meth:`attach_concurrency`;
        #: the plain instant-fetch read path never consults either).
        self.fetches: Optional[FetchCoordinator] = None
        self.latency: Optional[Histogram] = None

        #: Whether the node can talk to the backend (fetches and freshness
        #: messages).  A failed-but-undetected node is unreachable yet still
        #: serves reads from its cache.
        self.reachable = True
        #: Whether the node is currently on the hash ring.
        self.in_ring = True

        self._bind_policies()

    # ------------------------------------------------------------------ #
    # Policy plumbing
    # ------------------------------------------------------------------ #
    def _bind_policies(self) -> None:
        context = PolicyContext(
            costs=self.costs,
            staleness_bound=self.staleness_bound,
            cache=self.cache,
            datastore=self.datastore,
            tracker=self.tracker,
            future=None,
        )
        self.policy.bind(context)
        if self.hot_policy is not None:
            self.hot_policy.bind(context)
        # Hot-path precomputation (policies are fixed for the node's
        # lifetime): observation hooks that are base-class no-ops are never
        # called, TTL settling is skipped for non-TTL policies, the
        # fixed-preset serve cost collapses to a constant, and flush actions
        # dispatch through a handler table.
        base_read = FreshnessPolicy.observe_read
        base_write = FreshnessPolicy.observe_write
        policies = [self.policy] + ([self.hot_policy] if self.hot_policy else [])
        self._read_observers = tuple(
            policy.observe_read
            for policy in policies
            if type(policy).observe_read is not base_read
        )
        self._write_observers = tuple(
            policy.observe_write
            for policy in policies
            if type(policy).observe_write is not base_write
        )
        self._settles_ttl = self.policy.ttl_mode is not None
        self._ttl_expiry = self.policy.ttl_mode == "expiry"
        # TTL duration is fixed once bound (explicit override or the run's
        # staleness bound), so resolve the property once.
        self._ttl_value = (
            self.policy.ttl if self.policy.ttl_mode is not None else math.inf
        )
        self._poll_ttl = (
            self._ttl_value if isinstance(self.policy, TTLPollingPolicy) else None
        )
        self._reacts = self.reacts_to_writes
        self._serve_cost_const = (
            self.costs.serve_cost() if self.costs.breakdown is None else None
        )
        self._miss_cost_const = (
            self.costs.miss_cost() if self.costs.breakdown is None else None
        )
        self._l2_peek = self.cache.raw_getter()
        self._action_handlers = {
            Action.NOTHING: None,
            Action.INVALIDATE: self._send_invalidate,
            Action.UPDATE: self._send_update,
        }

    @property
    def reacts_to_writes(self) -> bool:
        """Whether this node buffers writes for flush-time decisions."""
        if self.policy.reacts_to_writes:
            return True
        return self.hot_policy is not None and self.hot_policy.reacts_to_writes

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    def observe_write(self, request: Request, owner: bool) -> None:
        """Record a backend write for which this node holds a replica.

        Only the primary (``owner``) counts the write in its result so that
        fleet totals count each workload request exactly once; every replica
        observes it (estimators, detector) and dirties its buffer.
        """
        key, time = request.key, request.time
        if owner:
            self.result.writes += 1
        if self.detector is not None:
            self.detector.observe(key)
        for observe in self._write_observers:
            observe(key, time)
        if self._reacts:
            self.buffer.record_write(
                key,
                time,
                key_size=request.key_size,
                value_size=request.value_size,
            )

    def handle_read(self, request: Request) -> None:
        """Serve one read routed to this node (mirrors the single-cache path).

        With a tier configured, the L1 is consulted first: a valid L1 hit
        serves immediately (charged ``l1_hit``); everything else falls
        through to the single-tier L2 path below, after which the key is
        offered back to the L1 through its admission policy.  During an L2
        outage the node serves degraded straight from the L1.
        """
        # Loop-local aliasing: reads dominate the routed stream, and every
        # one of these attribute chains would otherwise re-resolve per call.
        result = self.result
        datastore = self.datastore
        l1 = self.l1
        key, time, key_size = request.key, request.time, request.key_size

        result.reads += 1
        if self.detector is not None:
            self.detector.observe(key)
        for observe in self._read_observers:
            observe(key, time)
        serve = self._serve_cost_const
        if serve is None:
            serve = self.costs.serve_cost(key_size, datastore.value_size(key))
        result.useful_work += serve

        if l1 is not None and l1.outage:
            # The shared tier is partitioned away: the L1 is all there is.
            if not l1.serve_degraded(request, datastore, self.staleness_bound):
                result.failed_fetches += 1
                result.cold_misses += 1
            return

        if self._settles_ttl:
            self._settle_ttl_state(key, time)
        if l1 is not None and l1.serve(request, datastore, self.staleness_bound):
            return
        entry, outcome = self.cache.lookup(key, time)
        if outcome == "hit":
            result.hits += 1
            bound = self.staleness_bound
            # ``is_fresh`` is trivially true when the entry's view is within
            # the bound; the precheck skips the call on that common case.
            if time - bound > entry.as_of and not datastore.is_fresh(
                key, entry.as_of, time, bound
            ):
                result.staleness_violations += 1
            if l1 is not None:
                l1.offer(entry, time, self._ttl_headroom(entry, time), promotion=True)
            return

        if not self.reachable:
            # The node cannot reach the backend: the miss cannot be served.
            # No cost is charged (no message was exchanged) and the cache is
            # not filled; the miss still counts against the hit ratio.
            result.failed_fetches += 1
            if outcome == "stale_miss":
                result.stale_misses += 1
            else:
                result.cold_misses += 1
            return

        version, backend_value_size = datastore.read(key, time)
        if outcome == "stale_miss":
            result.stale_misses += 1
            result.stale_refetches += 1
            result.freshness_cost += self.costs.miss_cost(key_size, backend_value_size)
        else:
            result.cold_misses += 1
            result.cold_miss_cost += self.costs.miss_cost(key_size, backend_value_size)
        self._fill_after_fetch(request, version, backend_value_size)
        self.tracker.mark_refetched(key)
        if self.discard_buffer_on_miss_fill and self._reacts:
            self.buffer.discard(key)

    def _fill_after_fetch(self, request: Request, version: int, value_size: int) -> None:
        """Install a backend fetch into the hierarchy.

        Single-tier and write-through nodes fill the L2 exactly as before
        (write-through additionally offers the entry to the L1); write-back
        nodes fill the L1 only, falling back to the L2 when admission
        refuses the key so the fetch is never wasted.
        """
        if self.l1 is not None and self.l1.write_back:
            headroom = (
                self.policy.ttl
                if self.policy.ttl_mode == "expiry"
                else None
            )
            if self.l1.fill_write_back(request, version, value_size, headroom):
                return
        entry = self.cache.fill(
            request.key,
            version=version,
            time=request.time,
            key_size=request.key_size,
            value_size=value_size,
        )
        if self.l1 is not None and not self.l1.write_back:
            self.l1.offer(
                entry, request.time, self._ttl_headroom(entry, request.time),
                promotion=False,
            )

    def _ttl_headroom(self, entry: CacheEntry, now: float) -> Optional[float]:
        """Seconds before ``entry``'s expiry timer fires (``None``: no timer)."""
        if self.policy.ttl_mode != "expiry":
            return None
        return self.policy.expiry_time(entry.fetched_at) - now

    # ------------------------------------------------------------------ #
    # Concurrent-fetch read path (bound only by attach_concurrency)
    # ------------------------------------------------------------------ #
    def attach_concurrency(
        self, config: ConcurrencyConfig, server: BackendServer, seed: int
    ) -> None:
        """Enable the in-flight fetch model on this node.

        The cluster calls this once per node after construction, passing the
        *shared* backend server (all nodes queue on the same fetch slots) and
        the node's derived seed (each node draws its own service-time and
        early-expiry streams).  Binding works by instance-attribute
        shadowing: the concurrent variants of ``handle_read`` /
        ``observe_write`` / ``flush`` / ``finalize`` /
        ``lose_volatile_state`` are installed as instance attributes, so an
        unattached node resolves the plain class methods and stays
        byte-identical to the instant-fetch engine.
        """
        self.fetches = FetchCoordinator(config, server, seed)
        self.latency = Histogram("read_latency")
        self.result.latency_buckets = self.latency.counts
        self.handle_read = self._handle_read_concurrent
        self.observe_write = self._observe_write_concurrent
        self.flush = self._flush_concurrent
        self.finalize = self._finalize_concurrent
        self.lose_volatile_state = self._lose_volatile_state_concurrent

    def _handle_read_concurrent(self, request: Request) -> None:
        """The routed read path under the in-flight fetch model.

        Mirrors :meth:`handle_read` op-for-op on the hit/degraded/unreachable
        paths (which all observe zero latency: they never touch the backend),
        while misses issue a fetch on the shared backend — classified and
        charged at issue time — whose fill lands at its completion time.
        Every read records exactly one latency sample.
        """
        result = self.result
        datastore = self.datastore
        l1 = self.l1
        fetches = self.fetches
        latency = self.latency
        key, time, key_size = request.key, request.time, request.key_size

        if fetches.next_done <= time:
            self._apply_fetch_completions(time)

        result.reads += 1
        if self.detector is not None:
            self.detector.observe(key)
        for observe in self._read_observers:
            observe(key, time)
        serve = self._serve_cost_const
        if serve is None:
            serve = self.costs.serve_cost(key_size, datastore.value_size(key))
        result.useful_work += serve

        if l1 is not None and l1.outage:
            if not l1.serve_degraded(request, datastore, self.staleness_bound):
                result.failed_fetches += 1
                result.cold_misses += 1
            latency.observe(0.0)
            return

        if self._settles_ttl:
            self._settle_ttl_state(key, time)
        if l1 is not None and l1.serve(request, datastore, self.staleness_bound):
            latency.observe(0.0)
            return
        entry, outcome = self.cache.lookup(key, time)
        bound = self.staleness_bound
        if outcome == "hit":
            result.hits += 1
            if time - bound > entry.as_of and not datastore.is_fresh(
                key, entry.as_of, time, bound
            ):
                result.staleness_violations += 1
            if l1 is not None:
                l1.offer(entry, time, self._ttl_headroom(entry, time), promotion=True)
            latency.observe(0.0)
            if (
                self.reachable
                and fetches.early_expiry
                and fetches.lookup(key) is None
                and fetches.should_refresh_early(time, entry.as_of, bound)
            ):
                self._issue_refresh(key, time, key_size)
                result.early_refreshes += 1
            return

        if not self.reachable:
            # Same semantics as the plain path: the miss cannot be served and
            # the error returns immediately (no backend wait to measure).
            result.failed_fetches += 1
            if outcome == "stale_miss":
                result.stale_misses += 1
            else:
                result.cold_misses += 1
            latency.observe(0.0)
            return

        stale_entry = entry if outcome == "stale_miss" else None
        in_flight = fetches.lookup(key) if fetches.coalesces else None
        if in_flight is not None:
            # Follower: ride the in-flight fetch instead of dogpiling the
            # backend.  The miss is still classified (the cache did miss)
            # but no fetch cost is charged — the leader already paid it.
            result.coalesced_reads += 1
            if outcome == "stale_miss":
                result.stale_misses += 1
            else:
                result.cold_misses += 1
            if fetches.followers_serve_stale and stale_entry is not None:
                result.stale_serves += 1
                latency.observe(0.0)
                if time - bound > stale_entry.as_of and not datastore.is_fresh(
                    key, stale_entry.as_of, time, bound
                ):
                    result.staleness_violations += 1
            else:
                latency.observe(in_flight.done - time)
            return

        # Leader: read the backend snapshot now, charge the miss now, and
        # let the fill land when the fetch completes.
        version, backend_value_size = datastore.read(key, time)
        if outcome == "stale_miss":
            result.stale_misses += 1
            result.stale_refetches += 1
            result.freshness_cost += self.costs.miss_cost(key_size, backend_value_size)
        else:
            result.cold_misses += 1
            result.cold_miss_cost += self.costs.miss_cost(key_size, backend_value_size)
        fetch = fetches.issue(key, time, version, backend_value_size, key_size)
        result.backend_fetches += 1
        if fetches.leader_serves_stale and stale_entry is not None:
            result.stale_serves += 1
            latency.observe(0.0)
            if time - bound > stale_entry.as_of and not datastore.is_fresh(
                key, stale_entry.as_of, time, bound
            ):
                result.staleness_violations += 1
        else:
            latency.observe(fetch.done - time)

    def _issue_refresh(self, key: str, time: float, key_size: int) -> None:
        """Background refresh (early expiry): freshness work, not a miss."""
        version, value_size = self.datastore.read(key, time)
        self.result.freshness_cost += self.costs.miss_cost(key_size, value_size)
        self.result.backend_fetches += 1
        self.fetches.issue(key, time, version, value_size, key_size)

    def _apply_fetch_completions(self, until: float) -> None:
        """Land fills for every fetch completing at or before ``until``.

        Same semantics as the single-cache engine: the fill carries the
        backend snapshot taken at issue time (``as_of`` is the issue
        instant), the tracker learns about the refetch unconditionally, and
        the buffered-write discard only applies when the fetched version is
        still the backend's latest.  Fills route through
        :meth:`_fill_after_fetch` so write-back tiers install into the L1.
        """
        discard = self.discard_buffer_on_miss_fill and self._reacts
        datastore = self.datastore
        for fetch in self.fetches.drain(until):
            key = fetch.key
            fill = Request(
                time=fetch.issued_at,
                key=key,
                op=OpType.READ,
                key_size=fetch.key_size,
                value_size=fetch.value_size,
            )
            self._fill_after_fetch(fill, fetch.version, fetch.value_size)
            self.tracker.mark_refetched(key)
            if discard and datastore.latest_version(key) == fetch.version:
                self.buffer.discard(key)

    def _observe_write_concurrent(self, request: Request, owner: bool) -> None:
        """Drain due fetch completions, then run the plain write observer."""
        if self.fetches.next_done <= request.time:
            self._apply_fetch_completions(request.time)
        CacheNode.observe_write(self, request, owner)

    def _flush_concurrent(self, flush_time: float) -> None:
        """Drain completions due by the flush instant, then flush normally.

        Completions land first on ties so a flush decision observes every
        fill that landed at or before its instant (the same tie rule as the
        single-cache engine).
        """
        if self.fetches.next_done <= flush_time:
            self._apply_fetch_completions(flush_time)
        CacheNode.flush(self, flush_time)

    def _lose_volatile_state_concurrent(self, time: float) -> None:
        """Crash semantics under the fetch model: outstanding fetches die.

        Completions already due land first (they arrived before the crash),
        then the volatile state is dropped, and responses still in flight
        are discarded on arrival — the restarted process has no record of
        the requests that issued them.  The backend slots they occupy stay
        busy: the work was already admitted.
        """
        self._apply_fetch_completions(time)
        CacheNode.lose_volatile_state(self, time)
        self.fetches.discard_pending()

    def _finalize_concurrent(self, end_time: float, final_flush: bool) -> None:
        """Land trailing completions and snapshot latency, then finalize."""
        self._apply_fetch_completions(end_time)
        self.result.latency_count = self.latency.count
        self.result.latency_sum = self.latency.sum
        CacheNode.finalize(self, end_time, final_flush)

    # ------------------------------------------------------------------ #
    # Interval flush and message delivery
    # ------------------------------------------------------------------ #
    def flush(self, flush_time: float) -> None:
        """Decide and send one freshness message per dirty key on this shard."""
        if self.l1 is not None:
            # Write-back flush first: the L2 sees the L1's dirty entries at
            # the same instant the freshness decisions for the interval land.
            self.l1.flush(flush_time)
        handlers = self._action_handlers
        decide = self._decide
        for buffered in self.buffer.drain():
            handler = handlers[decide(buffered.key, flush_time)]
            if handler is None:
                self.result.decisions_nothing += 1
            else:
                handler(buffered.key, buffered.key_size, flush_time)
        if self.detector is not None:
            # Sample the interval's hot-key pressure before the decay clock
            # advances, so the result (and obs windows) carries the same
            # number the autoscaler saw for this interval.
            self.result.hot_pressure += self.detector.pressure()
            self.detector.end_interval()

    def _decide(self, key: str, time: float) -> Action:
        """Route the flush decision to the hot policy for hot keys.

        Hotness is checked whenever a detector is present — even without a
        hot policy — so detection-only runs still report flagged keys.
        """
        if self.detector is not None and self.detector.is_hot(key):
            if self.hot_policy is not None:
                self.result.hot_decisions += 1
                return self.hot_policy.decide(key, time)
        if not self.policy.reacts_to_writes:
            # The base policy is TTL-driven; without a hot-policy hit there
            # is no flush-time decision to make for this key.
            return Action.NOTHING
        return self.policy.decide(key, time)

    def _send_invalidate(self, key: str, key_size: int, time: float) -> None:
        if self.tracker.is_invalidated(key):
            self.result.suppressed_invalidates += 1
            return
        self.result.invalidates_sent += 1
        self.result.freshness_cost += self.costs.invalidate_cost(key_size)
        self.tracker.mark_invalidated(key, time)
        message = InvalidateMessage(
            key=key,
            sent_at=time,
            key_size=key_size,
            version=self.datastore.latest_version(key),
        )
        if self.datastore.journal is not None:
            self.datastore.journal.log_message("invalidate", key, time, message.version)
        self._transmit(message)

    def _send_update(self, key: str, key_size: int, time: float) -> None:
        value_size = self.datastore.value_size(key)
        self.result.updates_sent += 1
        self.result.freshness_cost += self.costs.update_cost(key_size, value_size)
        self.tracker.mark_refetched(key)
        message = UpdateMessage(
            key=key,
            sent_at=time,
            key_size=key_size,
            value_size=value_size,
            version=self.datastore.latest_version(key),
        )
        if self.datastore.journal is not None:
            self.datastore.journal.log_message("update", key, time, message.version)
        self._transmit(message)

    def _transmit(self, message: Message) -> None:
        record = self.channel.send(message)
        if not record.delivered:
            self.result.messages_dropped += 1
            return
        if record.deliver_at <= message.sent_at:
            self._apply_message(message, message.sent_at)
        else:
            self._pending.append(PendingDelivery(message=message, deliver_at=record.deliver_at))
            if self._pending_registry is not None:
                self._pending_registry.add(self.node_id)

    def deliver_until(self, until: float) -> None:
        """Apply in-flight messages whose delivery time has arrived."""
        if not self._pending:
            return
        remaining: List[PendingDelivery] = []
        for pending in self._pending:
            if pending.deliver_at <= until:
                self._apply_message(pending.message, pending.deliver_at)
            else:
                remaining.append(pending)
        self._pending = remaining
        if not remaining and self._pending_registry is not None:
            self._pending_registry.discard(self.node_id)

    def _apply_message(self, message: Message, time: float) -> None:
        """Apply one freshness message, fanning it out through both tiers."""
        if isinstance(message, UpdateMessage):
            applied = self.cache.apply_update(
                message.key, version=message.version, time=time, value_size=message.value_size
            )
            if self.l1 is not None:
                # An update that misses the L2 but refreshes the L1 copy
                # (write-back fill, or L2 eviction) was not wasted.
                l1_applied = self.l1.apply_update(
                    message.key, version=message.version, time=time,
                    value_size=message.value_size,
                )
                applied = applied or l1_applied
            if not applied:
                self.result.updates_wasted += 1
        else:
            self.cache.apply_invalidate(message.key, time)
            if self.l1 is not None:
                self.l1.apply_invalidate(message.key, time)

    # ------------------------------------------------------------------ #
    # Lazy TTL accounting (same scheme as the single-cache simulator)
    # ------------------------------------------------------------------ #
    def _settle_ttl_state(self, key: str, now: float) -> None:
        if self.policy.ttl_mode is None:
            return
        entry = self._l2_peek(key)
        if entry is not None:
            if self._ttl_expiry:
                # Inlined ``policy.is_expired`` against the TTL resolved at
                # bind time (the duration is constant for the whole run).
                if entry.state is EntryState.VALID and now >= entry.fetched_at + self._ttl_value:
                    self.cache.expire(key)
            else:
                self.account_polls(entry, now)
        if self.l1 is not None:
            self.l1.settle(key, now, self.policy, entry, self.account_polls)

    def account_polls(self, entry: CacheEntry, now: float) -> None:
        """Charge the polls an entry performed since the last accounting point.

        Delegates the poll arithmetic to
        :func:`~repro.core.ttl.account_entry_polls` (the shared, bind-time-TTL
        twin of the policy methods), then refreshes the entry's backend
        version as of the last charged poll.
        """
        ttl = self._poll_ttl
        if ttl is None:
            return
        last_poll = account_entry_polls(
            entry, now, ttl, self.result, self.costs, self._miss_cost_const
        )
        if last_poll is not None:
            version = self.datastore.version_at(entry.key, last_poll)
            if version > entry.version:
                entry.version = version

    def _on_evict(self, entry: CacheEntry, time: float) -> None:
        if self.policy.ttl_mode == "polling":
            self.account_polls(entry, time)
            if self.l1 is not None:
                # The L1 copy piggybacked on this entry's polls; sync its
                # accounting bookmark so the now-L1-only copy does not
                # re-charge the window just settled.
                l1_entry = self.l1.cache.peek(entry.key)
                if l1_entry is not None:
                    l1_entry.last_poll_accounted = max(
                        l1_entry.last_poll_accounted, entry.last_poll_accounted
                    )
                    l1_entry.as_of = max(l1_entry.as_of, entry.as_of)
                    l1_entry.version = max(l1_entry.version, entry.version)

    # ------------------------------------------------------------------ #
    # Scenario hooks: failure, departure, rejoin
    # ------------------------------------------------------------------ #
    def fail(self) -> None:
        """Cut the node off from the backend (fail-silent, still serving).

        Freshness messages already in flight are lost, new sends are dropped
        at the channel, and misses can no longer re-fetch — but reads routed
        here keep being served from the (increasingly stale) local cache
        until the failure is detected and the ring rebalanced.
        """
        self.reachable = False
        self.channel.outage = True
        self.result.messages_dropped += len(self._pending)
        self._drop_pending()

    def depart(self, time: float) -> None:
        """Leave the ring: the cache, buffer, and tracker state is lost."""
        self.in_ring = False
        self.result.departures += 1
        self.lose_volatile_state(time)

    def crash(self, time: float) -> None:
        """Lose all volatile state without leaving the ring (kill-at-t).

        The node immediately restarts: it stays addressable and reachable but
        its cache, buffer, tracker, and in-flight deliveries are gone.  A
        warm restart (:meth:`restore_warm`) can then rebuild the cache from
        the node's last durable snapshot.
        """
        self.result.crashes += 1
        self.lose_volatile_state(time)

    def lose_volatile_state(self, time: float) -> None:
        """Drop cache/buffer/tracker/in-flight state (settling lazy polls first).

        Polls the cached entries already performed are real costs incurred
        before the loss, so they are accounted before the state disappears.
        The L1 is volatile memory like everything else: it dies too.
        """
        if self.policy.ttl_mode == "polling":
            for entry in list(self.cache.entries()):
                self.account_polls(entry, time)
            self._account_l1_only_polls(time)
        self.cache.clear()
        self.buffer.drain()
        self.tracker.clear()
        if self.l1 is not None:
            self.l1.clear()
        self._drop_pending()

    def _account_l1_only_polls(self, time: float) -> None:
        """Settle polls on entries that live only in the L1 (write-back).

        Keys present in both tiers poll once per node (the L2 copy carries
        the accounting), so only L1-only entries are charged here.
        """
        if self.l1 is None:
            return
        for entry in list(self.l1.cache.entries()):
            if self.cache.peek(entry.key) is None:
                self.account_polls(entry, time)

    def clear_l1(self, time: float) -> None:
        """Drop the L1 only (the ``cold-l1`` fleet restart: warm L2, cold L1).

        Dirty write-back entries are lost, not flushed — they only existed
        in the L1's memory.  Lazy polling costs already incurred by L1-only
        entries are settled first, mirroring :meth:`lose_volatile_state`.
        """
        if self.l1 is None:
            return
        if self.policy.ttl_mode == "polling":
            self._account_l1_only_polls(time)
        self.l1.clear()
        self.result.l1_cold_restarts += 1

    def set_l2_outage(self, active: bool, time: float) -> None:
        """Partition this node from the shared tier (``l2-outage`` scenario).

        While active, reads are served degraded from the L1 (misses fail),
        and freshness messages are lost at the channel — the node cannot
        hear the backend it cannot reach.  Polling stops too: polls already
        performed are settled when the partition starts, and when it ends
        every entry's poll-accounting bookmark jumps over the window, so the
        node is neither charged for polls it could not perform nor credited
        with the freshness those polls would have fetched.
        """
        if self.l1 is None:
            raise ClusterError(
                f"node {self.node_id} has no L1 tier to serve degraded from"
            )
        if self.policy.ttl_mode == "polling":
            if active:
                # Polls performed before the partition are real costs.
                for entry in list(self.cache.entries()):
                    self.account_polls(entry, time)
                self._account_l1_only_polls(time)
            else:
                # No poll crossed the partition: skip the window, uncharged
                # and unfreshened (as_of/version stay where the last real
                # poll left them, so post-outage staleness is honest).
                for entry in self.cache.entries():
                    entry.last_poll_accounted = max(entry.last_poll_accounted, time)
                for entry in self.l1.cache.entries():
                    entry.last_poll_accounted = max(entry.last_poll_accounted, time)
        self.l1.outage = active
        self.channel.outage = active

    def _install_demoted(self, entry: CacheEntry, time: float) -> None:
        """Install a dirty L1 entry into the L2 (write-back flush/demotion)."""
        self.cache.restore_entry(entry, time)

    def _settle_l1_victim(self, entry: CacheEntry, time: float) -> None:
        """Settle lazy polling costs on an L1 eviction victim.

        Only L1-only entries carry their own poll accounting (keys present
        in both tiers are accounted on the L2 copy), so only those are
        charged here — the polls they performed while L1-resident are real
        costs that must not vanish with the eviction.
        """
        if self.policy.ttl_mode == "polling" and self.cache.peek(entry.key) is None:
            self.account_polls(entry, time)

    def _drop_pending(self) -> None:
        self._pending.clear()
        if self._pending_registry is not None:
            self._pending_registry.discard(self.node_id)

    def rejoin(self) -> None:
        """Return to the ring cold (empty cache), reachable again."""
        self.in_ring = True
        self.reachable = True
        self.channel.outage = False
        self.result.joins += 1

    def restore_warm(
        self,
        entries: List[CacheEntry],
        time: float,
        invalidated: int,
        l1_entries: Optional[List[CacheEntry]] = None,
        l1_invalidated: int = 0,
        l1_dirty: Optional[List[str]] = None,
    ) -> None:
        """Refill the cache from durable state (warm rejoin / warm restart).

        Args:
            entries: Recovered entries, already validated against the
                replayed write history (stale ones arrive pre-invalidated).
            time: The restore instant (anchors eviction bookkeeping).
            invalidated: How many of ``entries`` were invalidated by replay.
            l1_entries: Recovered L1 entries (validated the same way); only
                restored when this node actually runs a tier.
            l1_invalidated: How many of ``l1_entries`` replay invalidated.
            l1_dirty: Keys among ``l1_entries`` that were write-back dirty
                at the snapshot — the L2 never saw them, so they come back
                dirty and flush at the next write-back interval.
        """
        for entry in entries:
            entry.last_poll_accounted = time
            self.cache.restore_entry(entry, time)
        self.result.warm_restored += len(entries)
        self.result.warm_invalidated += invalidated
        if self.l1 is not None and l1_entries:
            for entry in l1_entries:
                entry.last_poll_accounted = time
                self.l1.cache.restore_entry(entry, time)
            self.l1.dirty.update(
                key for key in l1_dirty or () if key in self.l1.cache
            )
            self.result.warm_restored += len(l1_entries)
            self.result.warm_invalidated += l1_invalidated

    # ------------------------------------------------------------------ #
    # End of run
    # ------------------------------------------------------------------ #
    def finalize(self, end_time: float, final_flush: bool) -> None:
        """Settle trailing deliveries, flushes, and lazy polling costs."""
        if self.reacts_to_writes and final_flush and len(self.buffer):
            self.flush(end_time)
        self.deliver_until(end_time)
        if self.policy.ttl_mode == "polling":
            for entry in list(self.cache.entries()):
                self.account_polls(entry, end_time)
            self._account_l1_only_polls(end_time)
        self.result.duration = end_time
        if self.detector is not None:
            self.result.hot_keys_flagged = len(self.detector.flagged)
        self.result.cache_stats = self.cache.stats.as_dict()
        if self.l1 is not None:
            self.result.l1_stats = self.l1.cache.stats.as_dict()
