"""Per-node and fleet-level cluster results.

Each :class:`~repro.cluster.node.CacheNode` accumulates a :class:`NodeResult`
— the standard single-cache counters plus the cluster-only ones (failed
fetches while unreachable, hot-key policy switches, membership churn).  At the
end of a run :class:`ClusterResult` aggregates them into fleet totals using
the same counter semantics as a single-cache run, so cluster rows and
single-cache rows share a schema and can be compared column-for-column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.sim.results import SimulationResult


@dataclass(slots=True)
class NodeResult(SimulationResult):
    """One cache node's counters for a cluster run."""

    node_id: str = ""
    #: Reads that could not re-fetch from the backend because the node was
    #: unreachable (failed but not yet detected); they count as misses too.
    failed_fetches: int = 0
    #: Flush decisions delegated to the hot-key policy instead of the base
    #: policy.
    hot_decisions: int = 0
    #: Distinct keys this shard's detector ever flagged hot.
    hot_keys_flagged: int = 0
    #: Accumulated per-flush hot-key pressure (heaviest flagged key's share
    #: of recent shard traffic, summed over intervals) — the same signal the
    #: autoscaler consumes, surfaced so obs windows and SLO rules can gate it.
    hot_pressure: float = 0.0
    #: Ring membership churn observed by this node.
    departures: int = 0
    joins: int = 0
    #: Volatile-state losses (mid-run crash-restart events).
    crashes: int = 0
    #: Entries restored from durable state on a warm rejoin/restart, and how
    #: many of them came back invalidated because their key was written while
    #: the node was down.
    warm_restored: int = 0
    warm_invalidated: int = 0

    # L1/L2 tier counters (all zero when the node runs single-tier).
    #: Reads served straight from the per-node L1.
    l1_hits: int = 0
    #: Entries copied into the L1 (promotions, refreshes, write-back fills).
    l1_insertions: int = 0
    #: L1 insertions that promoted an L2-served entry upward.
    l1_promotions: int = 0
    #: L1 capacity evictions.
    l1_evictions: int = 0
    #: Dirty entries pushed down to the L2 (interval flushes + demotions).
    l1_writebacks: int = 0
    #: L1 evictions that had to demote a dirty entry into the L2.
    l1_demotions: int = 0
    #: Candidates the admission policy kept out of the L1.
    l1_admission_rejects: int = 0
    #: Reads served from the L1 while the shared tier was partitioned away.
    l1_served_degraded: int = 0
    #: Times this node's L1 was dropped by a ``cold-l1`` fleet restart.
    l1_cold_restarts: int = 0
    #: Accumulated L1 charges (hits, inserts, write-back flushes).
    tier_cost: float = 0.0
    #: L1 cache statistics snapshot (filled at the end of the run).
    l1_stats: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Flatten, extending the single-cache schema with cluster counters."""
        # Explicit parent call: ``dataclass(slots=True)`` rebuilds the class,
        # which breaks zero-argument ``super()`` inside method bodies.
        row = SimulationResult.as_dict(self)
        row.update(
            node_id=self.node_id,
            failed_fetches=self.failed_fetches,
            hot_decisions=self.hot_decisions,
            hot_keys_flagged=self.hot_keys_flagged,
            hot_pressure=self.hot_pressure,
            departures=self.departures,
            joins=self.joins,
            crashes=self.crashes,
            warm_restored=self.warm_restored,
            warm_invalidated=self.warm_invalidated,
            l1_hits=self.l1_hits,
            l1_insertions=self.l1_insertions,
            l1_promotions=self.l1_promotions,
            l1_evictions=self.l1_evictions,
            l1_writebacks=self.l1_writebacks,
            l1_demotions=self.l1_demotions,
            l1_admission_rejects=self.l1_admission_rejects,
            l1_served_degraded=self.l1_served_degraded,
            l1_cold_restarts=self.l1_cold_restarts,
            tier_cost=self.tier_cost,
            l1_stats=dict(self.l1_stats),
        )
        return row


@dataclass(slots=True)
class ClusterResult:
    """Aggregated outcome of one cluster simulation."""

    policy_name: str = ""
    workload_name: str = ""
    staleness_bound: float = 0.0
    duration: float = 0.0
    num_nodes: int = 0
    replication: int = 1
    read_policy: str = "primary"
    scenario: str = "none"
    #: Tier coordinates (``l1_capacity=0`` means the fleet ran single-tier).
    l1_capacity: int = 0
    tier_mode: str = "write-through"

    #: Fleet totals with single-cache counter semantics (each workload
    #: request counted exactly once across the fleet).
    totals: SimulationResult = field(default_factory=SimulationResult)
    #: Per-node results, in stable node-id order.
    nodes: List[NodeResult] = field(default_factory=list)

    # Fleet-only counters.
    failed_fetches: int = 0
    rebalances: int = 0
    hot_decisions: int = 0
    hot_keys_flagged: int = 0
    hot_pressure: float = 0.0
    crashes: int = 0
    warm_restored: int = 0
    warm_invalidated: int = 0

    # Elasticity outcome fields, owned by the autoscale scenario (zero for
    # every other run).  They measure the gap to the ideal-elasticity
    # baseline — an imaginary autoscaler that reacts instantly and for free,
    # whose lag, cost, and staleness penalty are all exactly zero — so the
    # fields themselves ARE the gap and can be SLO-gated directly.
    scale_ups: int = 0
    scale_downs: int = 0
    #: Seconds spent between a watermark breach and the scaling action that
    #: answered it (ideal baseline: 0.0).
    elasticity_lag: float = 0.0
    #: Cost charged for scaling actions (node warm/cold starts and drains;
    #: ideal baseline: 0.0).
    elasticity_cost: float = 0.0
    #: Staleness violations accrued while the fleet was in breach of its
    #: scaling watermark (ideal baseline: 0).
    elasticity_staleness: int = 0

    # Fleet-level tier counters (sums of the per-node L1 counters).
    l1_hits: int = 0
    l1_insertions: int = 0
    l1_promotions: int = 0
    l1_evictions: int = 0
    l1_writebacks: int = 0
    l1_demotions: int = 0
    l1_admission_rejects: int = 0
    l1_served_degraded: int = 0
    l1_cold_restarts: int = 0
    tier_cost: float = 0.0

    #: True when the run stopped early at ``run(stop_at=...)`` — the
    #: kill-at-t crash point — instead of draining the whole stream.
    interrupted: bool = False
    #: Persistence-layer counters (``None`` when no store is configured).
    store: Dict[str, Any] | None = None
    #: Observability payload (``None`` unless the run was constructed with
    #: ``obs=``); see :meth:`repro.obs.ObsRecorder.payload`.
    obs: Dict[str, Any] | None = None

    @property
    def load_imbalance(self) -> float:
        """Max over mean of per-node request load (1.0 = perfectly even).

        Load counts the requests a node actually served or owned (reads
        routed to it plus writes it was primary for); nodes that spent part
        of the run out of the ring naturally weigh less.
        """
        loads = [node.reads + node.writes for node in self.nodes]
        if not loads or sum(loads) == 0:
            return 0.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 0.0

    def finalize(self) -> None:
        """Recompute fleet totals and counters from the per-node results."""
        self.totals = SimulationResult(
            policy_name=self.policy_name,
            workload_name=self.workload_name,
            staleness_bound=self.staleness_bound,
            duration=self.duration,
        )
        self.failed_fetches = 0
        self.hot_decisions = 0
        self.hot_keys_flagged = 0
        self.hot_pressure = 0.0
        self.crashes = 0
        self.warm_restored = 0
        self.warm_invalidated = 0
        tier_counters = (
            "l1_hits",
            "l1_insertions",
            "l1_promotions",
            "l1_evictions",
            "l1_writebacks",
            "l1_demotions",
            "l1_admission_rejects",
            "l1_served_degraded",
            "l1_cold_restarts",
            "tier_cost",
        )
        for name in tier_counters:
            setattr(self, name, 0.0 if name == "tier_cost" else 0)
        for node in self.nodes:
            self.totals.accumulate(node)
            self.failed_fetches += node.failed_fetches
            self.hot_decisions += node.hot_decisions
            self.hot_keys_flagged += node.hot_keys_flagged
            self.hot_pressure += node.hot_pressure
            self.crashes += node.crashes
            self.warm_restored += node.warm_restored
            self.warm_invalidated += node.warm_invalidated
            for name in tier_counters:
                setattr(self, name, getattr(self, name) + getattr(node, name))

    def as_dict(self) -> Dict[str, Any]:
        """Flatten fleet totals plus cluster metadata for result rows.

        The aggregate columns match :meth:`SimulationResult.as_dict`, so
        cluster rows and single-cache rows are directly comparable; the
        cluster-only columns and the compact per-node breakdown ride along.
        """
        row = self.totals.as_dict()
        row.update(
            num_nodes=self.num_nodes,
            replication=self.replication,
            read_policy=self.read_policy,
            scenario=self.scenario,
            l1_capacity=self.l1_capacity,
            tier_mode=self.tier_mode,
            failed_fetches=self.failed_fetches,
            rebalances=self.rebalances,
            hot_decisions=self.hot_decisions,
            hot_keys_flagged=self.hot_keys_flagged,
            hot_pressure=self.hot_pressure,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            elasticity_lag=self.elasticity_lag,
            elasticity_cost=self.elasticity_cost,
            elasticity_staleness=self.elasticity_staleness,
            crashes=self.crashes,
            warm_restored=self.warm_restored,
            warm_invalidated=self.warm_invalidated,
            l1_hits=self.l1_hits,
            l1_insertions=self.l1_insertions,
            l1_promotions=self.l1_promotions,
            l1_evictions=self.l1_evictions,
            l1_writebacks=self.l1_writebacks,
            l1_demotions=self.l1_demotions,
            l1_admission_rejects=self.l1_admission_rejects,
            l1_served_degraded=self.l1_served_degraded,
            l1_cold_restarts=self.l1_cold_restarts,
            tier_cost=self.tier_cost,
            load_imbalance=self.load_imbalance,
            nodes=self.node_rows(),
        )
        if self.interrupted:
            row["interrupted"] = True
        if self.store is not None:
            row["store"] = dict(self.store)
        if self.obs is not None:
            row["obs"] = self.obs
        return row

    def node_rows(self) -> List[Dict[str, Any]]:
        """Compact per-node breakdown (one dict per node, stable order)."""
        return [
            {
                "node_id": node.node_id,
                "reads": node.reads,
                "writes": node.writes,
                "hits": node.hits,
                "stale_misses": node.stale_misses,
                "cold_misses": node.cold_misses,
                "staleness_violations": node.staleness_violations,
                "failed_fetches": node.failed_fetches,
                "messages_dropped": node.messages_dropped,
                "invalidates_sent": node.invalidates_sent,
                "updates_sent": node.updates_sent,
                "hot_decisions": node.hot_decisions,
                "freshness_cost": node.freshness_cost,
                "l1_hits": node.l1_hits,
                "l1_served_degraded": node.l1_served_degraded,
                "tier_cost": node.tier_cost,
            }
            for node in self.nodes
        ]
