"""Replication configuration and replica-read routing.

Every key lives on ``factor`` distinct nodes: the ring primary plus the next
``factor - 1`` nodes clockwise.  Writes dirty every replica (each replica's
backend buffer records the key, and the fan-out at the interval flush sends
one freshness message per replica).  Reads go to a single replica chosen by
the read policy:

* ``primary`` — always the ring primary (classic primary-copy caching),
* ``round-robin`` — rotate across replicas per key, spreading hot-key load,
* ``hash`` — a stable per-key choice among replicas (sticky but spread).

All three are deterministic, which is what keeps cluster results reproducible
regardless of how many worker processes ran the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ClusterError
from repro.sketch.hashing import stable_fingerprint

READ_POLICIES = ("primary", "round-robin", "hash")


@dataclass(frozen=True, slots=True)
class ReplicationConfig:
    """How many replicas each key has and how reads pick among them.

    Args:
        factor: Number of replicas per key (1 = no replication).
        read_policy: One of :data:`READ_POLICIES`.
    """

    factor: int = 1
    read_policy: str = "primary"

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ClusterError(f"replication factor must be >= 1, got {self.factor}")
        if self.read_policy not in READ_POLICIES:
            raise ClusterError(
                f"read_policy must be one of {READ_POLICIES}, got {self.read_policy!r}"
            )


class ReplicaRouter:
    """Stateful read routing across a key's replica set."""

    def __init__(self, config: ReplicationConfig) -> None:
        self.config = config
        self._round_robin: Dict[str, int] = {}

    def choose_read_node(self, key: str, replicas: List[str]) -> str:
        """Pick the replica that serves the next read of ``key``.

        ``replicas`` is the primary-first list from the hash ring; it may be
        shorter than the configured factor when nodes have failed.
        """
        if not replicas:
            raise ClusterError(f"no replica available for key {key!r}")
        if len(replicas) == 1 or self.config.read_policy == "primary":
            return replicas[0]
        if self.config.read_policy == "hash":
            return replicas[stable_fingerprint(key + "#read") % len(replicas)]
        sequence = self._round_robin.get(key, 0)
        self._round_robin[key] = sequence + 1
        return replicas[sequence % len(replicas)]
