"""Vectorized (columnar) replay of a compiled trace across a cache fleet.

:class:`VectorClusterSimulation` is the fleet twin of
:class:`~repro.sim.vector.VectorSimulation`: it consumes a
:class:`~repro.workload.compiled.CompiledTrace`, routes each span's reads to
replicas with the exact scalar routing rules (primary / hash / round-robin,
including the per-key round-robin counters), and replays each **(node, key)**
subsequence through the same per-key kernels the single-cache engine uses —
every node's cache, buffer, tracker, and estimator are real objects, and all
simulation *events* (interval flushes, freshness message fan-out, delivery,
finalisation) run through the unmodified scalar :class:`CacheNode` machinery
between spans.

The byte-identity argument carries over from the single-cache engine because
nodes never talk to each other — they interact only through the shared
datastore, the hash ring, and the read router:

* a node's observable inputs are the global write stream (identical once the
  span's writes are pre-applied) plus the subsequence of reads routed to it,
  and routing is deterministic and independent of node-local cache state;
* within one (node, key) group the single-cache kernel invariants hold
  unchanged — spans never outlive a staleness interval, miss versions are
  positional against the *global* write columns, and per-node tallies replay
  order-sensitive effects position-sorted;
* the kernels only mutate node-local state plus two order-free global
  accumulators (``DataStore.total_writes``/``total_reads``), so the order in
  which nodes' kernels run within a span is immaterial.

The same argument is what makes **shard-parallel replay** sound: a worker
that owns a subset of nodes (``owned_nodes``) advances all the shared state —
datastore writes, router counters, ring membership — exactly like a full run
but only performs cache work for its nodes, so its owned
:class:`~repro.cluster.results.NodeResult` rows are byte-identical to a full
run's and :func:`~repro.cluster.parallel.replay_cluster_parallel` can merge
per-shard rows into one result.

Configurations outside the vectorizable envelope (scenarios, lossy or delayed
channels, tiers, capacity bounds, persistence, hot-key detection, per-size
cost breakdowns) transparently fall back to the scalar cluster loop over the
decompiled stream — identical by construction, just slower.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cluster.cluster import ClusterSimulation
from repro.cluster.results import ClusterResult
from repro.cluster.scenarios import Scenario
from repro.core.adaptive import AdaptivePolicy, CacheStateAdaptivePolicy
from repro.errors import ClusterError, ConfigurationError, WorkloadError
from repro.sim.vector import (
    _EMPTY_INDEX,
    _VECTOR_POLICIES,
    _HostState,
    _ReplayContext,
    _SpanTally,
    _TraceColumns,
    _apply_span_writes,
    _flush_tally,
    _group_by_key,
    _kernel_reactive,
    _kernel_ttl_expiry,
    _kernel_ttl_polling,
)
from repro.sketch.exact import ExactEWTracker
from repro.sketch.hashing import stable_fingerprint
from repro.workload.compiled import CompiledTrace


class _ClusterPlan:
    """Trace-wide precomputation shared by every shard of a parallel replay.

    Everything here is a pure function of the compiled trace and the cluster
    *configuration* (ring placement, replication, read policy) — no node
    state — so a parent process can build it once and let forked workers
    inherit it copy-on-write instead of each re-deriving it.

    Attributes:
        columns: Per-key write columns (:class:`_TraceColumns`).
        read_node: Per-request serving node index (``-1`` for writes),
            aligned with the trace arrays.  Encodes the exact scalar routing:
            primary, static hash choice, or per-key round-robin rank.
        replicas: Key id -> replica node indices (primary first) for every
            key that occurs in the trace.
    """

    __slots__ = ("columns", "read_node", "replicas")

    def __init__(
        self,
        columns: _TraceColumns,
        read_node: np.ndarray,
        replicas: Dict[int, Tuple[int, ...]],
    ) -> None:
        self.columns = columns
        self.read_node = read_node
        self.replicas = replicas


class VectorClusterSimulation(ClusterSimulation):
    """Drop-in :class:`ClusterSimulation` that replays a compiled trace in spans.

    Accepts the same configuration as :class:`ClusterSimulation` but takes a
    :class:`~repro.workload.compiled.CompiledTrace` instead of a request
    iterable.  ``run()`` picks the vectorized path when the configuration is
    inside the vectorizable envelope (see :meth:`vector_eligible`) and
    otherwise replays the decompiled stream through the inherited scalar
    loop — either way the results are byte-identical to the scalar engine.
    """

    def __init__(self, trace: CompiledTrace, *args, **kwargs) -> None:
        if not isinstance(trace, CompiledTrace):
            raise ConfigurationError(
                "VectorClusterSimulation requires a CompiledTrace; use "
                "compile_workload(workload, duration) first"
            )
        self.trace = trace
        super().__init__(trace.iter_requests(), *args, **kwargs)
        self.used_vector_path = False

    def vector_eligible(self) -> bool:
        """Whether this configuration can take the vectorized path.

        The fleet envelope is the single-cache one applied to every node —
        one of the six kernel policies (adaptive on the exact tracker, TTLs
        within the bound), unbounded caches and trackers, fixed cost preset,
        ideal channels — plus the cluster-only constraints: steady state
        (no scenario), no persistence, no tier, and no hot-key detection.
        Everything else falls back to the scalar fleet loop.
        """
        if type(self.scenario) is not Scenario:
            return False
        if self.chaos is not None:
            # Fault plans mutate channels and nodes mid-run; the columnar
            # kernels assume a static, ideal fleet.  Scalar fallback.
            return False
        if self._store is not None:
            return False
        if self.concurrency is not None:
            # In-flight fetches serialize fills through a time-ordered queue;
            # the columnar kernels assume instant fills.  Scalar fallback.
            return False
        if self.tier is not None:
            return False
        if self.costs.breakdown is not None:
            return False
        if self.datastore.retention is not None:
            return False
        policy = self._node_list[0].policy
        policy_type = type(policy)
        if policy_type not in _VECTOR_POLICIES:
            return False
        if policy_type in (AdaptivePolicy, CacheStateAdaptivePolicy):
            if type(policy.estimator) is not ExactEWTracker:
                return False
        if policy.ttl_mode is not None:
            ttl = policy._ttl_override
            if ttl is not None and ttl > self.staleness_bound:
                return False
        for node in self._node_list:
            if node.detector is not None or node.hot_policy is not None:
                return False
            if node.l1 is not None:
                return False
            if not node.channel.is_ideal:
                return False
            if node.cache.capacity is not None:
                return False
            if node.tracker.capacity is not None:
                return False
        return True

    def run(self, stop_at: Optional[float] = None) -> ClusterResult:
        """Replay the trace; vectorized when eligible, scalar otherwise."""
        if stop_at is not None or not self.vector_eligible():
            return super().run(stop_at)
        if self._has_run:
            raise ClusterError("a ClusterSimulation instance can only be run once")
        self._has_run = True
        self.used_vector_path = True
        self.scenario.bind(
            duration=self.duration,
            staleness_bound=self.staleness_bound,
            num_nodes=len(self._node_list),
        )
        self._refresh_next_due()
        if self.obs is not None:
            self._obs_begin("vector")
        self._run_spans()
        # The scalar finaliser runs the trailing flush boundaries, node
        # finalisation, and result aggregation (there are no scenario events
        # on the vector path).
        return self._finalize([], 0)

    # ------------------------------------------------------------------ #
    # Trace-wide routing plan
    # ------------------------------------------------------------------ #
    def build_plan(self) -> _ClusterPlan:
        """Precompute the write columns and the per-read serving node.

        Routing is a pure function of the static ring, the replication
        config, and the read stream — independent of any node's cache state —
        so the whole trace routes in a few array operations instead of a
        Python call per request.  Round-robin advances the read router's
        per-key counters to their end-of-run values here (the vector path
        never consults them mid-run; there are no checkpoints without a
        store).  A parallel replay builds the plan once in the parent and
        shares it with every forked shard.
        """
        trace = self.trace
        columns = _TraceColumns(trace)
        node_index = {
            node.node_id: index for index, node in enumerate(self._node_list)
        }
        replicas: Dict[int, Tuple[int, ...]] = {}
        factor = self._factor
        names = trace.key_names
        read_policy = self.replication.read_policy
        hash_reads = not self._read_primary and factor > 1 and read_policy == "hash"
        hash_choice: Dict[int, int] = {}
        for key_id in np.unique(trace.key_ids).tolist():
            name = names[key_id]
            route = self._route_map.get(name)
            if route is None:
                route = self._route(name, factor)
            replicas[key_id] = tuple(node_index[node_id] for node_id in route)
            if hash_reads:
                hash_choice[key_id] = replicas[key_id][
                    stable_fingerprint(name + "#read") % len(route)
                ]
        read_node = np.full(len(trace), -1, dtype=np.int64)
        read_positions = np.flatnonzero(trace.is_read)
        if read_positions.size:
            key_ids = trace.key_ids[read_positions]
            if self._read_primary or factor == 1:
                primary_of = np.full(len(names), -1, dtype=np.int64)
                for key_id, nodes in replicas.items():
                    primary_of[key_id] = nodes[0]
                read_node[read_positions] = primary_of[key_ids]
            elif hash_reads:
                choice_of = np.full(len(names), -1, dtype=np.int64)
                for key_id, node_idx in hash_choice.items():
                    choice_of[key_id] = node_idx
                read_node[read_positions] = choice_of[key_ids]
            else:
                # Round-robin: a read's replica slot is its global per-key
                # read rank mod the replica count (counters start at zero).
                replica_table = np.full((len(names), factor), -1, dtype=np.int64)
                for key_id, nodes in replicas.items():
                    replica_table[key_id, : len(nodes)] = nodes
                order = np.argsort(key_ids, kind="stable")
                sorted_keys = key_ids[order]
                boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
                starts = np.concatenate(([0], boundaries))
                counts = np.diff(np.append(starts, sorted_keys.size))
                ranks = np.arange(sorted_keys.size) - np.repeat(starts, counts)
                read_node[read_positions[order]] = replica_table[
                    sorted_keys, ranks % factor
                ]
                # The scalar router bumped the counter once per routed read.
                counter = self.router._round_robin
                for key_id, count in zip(
                    sorted_keys[starts].tolist(), counts.tolist()
                ):
                    counter[names[key_id]] = int(count)
        return _ClusterPlan(columns, read_node, replicas)

    # ------------------------------------------------------------------ #
    # Span replay
    # ------------------------------------------------------------------ #
    def _run_spans(self) -> None:
        trace = self.trace
        total = len(trace)
        if total == 0:
            return
        times = trace.times
        if times.size > 1 and bool(np.any(np.diff(times) < 0)):
            # Same contract as the scalar loop's inlined ordering check.
            raise WorkloadError("request stream is not sorted by time")
        plan: Optional[_ClusterPlan] = getattr(self, "_shared_plan", None)
        if plan is None:
            plan = self.build_plan()
        node0 = self._node_list[0]
        self._ctx = _ReplayContext(
            columns=plan.columns,
            datastore=self.datastore,
            bound=self.staleness_bound,
            ttl=node0._ttl_value,
            serve_const=node0._serve_cost_const,
            miss_const=node0._miss_cost_const,
        )
        self._hosts = [
            _HostState(
                result=node.result,
                cache=node.cache,
                buffer=node.buffer,
                tracker=node.tracker,
                estimator=(
                    node.policy.estimator
                    if isinstance(node.policy, AdaptivePolicy)
                    else None
                ),
                reacts=node._reacts,
                discard_on_miss_fill=node.discard_buffer_on_miss_fill,
            )
            for node in self._node_list
        ]
        owned_ids = self._owned_ids
        self._owned_flags = [
            owned_ids is None or node.node_id in owned_ids
            for node in self._node_list
        ]
        self._replicas = plan.replicas
        self._read_node = plan.read_node
        self._num_keys = len(trace.key_names)
        # A shard only groups and kernels what it owns: reads routed to an
        # owned node, and write streams of keys with an owned replica.  The
        # shared state (datastore versions via _apply_span_writes, router
        # counters via the plan, background flushes) still advances globally.
        self._owned_read_mask: Optional[np.ndarray] = None
        self._owned_key_mask: Optional[np.ndarray] = None
        if owned_ids is not None:
            owned_lookup = np.array(self._owned_flags, dtype=np.bool_)
            mask = np.zeros(total, dtype=np.bool_)
            routed = plan.read_node >= 0
            mask[routed] = owned_lookup[plan.read_node[routed]]
            self._owned_read_mask = mask
            key_owned = np.zeros(self._num_keys, dtype=np.bool_)
            for key_id, nodes in plan.replicas.items():
                key_owned[key_id] = any(
                    self._owned_flags[node_idx] for node_idx in nodes
                )
            self._owned_key_mask = key_owned
        obs = self.obs
        if node0._reacts:
            start = 0
            while start < total:
                end = int(np.searchsorted(times, self._next_flush, side="left"))
                if end > start:
                    if obs is not None:
                        # Kernel stats fold into the window containing the
                        # span's first request (span-granularity attribution).
                        span_start = float(times[start])
                        if span_start >= obs.next_boundary:
                            obs.roll(span_start)
                    self._replay_reactive_span(start, end)
                    start = end
                    if start >= total:
                        break
                # The next request is at or past the flush boundary: run the
                # due background work exactly where the scalar loop would.
                self._advance_background(float(times[start]))
        else:
            self._replay_ttl_trace()
        self.clock.advance_to(float(times[-1]))

    def _group_reads_by_node_key(
        self, read_positions: np.ndarray
    ) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Group routed reads by ``(node, key)`` in one composite sort.

        Yields ``(node_index, key_id, positions)`` with positions ascending
        (the sort is stable over an ascending input).
        """
        if read_positions.size == 0:
            return
        num_keys = self._num_keys
        composite = (
            self._read_node[read_positions] * num_keys
            + self.trace.key_ids[read_positions]
        )
        order = np.argsort(composite, kind="stable")
        sorted_comp = composite[order]
        boundaries = np.flatnonzero(sorted_comp[1:] != sorted_comp[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        bounds = np.append(boundaries, sorted_comp.size)
        sorted_positions = read_positions[order]
        for index in range(starts.size):
            lo = int(starts[index])
            comp = int(sorted_comp[lo])
            yield comp // num_keys, comp % num_keys, sorted_positions[
                lo : int(bounds[index])
            ]

    def _replay_reactive_span(self, start: int, end: int) -> None:
        ctx = self._ctx
        trace = ctx.trace
        span_is_read = trace.is_read[start:end]
        write_positions = np.flatnonzero(~span_is_read) + start
        _apply_span_writes(ctx, write_positions)
        if self._owned_read_mask is None:
            read_positions = np.flatnonzero(span_is_read) + start
        else:
            read_positions = (
                np.flatnonzero(span_is_read & self._owned_read_mask[start:end])
                + start
            )
        kernel_writes = write_positions
        if self._owned_key_mask is not None:
            kernel_writes = write_positions[
                self._owned_key_mask[trace.key_ids[write_positions]]
            ]
        hosts, owned = self._hosts, self._owned_flags
        tallies = [_SpanTally() for _ in hosts]
        # Route first: a (node, key) with both routed reads and replicated
        # writes must reach its kernel in ONE call (the miss/buffer/estimator
        # interleaving is per (node, key) group).
        pending: List[Dict[int, np.ndarray]] = [{} for _ in hosts]
        for node_idx, key_id, sub in self._group_reads_by_node_key(read_positions):
            pending[node_idx][key_id] = sub
        names = trace.key_names
        for key_id, writes in _group_by_key(trace, kernel_writes):
            replicas = self._replicas[key_id]
            if owned[replicas[0]]:
                # Only the primary counts the write in its result, like
                # ``observe_write(owner=True)``.
                tallies[replicas[0]].writes += int(writes.size)
            name = names[key_id]
            for node_idx in replicas:
                if owned[node_idx]:
                    _kernel_reactive(
                        ctx,
                        hosts[node_idx],
                        tallies[node_idx],
                        key_id,
                        name,
                        pending[node_idx].pop(key_id, _EMPTY_INDEX),
                        writes,
                    )
        for node_idx, leftovers in enumerate(pending):
            if not owned[node_idx]:
                continue
            for key_id, reads in leftovers.items():
                _kernel_reactive(
                    ctx,
                    hosts[node_idx],
                    tallies[node_idx],
                    key_id,
                    names[key_id],
                    reads,
                    _EMPTY_INDEX,
                )
            _flush_tally(ctx, hosts[node_idx], tallies[node_idx])

    def _replay_ttl_trace(self) -> None:
        # A non-reacting fleet's interval flushes are no-ops (nothing is ever
        # buffered, there is no detector and no tier on this path), so the
        # whole trace is a single span per (node, key).
        ctx = self._ctx
        trace = ctx.trace
        write_positions = np.flatnonzero(~trace.is_read)
        _apply_span_writes(ctx, write_positions)
        if self._owned_read_mask is None:
            read_positions = np.flatnonzero(trace.is_read)
        else:
            read_positions = np.flatnonzero(trace.is_read & self._owned_read_mask)
        if self._owned_key_mask is not None:
            write_positions = write_positions[
                self._owned_key_mask[trace.key_ids[write_positions]]
            ]
        hosts, owned = self._hosts, self._owned_flags
        tallies = [_SpanTally() for _ in hosts]
        names = trace.key_names
        for key_id, writes in _group_by_key(trace, write_positions):
            primary = self._replicas[key_id][0]
            if owned[primary]:
                tallies[primary].writes += int(writes.size)
        expiry = self._node_list[0]._ttl_expiry
        for node_idx, key_id, sub in self._group_reads_by_node_key(read_positions):
            if expiry:
                _kernel_ttl_expiry(
                    ctx, hosts[node_idx], tallies[node_idx], key_id, names[key_id], sub
                )
            else:
                _kernel_ttl_polling(
                    ctx, hosts[node_idx], tallies[node_idx], key_id, names[key_id], sub
                )
        for node_idx, tally in enumerate(tallies):
            if owned[node_idx]:
                _flush_tally(ctx, hosts[node_idx], tally)
