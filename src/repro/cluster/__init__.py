"""Sharded multi-node cache fleet simulation.

The paper's single-cache model answers "which freshness policy?"; this
package asks the production question on top of it: what happens when that
policy runs **per shard across a fleet**, invalidates fan out to every
replica over unreliable channels, nodes fail and rejoin, and hot keys have to
be detected online with sketches instead of exact counters.

The pieces:

* :class:`~repro.cluster.hashring.ConsistentHashRing` — key placement with
  virtual nodes and minimal-movement rebalance,
* :class:`~repro.cluster.replication.ReplicationConfig` — replica count and
  replica-read routing,
* :class:`~repro.cluster.node.CacheNode` — one shard: cache + per-shard
  policy + backend-side buffer/tracker + its own channel,
* :class:`~repro.cluster.hotkey.HotKeyDetector` — sketch-driven online hot
  key detection that can switch hot keys to a different policy per shard,
* :class:`~repro.cluster.scenarios.Scenario` — deterministic failure /
  flash-crowd / partition scripts,
* :class:`~repro.cluster.cluster.ClusterSimulation` — the routing loop,
* :class:`~repro.cluster.vector.VectorClusterSimulation` — the columnar
  replay engine over a compiled trace (byte-identical, much faster),
* :func:`~repro.cluster.parallel.replay_cluster_parallel` — shard-parallel
  replay on worker processes with a deterministic merge, and
* :class:`~repro.cluster.results.ClusterResult` — per-node and fleet-level
  aggregation sharing the single-cache result schema.

Run one from Python::

    from repro.cluster import ClusterSimulation, ReplicationConfig, make_scenario
    from repro import PoissonZipfWorkload

    workload = PoissonZipfWorkload(num_keys=500, rate_per_key=20.0, seed=7)
    cluster = ClusterSimulation(
        workload=workload.iter_requests(duration=20.0),
        policy="adaptive",
        num_nodes=8,
        staleness_bound=1.0,
        replication=ReplicationConfig(factor=2, read_policy="round-robin"),
        scenario=make_scenario("node-failure"),
        duration=20.0,
        seed=7,
    )
    result = cluster.run()
    print(result.totals.staleness_violations, result.load_imbalance)

or from the command line via ``python -m repro cluster``.
"""

from repro.cluster.cluster import ClusterSimulation
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.hotkey import HotKeyConfig, HotKeyDetector
from repro.cluster.node import CacheNode
from repro.cluster.parallel import partition_nodes, replay_cluster_parallel
from repro.cluster.replication import ReplicaRouter, ReplicationConfig
from repro.cluster.results import ClusterResult, NodeResult
from repro.cluster.scenarios import (
    SCENARIO_FACTORIES,
    ColdL1Scenario,
    CrashRestartScenario,
    FlashCrowdScenario,
    L2OutageScenario,
    NodeFailureScenario,
    PartitionScenario,
    Scenario,
    make_scenario,
)
from repro.cluster.vector import VectorClusterSimulation

__all__ = [
    "CacheNode",
    "ClusterResult",
    "ClusterSimulation",
    "ColdL1Scenario",
    "ConsistentHashRing",
    "CrashRestartScenario",
    "FlashCrowdScenario",
    "HotKeyConfig",
    "HotKeyDetector",
    "L2OutageScenario",
    "NodeFailureScenario",
    "NodeResult",
    "PartitionScenario",
    "ReplicaRouter",
    "ReplicationConfig",
    "SCENARIO_FACTORIES",
    "Scenario",
    "VectorClusterSimulation",
    "make_scenario",
    "partition_nodes",
    "replay_cluster_parallel",
]
