"""Sketch-driven online hot-key detection (per shard).

Each cache node watches its own slice of the request stream through a
Count-min sketch with periodic decay and flags keys whose (approximate)
access frequency exceeds ``hot_fraction`` of the node's recent traffic.  The
cluster uses the flag to switch hot keys to a different freshness policy on
that shard — e.g. push updates for flash-crowd keys while the long tail stays
on cheap invalidates — which is the per-shard freshness decision the paper's
single-cache model cannot express.

Detection is frequency-based rather than E[W]-based on purpose: a key is
"hot" when it dominates a shard's traffic, regardless of its read/write mix;
what to *do* about it is then delegated to the configured hot policy, whose
E[W] estimators (:mod:`repro.sketch`) see the same per-shard stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.errors import ClusterError
from repro.sketch.countmin import CountMinSketch


@dataclass(frozen=True, slots=True)
class HotKeyConfig:
    """Configuration of the per-shard hot-key detector.

    Args:
        hot_policy: Registry name of the freshness policy applied to hot keys.
            ``None`` disables switching; hotness is then still checked (and
            reported via ``hot_keys_flagged``) at every flush decision of a
            write-reactive base policy.
        hot_fraction: Minimum share of a shard's recent traffic a key must
            hold to be flagged hot.
        min_observations: Number of sketch observations before any key can be
            flagged (avoids flagging on noise right after start or decay).
        decay_every: Halve the sketch counters every this many interval
            flushes, so "recent traffic" forgets old skew.
        sketch_width: Width of the Count-min sketch.
        sketch_depth: Depth of the Count-min sketch.
    """

    hot_policy: Optional[str] = "update"
    hot_fraction: float = 0.02
    min_observations: int = 200
    decay_every: int = 8
    sketch_width: int = 512
    sketch_depth: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ClusterError(
                f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )
        if self.min_observations < 1:
            raise ClusterError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )
        if self.decay_every < 1:
            raise ClusterError(f"decay_every must be >= 1, got {self.decay_every}")


class HotKeyDetector:
    """Online hot-key detection over one shard's request stream.

    Args:
        config: Detector thresholds and sketch dimensions.
        seed: Seed for the sketch hash family (per-node, for independence).
    """

    def __init__(self, config: HotKeyConfig, seed: int = 0) -> None:
        self.config = config
        self._sketch = CountMinSketch(
            width=config.sketch_width, depth=config.sketch_depth, seed=seed
        )
        self._intervals_since_decay = 0
        #: Keys ever flagged hot on this shard (reporting only; the sketch
        #: stays the single source of truth for *current* hotness).
        self.flagged: Set[str] = set()

    def observe(self, key: str) -> None:
        """Record one access (read or write) to ``key`` on this shard."""
        self._sketch.add(key)

    def is_hot(self, key: str) -> bool:
        """Whether ``key`` currently dominates this shard's recent traffic."""
        total = self._sketch.total
        if total < self.config.min_observations:
            return False
        if self._sketch.query(key) < self.config.hot_fraction * total:
            return False
        self.flagged.add(key)
        return True

    def pressure(self) -> float:
        """Share of recent shard traffic held by the heaviest flagged key.

        This is the queryable hot-key pressure signal: 0.0 while no key has
        been flagged (or before ``min_observations``), otherwise the largest
        flagged key's approximate share of the sketch total, clamped to
        [0, 1].  The autoscaler, the obs windows, and operators all read this
        same number.
        """
        total = self._sketch.total
        if total < self.config.min_observations or not self.flagged:
            return 0.0
        top = max(self._sketch.query(key) for key in sorted(self.flagged))
        return min(1.0, top / total)

    def end_interval(self) -> None:
        """Advance the decay clock (called by the cluster at every flush)."""
        self._intervals_since_decay += 1
        if self._intervals_since_decay >= self.config.decay_every:
            self._sketch.halve()
            self._intervals_since_decay = 0

    def memory_bytes(self) -> int:
        """Memory of the detection sketch in bytes."""
        return self._sketch.memory_bytes()
