"""Shard-parallel cluster replay: one worker process per node partition.

Because fleet nodes never message each other — they interact only through
the shared datastore, the hash ring, and the deterministic read router — a
cluster replay decomposes along *node* lines: each worker rebuilds the full
fleet, streams the whole compiled trace, and advances every piece of shared
state exactly like a full run (datastore writes, router counters, scenario
events, ring membership), but performs cache work only for the nodes it owns
(``ClusterSimulation(owned_nodes=...)``).  Each owned node's
:class:`~repro.cluster.results.NodeResult` row is then byte-identical to the
same row of a full single-process run, so the merge just reassembles the
per-node rows and re-finalises the totals — results are identical for any
worker count, including 1.

The trace is shipped to workers by ``fork`` inheritance (no per-task
serialization of the columns); on platforms without ``fork`` the shards run
sequentially in-process, slower but still byte-identical.
"""

from __future__ import annotations

import multiprocessing
import time as time_module
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.results import ClusterResult
from repro.cluster.vector import VectorClusterSimulation, _ClusterPlan
from repro.errors import ClusterError
from repro.obs.recorder import ObsConfig, merge_payloads
from repro.workload.compiled import CompiledTrace

#: ``(trace, cluster_kwargs, plan)`` stashed before the pool forks; workers
#: inherit it through copy-on-write instead of unpickling the columns (and
#: the precomputed routing plan) per shard.
_SHARD_CONTEXT: Optional[Tuple[CompiledTrace, dict, Optional[_ClusterPlan]]] = None


def partition_nodes(num_nodes: int, workers: int) -> List[Tuple[int, ...]]:
    """Round-robin node indices across ``workers`` shards.

    Striding (instead of contiguous blocks) keeps shard load even under the
    ring's placement skew.  Partition 0 always owns node 0, which the merge
    uses as its result template.
    """
    if num_nodes < 1:
        raise ClusterError(f"num_nodes must be >= 1, got {num_nodes}")
    if workers < 1:
        raise ClusterError(f"workers must be >= 1, got {workers}")
    shards = min(workers, num_nodes)
    return [tuple(range(shard, num_nodes, shards)) for shard in range(shards)]


def _replay_shard(owned: Tuple[int, ...]) -> ClusterResult:
    """Worker body: replay the stashed trace for one node partition."""
    trace, cluster_kwargs, plan = _SHARD_CONTEXT
    simulation = VectorClusterSimulation(trace, owned_nodes=owned, **cluster_kwargs)
    if plan is not None:
        simulation._shared_plan = plan
    return simulation.run()


def replay_cluster_parallel(
    trace: CompiledTrace,
    *,
    workers: int = 1,
    timings: Optional[Dict[str, float]] = None,
    **cluster_kwargs,
) -> ClusterResult:
    """Replay a compiled trace across the fleet on ``workers`` processes.

    Args:
        trace: The compiled request stream (shared by every shard).
        workers: Worker process count; clamped to the fleet size.  ``1``
            replays in-process with no partitioning overhead.
        timings: Optional dict that receives ``merge_seconds`` (the wall time
            of the deterministic shard merge; ``0.0`` when nothing merged).
        **cluster_kwargs: Forwarded to :class:`VectorClusterSimulation` /
            :class:`~repro.cluster.cluster.ClusterSimulation` — ``policy``
            must be a registry *name* (worker processes cannot be handed live
            policy objects), and ``store`` and ``concurrency`` are refused
            for ``workers > 1`` (a checkpoint must capture the whole fleet
            in one process; the shared backend fetch queue couples shards).

    Returns:
        The merged :class:`~repro.cluster.results.ClusterResult`,
        byte-identical for any worker count.
    """
    global _SHARD_CONTEXT
    if "owned_nodes" in cluster_kwargs:
        raise ClusterError(
            "owned_nodes is managed by replay_cluster_parallel; pass workers=N"
        )
    num_nodes = int(cluster_kwargs.get("num_nodes", 0))
    if num_nodes < 1:
        raise ClusterError("replay_cluster_parallel needs num_nodes >= 1")
    workers = min(int(workers), num_nodes)
    if workers <= 1:
        simulation = VectorClusterSimulation(trace, **cluster_kwargs)
        result = simulation.run()
        if timings is not None:
            timings["merge_seconds"] = 0.0
        return result
    if cluster_kwargs.get("store") is not None:
        raise ClusterError(
            "persistence needs the whole fleet in one process: "
            "a store is incompatible with workers > 1"
        )
    if cluster_kwargs.get("concurrency") is not None:
        raise ClusterError(
            "concurrency couples every node through one shared backend fetch "
            "queue, so shards cannot replay independently: it is incompatible "
            "with workers > 1 (run with workers=1)"
        )
    scenario = cluster_kwargs.get("scenario")
    if scenario is not None and getattr(scenario, "requires_full_fleet", False):
        raise ClusterError(
            f"scenario {getattr(scenario, 'name', type(scenario).__name__)!r} "
            "reads fleet-global signals (dynamic membership), so an "
            "ownership-masked shard would diverge: it is incompatible with "
            "workers > 1 (run with workers=1)"
        )
    if not isinstance(cluster_kwargs.get("policy"), str):
        raise ClusterError(
            "parallel replay ships the policy to workers by registry name; "
            "pass policy as a string"
        )
    obs = cluster_kwargs.get("obs")
    if obs is not None and not isinstance(obs, ObsConfig):
        raise ClusterError(
            "parallel replay needs obs as an ObsConfig: every shard builds "
            "its own recorder from it and the merge combines the payloads"
        )

    partitions = partition_nodes(num_nodes, workers)
    # Route the whole trace once in the parent; forked shards inherit the
    # plan copy-on-write instead of recomputing it per worker.  On the
    # scalar-fallback path (plan is None) workers route as they stream.
    planner = VectorClusterSimulation(trace, **cluster_kwargs)
    plan = planner.build_plan() if planner.vector_eligible() else None
    _SHARD_CONTEXT = (trace, cluster_kwargs, plan)
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=len(partitions)) as pool:
                shard_results = pool.map(_replay_shard, partitions)
        else:  # pragma: no cover - platform without fork
            shard_results = [_replay_shard(owned) for owned in partitions]
    finally:
        _SHARD_CONTEXT = None

    merge_start = time_module.perf_counter()
    result = _merge_shard_results(partitions, shard_results)
    if timings is not None:
        timings["merge_seconds"] = time_module.perf_counter() - merge_start
    return result


def _merge_shard_results(
    partitions: Sequence[Tuple[int, ...]], shard_results: Sequence[ClusterResult]
) -> ClusterResult:
    """Reassemble per-shard node rows into one fleet result.

    Shard 0's result is the template (it owns node 0, and every shard agrees
    on the run metadata — duration, rebalances, scenario — because each one
    advanced the full shared timeline).  Each node row is taken from the
    shard that owned the node, then the totals are re-finalised, which walks
    the rows in node order exactly like a single-process finalize.
    """
    merged = shard_results[0]
    nodes = merged.nodes
    for owned, shard in zip(partitions[1:], shard_results[1:]):
        for index in owned:
            nodes[index] = shard.nodes[index]
        if merged.obs is not None and shard.obs is not None:
            # Shard 0 recorded the global events (it owns node 0); the other
            # shards contribute their owned nodes' windows, spans, and
            # metrics.  Windows stay per-node until export, so the merged
            # series is byte-identical to a single-process run.
            merged.obs = merge_payloads(merged.obs, shard.obs)
    merged.finalize()
    return merged
