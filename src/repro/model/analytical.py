"""Closed-form freshness and staleness costs per policy (§2.2 and §3.1).

Each policy has a small model class exposing, for a single key with Poisson
parameters ``(rate, read_ratio)`` and a staleness bound ``T`` over a horizon
``T'``:

* ``freshness_cost``   — :math:`C_F`, the expected throughput overhead,
* ``staleness_cost``   — :math:`C_S`, the expected number of misses caused by
  stale (expired or invalidated) cached data,
* ``normalized_freshness_cost`` — :math:`C'_F`, normalised by the useful work
  spent serving reads, and
* ``normalized_staleness_cost`` — :math:`C'_S`, the miss ratio caused solely
  by reading stale data.

:func:`aggregate_normalized_costs` sums the per-key costs over a key
population (the paper's independence/additivity assumption from §2.1), which
is how the theoretical curves of Figures 2 and 3 are produced for workloads
with Zipf-distributed per-key rates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.cost_model import CostModel
from repro.errors import ConfigurationError
from repro.model.arrivals import expected_reads, p_read, p_write


@dataclass(frozen=True, slots=True)
class KeyParameters:
    """Poisson parameters of a single key.

    Attributes:
        rate: Aggregate request rate ``lambda`` for the key (requests/second).
        read_ratio: Probability ``r`` that a request is a read.
        key_size: Key size in bytes (for size-aware cost models).
        value_size: Value size in bytes.
    """

    rate: float
    read_ratio: float
    key_size: int = 16
    value_size: int = 128

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {self.rate}")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ConfigurationError(f"read_ratio must be in [0, 1], got {self.read_ratio}")


class PolicyModel(ABC):
    """Base class for the per-policy closed forms.

    Args:
        costs: Cost model supplying ``c_m``, ``c_i``, ``c_u``, and the
            read-serving cost used for normalisation.
    """

    name: str = "model"

    def __init__(self, costs: CostModel | None = None) -> None:
        self.costs = costs if costs is not None else CostModel()

    # -- core quantities ------------------------------------------------ #
    @abstractmethod
    def freshness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        """Expected :math:`C_F` for one key over ``horizon`` seconds."""

    @abstractmethod
    def staleness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        """Expected :math:`C_S` (stale-induced misses) for one key."""

    # -- normalisations -------------------------------------------------- #
    def useful_work(self, key: KeyParameters, horizon: float) -> float:
        """Work spent serving the key's reads (the :math:`C'_F` denominator)."""
        reads = expected_reads(key.rate, key.read_ratio, horizon)
        return reads * self.costs.serve_cost(key.key_size, key.value_size)

    def normalized_freshness_cost(
        self, key: KeyParameters, bound: float, horizon: float
    ) -> float:
        """:math:`C'_F`: wasted work relative to useful read-serving work."""
        useful = self.useful_work(key, horizon)
        if useful == 0.0:
            return 0.0
        return self.freshness_cost(key, bound, horizon) / useful

    def normalized_staleness_cost(
        self, key: KeyParameters, bound: float, horizon: float
    ) -> float:
        """:math:`C'_S`: stale-induced misses per read."""
        reads = expected_reads(key.rate, key.read_ratio, horizon)
        if reads == 0.0:
            return 0.0
        return self.staleness_cost(key, bound, horizon) / reads

    def _sizes(self, key: KeyParameters) -> tuple[int, int]:
        return key.key_size, key.value_size


class TTLExpiryModel(PolicyModel):
    """TTL-expiry: expire the object every ``T``; pay a miss on the next read.

    :math:`C_S = \\frac{T'}{T} P_R(T)` and :math:`C_F = C_S \\cdot c_m`.
    """

    name = "ttl-expiry"

    def staleness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        _require_positive_bound(bound, horizon)
        reads = p_read(key.rate, key.read_ratio, bound)
        return (horizon / bound) * reads

    def freshness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        key_size, value_size = self._sizes(key)
        return self.staleness_cost(key, bound, horizon) * self.costs.miss_cost(
            key_size, value_size
        )


class TTLPollingModel(PolicyModel):
    """TTL-polling: re-fetch every ``T``; never stale, always paying ``c_m``.

    :math:`C_F = c_m \\frac{T'}{T}` and :math:`C_S = 0`.
    """

    name = "ttl-polling"

    def staleness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        _require_positive_bound(bound, horizon)
        return 0.0

    def freshness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        _require_positive_bound(bound, horizon)
        key_size, value_size = self._sizes(key)
        return self.costs.miss_cost(key_size, value_size) * (horizon / bound)


def steady_state_invalidated_probability(p_reads: float, p_writes: float) -> float:
    """Steady-state probability ``p`` that a key is invalidated at an interval end.

    A key remains invalidated across an interval if it is not read (no
    re-fetch) and becomes invalidated if it was valid and received a write, so
    ``p`` satisfies the paper's recurrence ``p = p (1 - P_R) + (1 - p) P_W``
    whose fixed point is ``p = P_W / (P_R + P_W)`` — the expression §3.1
    substitutes into the invalidation cost.
    """
    total = p_reads + p_writes
    if total == 0.0:
        return 0.0
    return p_writes / total


class InvalidationModel(PolicyModel):
    """Always-invalidate with backend duplicate suppression (§3.1).

    With ``p = P_W / (P_R + P_W)`` the steady-state probability that the key
    is already invalidated at an interval boundary,

    .. math::

        C_F = \\frac{T'}{T} \\frac{P_R P_W}{P_R + P_W} (c_m + c_i),
        \\qquad
        C_S = \\frac{T'}{T} \\frac{P_R P_W}{P_R + P_W}.
    """

    name = "invalidate"

    def _interval_factor(self, key: KeyParameters, bound: float) -> float:
        reads = p_read(key.rate, key.read_ratio, bound)
        writes = p_write(key.rate, key.read_ratio, bound)
        total = reads + writes
        if total == 0.0:
            return 0.0
        return reads * writes / total

    def staleness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        _require_positive_bound(bound, horizon)
        return (horizon / bound) * self._interval_factor(key, bound)

    def freshness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        key_size, value_size = self._sizes(key)
        per_interval = self._interval_factor(key, bound)
        cost = self.costs.miss_cost(key_size, value_size) + self.costs.invalidate_cost(key_size)
        _require_positive_bound(bound, horizon)
        return (horizon / bound) * per_interval * cost


class UpdateModel(PolicyModel):
    """Always-update (§3.1).

    :math:`C_F = \\frac{T'}{T} P_W(T) \\cdot c_u` and :math:`C_S = 0`.
    """

    name = "update"

    def staleness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        _require_positive_bound(bound, horizon)
        return 0.0

    def freshness_cost(self, key: KeyParameters, bound: float, horizon: float) -> float:
        _require_positive_bound(bound, horizon)
        key_size, value_size = self._sizes(key)
        writes = p_write(key.rate, key.read_ratio, bound)
        return (horizon / bound) * writes * self.costs.update_cost(key_size, value_size)


def _require_positive_bound(bound: float, horizon: float) -> None:
    if bound <= 0:
        raise ConfigurationError(f"staleness bound must be positive, got {bound}")
    if horizon < 0:
        raise ConfigurationError(f"horizon must be non-negative, got {horizon}")


@dataclass(frozen=True, slots=True)
class AggregateCosts:
    """Workload-level costs obtained by summing independent per-key costs."""

    freshness_cost: float
    staleness_cost: float
    useful_work: float
    total_reads: float

    @property
    def normalized_freshness_cost(self) -> float:
        """:math:`C'_F` over the whole workload."""
        return self.freshness_cost / self.useful_work if self.useful_work > 0 else 0.0

    @property
    def normalized_staleness_cost(self) -> float:
        """:math:`C'_S` over the whole workload."""
        return self.staleness_cost / self.total_reads if self.total_reads > 0 else 0.0


def aggregate_normalized_costs(
    model: PolicyModel,
    keys: Sequence[KeyParameters] | Iterable[KeyParameters],
    bound: float,
    horizon: float,
) -> AggregateCosts:
    """Sum per-key costs across a key population (the §2.1 additivity assumption).

    Args:
        model: The per-policy closed form.
        keys: Poisson parameters of every key in the workload.
        bound: Staleness bound ``T`` in seconds.
        horizon: Workload duration ``T'`` in seconds.

    Returns:
        Aggregate raw and normalised costs.
    """
    freshness = 0.0
    staleness = 0.0
    useful = 0.0
    reads = 0.0
    for key in keys:
        freshness += model.freshness_cost(key, bound, horizon)
        staleness += model.staleness_cost(key, bound, horizon)
        useful += model.useful_work(key, horizon)
        reads += expected_reads(key.rate, key.read_ratio, horizon)
    return AggregateCosts(
        freshness_cost=freshness,
        staleness_cost=staleness,
        useful_work=useful,
        total_reads=reads,
    )
