"""The analytical freshness/staleness cost model (§2 and §3.1 of the paper).

Closed-form expressions for the freshness cost :math:`C_F` and the staleness
cost :math:`C_S` of every policy, assuming per-key Poisson arrivals with rate
``lambda`` and read probability ``r``.  These formulas produce the
"Theoretical" curves overlaid on the simulation results in Figures 2 and 3 and
drive the decision rules of §3.2.
"""

from repro.model.arrivals import p_read, p_write
from repro.model.analytical import (
    InvalidationModel,
    KeyParameters,
    PolicyModel,
    TTLExpiryModel,
    TTLPollingModel,
    UpdateModel,
    aggregate_normalized_costs,
    steady_state_invalidated_probability,
)
from repro.model.gap import expected_gap, gap_minimizing_k

__all__ = [
    "InvalidationModel",
    "KeyParameters",
    "PolicyModel",
    "TTLExpiryModel",
    "TTLPollingModel",
    "UpdateModel",
    "aggregate_normalized_costs",
    "expected_gap",
    "gap_minimizing_k",
    "p_read",
    "p_write",
    "steady_state_invalidated_probability",
]
