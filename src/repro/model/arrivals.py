"""Poisson arrival probabilities used throughout the analytical model.

Requests to a key arrive as a Poisson process with rate ``lambda``; each
request is independently a read with probability ``r`` and a write with
probability ``1 - r``.  By Poisson thinning the read and write streams are
independent Poisson processes with rates ``lambda * r`` and
``lambda * (1 - r)``, so the probability of seeing at least one read (write)
within an interval ``T`` is ``1 - exp(-lambda * r * T)``
(``1 - exp(-lambda * (1 - r) * T)``).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def _validate(rate: float, read_ratio: float, interval: float) -> None:
    if rate < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate}")
    if not 0.0 <= read_ratio <= 1.0:
        raise ConfigurationError(f"read_ratio must be in [0, 1], got {read_ratio}")
    if interval < 0:
        raise ConfigurationError(f"interval must be >= 0, got {interval}")


def p_read(rate: float, read_ratio: float, interval: float) -> float:
    """``P_R(T)``: probability of at least one read to the key within ``T``."""
    _validate(rate, read_ratio, interval)
    return 1.0 - math.exp(-rate * read_ratio * interval)


def p_write(rate: float, read_ratio: float, interval: float) -> float:
    """``P_W(T)``: probability of at least one write to the key within ``T``."""
    _validate(rate, read_ratio, interval)
    return 1.0 - math.exp(-rate * (1.0 - read_ratio) * interval)


def expected_reads(rate: float, read_ratio: float, horizon: float) -> float:
    """``N_R``: expected number of reads to the key over a horizon ``T'``."""
    _validate(rate, read_ratio, horizon)
    return rate * read_ratio * horizon


def expected_writes(rate: float, read_ratio: float, horizon: float) -> float:
    """Expected number of writes to the key over a horizon ``T'``."""
    _validate(rate, read_ratio, horizon)
    return rate * (1.0 - read_ratio) * horizon


def expected_writes_between_reads(read_ratio: float) -> float:
    """``E[W]``: expected number of writes between consecutive reads.

    Under independent request types, each request is a write with probability
    ``1 - r``, so the run length of writes before a read is geometric with
    mean ``(1 - r) / r``.  Undefined (infinite) when the key is never read.
    """
    if not 0.0 <= read_ratio <= 1.0:
        raise ConfigurationError(f"read_ratio must be in [0, 1], got {read_ratio}")
    if read_ratio == 0.0:
        return float("inf")
    return (1.0 - read_ratio) / read_ratio
