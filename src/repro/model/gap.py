"""The online-gap formulation behind the §3.2 decision rule.

The paper derives the update-vs-invalidate rule by comparing a randomised
online policy (update with probability ``k``, invalidate with ``1 - k``)
against the omniscient policy and minimising the expected gap ``G``:

.. math::

    G = (1 - k) P_R (c_i + c_m - c_u)
        + k (1 - P_R) P_W c_u
        + (1 - k)(1 - P_R) P_W c_i
        + (1 - P_R)(1 - P_W) G.

``G`` is linear in ``k`` once solved for the recursive term, so the optimum is
always at ``k = 0`` or ``k = 1``; the sign of the coefficient of ``k`` yields
the rule ``c_u < P_R / (P_R + P_W) (c_m + c_i)``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def expected_gap(
    k: float,
    p_read: float,
    p_write: float,
    miss_cost: float,
    invalidate_cost: float,
    update_cost: float,
) -> float:
    """Expected per-decision gap ``G`` of the randomised policy.

    Args:
        k: Probability of choosing an update (``1 - k`` is an invalidate).
        p_read: ``P_R(T)``.
        p_write: ``P_W(T)``.
        miss_cost: ``c_m``.
        invalidate_cost: ``c_i``.
        update_cost: ``c_u``.

    Returns:
        The expected gap to the omniscient policy; zero when the policy always
        matches the optimal action.

    Raises:
        ConfigurationError: If ``k`` or the probabilities are outside [0, 1],
            or if the interval is completely idle (``P_R = P_W = 0``), in which
            case the recursion never terminates and the gap is undefined.
    """
    for name, value in (("k", k), ("p_read", p_read), ("p_write", p_write)):
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    continue_probability = (1.0 - p_read) * (1.0 - p_write)
    if continue_probability >= 1.0:
        raise ConfigurationError("expected gap is undefined when P_R = P_W = 0")
    immediate = (
        (1.0 - k) * p_read * (invalidate_cost + miss_cost - update_cost)
        + k * (1.0 - p_read) * p_write * update_cost
        + (1.0 - k) * (1.0 - p_read) * p_write * invalidate_cost
    )
    return immediate / (1.0 - continue_probability)


def gap_minimizing_k(
    p_read: float,
    p_write: float,
    miss_cost: float,
    invalidate_cost: float,
    update_cost: float,
) -> float:
    """Return the ``k`` in {0, 1} that minimises :func:`expected_gap`.

    The gap is linear in ``k``; comparing the endpoints avoids re-deriving the
    coefficient and stays correct if the cost structure changes.
    """
    gap_update = expected_gap(1.0, p_read, p_write, miss_cost, invalidate_cost, update_cost)
    gap_invalidate = expected_gap(0.0, p_read, p_write, miss_cost, invalidate_cost, update_cost)
    return 1.0 if gap_update <= gap_invalidate else 0.0
